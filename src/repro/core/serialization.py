"""Persistence for rules and the knowledge repository.

An online deployment trains rules off the critical path and ships them to
the predictor process; operators also want to inspect and diff rule sets
across retrainings.  This module serializes rules and
:class:`~repro.core.knowledge.RuleRecord` provenance to plain JSON — no
pickling, so rule files are auditable and stable across library versions.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Any

from repro.alerts import FailureWarning
from repro.core.knowledge import KnowledgeRepository, RuleRecord
from repro.learners.rules import (
    AssociationRule,
    CountRule,
    DistributionRule,
    Rule,
    RuleKey,
    StatisticalRule,
)

FORMAT_VERSION = 1


def key_to_json(key: RuleKey) -> Any:
    """JSON-ready form of a rule key (nested tuples become lists)."""
    if isinstance(key, tuple):
        return [key_to_json(item) for item in key]
    return key


def key_from_json(data: Any) -> RuleKey:
    """Inverse of :func:`key_to_json`.

    Rule keys are built exclusively from tuples and primitives, so every
    JSON list decodes back to a tuple unambiguously.
    """
    if isinstance(data, list):
        return tuple(key_from_json(item) for item in data)
    return data


def warning_to_dict(warning: FailureWarning) -> dict[str, Any]:
    return {
        "time": warning.time,
        "predicted": warning.predicted,
        "window": warning.window,
        "rule_key": key_to_json(warning.rule_key),
        "learner": warning.learner,
    }


def warning_from_dict(data: dict[str, Any]) -> FailureWarning:
    return FailureWarning(
        time=data["time"],
        predicted=data["predicted"],
        window=data["window"],
        rule_key=key_from_json(data["rule_key"]),
        learner=data["learner"],
    )


def rule_to_dict(rule: Rule) -> dict[str, Any]:
    """JSON-ready representation of any rule species."""
    if isinstance(rule, AssociationRule):
        return {
            "kind": "association",
            "antecedent": sorted(rule.antecedent),
            "consequent": rule.consequent,
            "support": rule.support,
            "confidence": rule.confidence,
        }
    if isinstance(rule, StatisticalRule):
        return {
            "kind": "statistical",
            "k": rule.k,
            "window": rule.window,
            "probability": rule.probability,
        }
    if isinstance(rule, DistributionRule):
        return {
            "kind": "distribution",
            "distribution": rule.distribution,
            "params": list(rule.params),
            "threshold": rule.threshold,
            "quantile_time": rule.quantile_time,
        }
    if isinstance(rule, CountRule):
        return {
            "kind": "count",
            "code": rule.code,
            "count": rule.count,
            "window": rule.window,
            "consequent": rule.consequent,
            "support": rule.support,
            "confidence": rule.confidence,
        }
    raise TypeError(f"unsupported rule type {type(rule).__name__}")


def rule_from_dict(data: dict[str, Any]) -> Rule:
    """Inverse of :func:`rule_to_dict` (validates through the rule
    constructors)."""
    try:
        kind = data["kind"]
    except KeyError:
        raise ValueError("rule dict is missing its 'kind' field") from None
    if kind == "association":
        return AssociationRule(
            antecedent=frozenset(data["antecedent"]),
            consequent=data["consequent"],
            support=data["support"],
            confidence=data["confidence"],
        )
    if kind == "statistical":
        return StatisticalRule(
            k=data["k"], window=data["window"], probability=data["probability"]
        )
    if kind == "distribution":
        return DistributionRule(
            distribution=data["distribution"],
            params=tuple(data["params"]),
            threshold=data["threshold"],
            quantile_time=data["quantile_time"],
        )
    if kind == "count":
        return CountRule(
            code=data["code"],
            count=data["count"],
            window=data["window"],
            consequent=data["consequent"],
            support=data["support"],
            confidence=data["confidence"],
        )
    raise ValueError(f"unknown rule kind {kind!r}")


def record_to_dict(record: RuleRecord) -> dict[str, Any]:
    return {
        "rule": rule_to_dict(record.rule),
        "learner": record.learner,
        "trained_at_week": record.trained_at_week,
        "scores": {
            "tp": record.tp,
            "fp": record.fp,
            "fn": record.fn,
            "roc": record.roc,
        },
    }


def record_from_dict(data: dict[str, Any]) -> RuleRecord:
    scores = data.get("scores", {})
    return RuleRecord(
        rule=rule_from_dict(data["rule"]),
        learner=data["learner"],
        trained_at_week=data["trained_at_week"],
        tp=scores.get("tp", 0),
        fp=scores.get("fp", 0),
        fn=scores.get("fn", 0),
        roc=scores.get("roc", 0.0),
    )


def dump_repository(
    repository: KnowledgeRepository,
    destination: str | Path | io.TextIOBase,
    indent: int | None = 2,
) -> None:
    """Write a repository (rules + provenance) as JSON."""
    payload = {
        "format_version": FORMAT_VERSION,
        "n_rules": len(repository),
        "records": [record_to_dict(r) for r in repository.records()],
    }
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=indent)
    else:
        json.dump(payload, destination, indent=indent)


def load_repository(
    source: str | Path | io.TextIOBase,
) -> KnowledgeRepository:
    """Read a repository written by :func:`dump_repository`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    else:
        payload = json.load(source)
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported rule-file format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    records = [record_from_dict(d) for d in payload.get("records", [])]
    if "n_rules" in payload and payload["n_rules"] != len(records):
        raise ValueError(
            f"rule file is inconsistent: header says {payload['n_rules']} "
            f"rules, body has {len(records)}"
        )
    return KnowledgeRepository(records)
