"""The dynamic meta-learning framework (Figure 1, right half).

Orchestrates the full loop of the paper: every ``WR`` weeks (the
retraining window) the meta-learner re-trains the base learners on the
training set chosen by the window policy, the reviser filters the
candidate rules by ROC analysis, the knowledge repository is swapped to
the surviving rules (with churn recorded for Figure 12), and the
event-driven predictor keeps monitoring the stream, emitting warnings
whenever a rule matches within the prediction window ``Wp``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import observe
from repro.core.knowledge import KnowledgeRepository
from repro.core.meta import MetaLearner
from repro.core.predictor import (
    ENSEMBLE_POLICIES,
    INDEXING_MODES,
    FailureWarning,
    Predictor,
)
from repro.core.reviser import Reviser
from repro.core.tracking import ChurnHistory, ChurnRecord, diff_rule_sets
from repro.core.windows import TrainingPolicy, dynamic_months
from repro.evaluation.matching import extract_failures, match_warnings
from repro.evaluation.metrics import PrecisionRecall
from repro.evaluation.timeline import WeeklyMetrics
from repro.learners.registry import DEFAULT_LEARNERS
from repro.parallel.executor import Executor
from repro.resilience.degrade import RetrainFailure
from repro.raslog.catalog import EventCatalog, default_catalog
from repro.raslog.store import EventLog
from repro.utils.timeutil import WEEK_SECONDS


@dataclass(frozen=True)
class FrameworkConfig:
    """All knobs of the framework, with the paper's defaults."""

    #: Prediction window ``Wp`` (= rule-generation window), seconds.
    prediction_window: float = 300.0
    #: Retraining window ``WR``, weeks.
    retrain_weeks: int = 4
    #: Training-set policy (paper default: most recent six months).
    policy: TrainingPolicy = field(default_factory=dynamic_months)
    #: Weeks of data accumulated before predictions start.
    initial_train_weeks: int = 26
    #: Whether the reviser filters candidate rules (Figure 11's ablation).
    use_reviser: bool = True
    min_roc: float = 0.7
    #: Expert-combination policy of the predictor.
    ensemble: str = "experts"
    #: Deployment-timer period for the time-triggered expert, seconds.
    tick: float | None = 60.0
    #: Cap on the distribution expert's warning horizon, seconds.
    dist_horizon_cap: float = 43200.0
    #: Base learners by registry name, in mixture-of-experts order.
    learners: tuple[str, ...] = DEFAULT_LEARNERS
    #: Extra constructor arguments per learner name.
    learner_params: dict[str, dict] = field(default_factory=dict)
    #: What a failed retraining does: ``"raise"`` propagates the error
    #: (fail-fast, the batch default pinned by the failure-injection
    #: tests); ``"degrade"`` keeps predicting with the previous rule set,
    #: records a :class:`~repro.resilience.RetrainFailure` and retries.
    on_retrain_error: str = "raise"
    #: Tolerated out-of-order arrival (seconds) in the online session.
    #: 0.0 keeps the strict behaviour: late events raise ``ValueError``.
    #: Positive values buffer events for re-sequencing; events later than
    #: the slack are quarantined instead of raised.
    reorder_slack: float = 0.0
    #: First retry delay (stream seconds) after a failed retraining.
    retrain_backoff_base: float = 60.0
    #: Cap on the exponential retry backoff (stream seconds).
    retrain_backoff_cap: float = 3600.0
    #: Predictor matching-index implementation (``"compiled"``/``"scan"``).
    #: A pure speed knob — both modes emit identical warnings — kept out
    #: of the checkpoint config digest so artifacts stay interchangeable;
    #: ``"scan"`` exists so the perf harness can measure the compiled
    #: index against the original matcher end-to-end.
    predictor_indexing: str = "compiled"
    #: How retrainings are scheduled: ``"fixed"`` retrains every
    #: ``retrain_weeks`` (the paper's metronome); ``"adaptive"`` evaluates
    #: the :mod:`repro.adapt` drift detectors at every week boundary and
    #: retrains when patterns actually moved (with a cooldown after each
    #: retraining and a forced retrain at least every
    #: ``adapt_max_interval_weeks``).
    retrain_trigger: str = "fixed"
    #: Jensen–Shannon event-mix divergence that triggers a retrain.
    adapt_mix_threshold: float = 0.45
    #: KS inter-arrival-shift statistic that triggers a retrain.
    adapt_gap_threshold: float = 0.45
    #: Fraction of baseline rules decayed that triggers a retrain.
    adapt_rule_threshold: float = 0.6
    #: Weeks after a successful retraining during which drift triggers
    #: are suppressed (fresh rules re-baseline first).
    adapt_cooldown_weeks: int = 2
    #: A quiet stream still retrains at least every this many weeks
    #: (``WR_max``, the adaptive mode's safety net).
    adapt_max_interval_weeks: int = 8
    #: Sliding-window size (events / gap samples) of the drift detectors.
    adapt_window_events: int = 256
    #: Re-arm fraction: after a drift trigger, scores must fall below
    #: ``hysteresis`` × threshold before another drift trigger can fire.
    adapt_hysteresis: float = 0.6

    def __post_init__(self) -> None:
        if self.prediction_window <= 0:
            raise ValueError("prediction_window must be positive")
        if self.retrain_weeks < 1:
            raise ValueError("retrain_weeks must be >= 1")
        if self.initial_train_weeks < 1:
            raise ValueError("initial_train_weeks must be >= 1")
        if self.ensemble not in ENSEMBLE_POLICIES:
            raise ValueError(f"ensemble must be one of {ENSEMBLE_POLICIES}")
        if not self.learners:
            raise ValueError("need at least one learner")
        if self.tick is not None and self.tick <= 0:
            raise ValueError(f"tick must be positive or None, got {self.tick}")
        if not 0.0 <= self.min_roc <= 1.0:
            raise ValueError(f"min_roc must lie in [0, 1], got {self.min_roc}")
        if self.dist_horizon_cap <= 0:
            raise ValueError(
                f"dist_horizon_cap must be positive, got {self.dist_horizon_cap}"
            )
        if self.predictor_indexing not in INDEXING_MODES:
            raise ValueError(
                f"predictor_indexing must be one of {INDEXING_MODES}, "
                f"got {self.predictor_indexing!r}"
            )
        if self.on_retrain_error not in ("raise", "degrade"):
            raise ValueError(
                f"on_retrain_error must be 'raise' or 'degrade', "
                f"got {self.on_retrain_error!r}"
            )
        if self.reorder_slack < 0:
            raise ValueError(
                f"reorder_slack must be >= 0, got {self.reorder_slack}"
            )
        if self.retrain_backoff_base <= 0:
            raise ValueError(
                f"retrain_backoff_base must be positive, "
                f"got {self.retrain_backoff_base}"
            )
        if self.retrain_backoff_cap < self.retrain_backoff_base:
            raise ValueError(
                f"retrain_backoff_cap ({self.retrain_backoff_cap}) must be "
                f">= retrain_backoff_base ({self.retrain_backoff_base})"
            )
        if self.retrain_trigger not in ("fixed", "adaptive"):
            raise ValueError(
                f"retrain_trigger must be 'fixed' or 'adaptive', "
                f"got {self.retrain_trigger!r}"
            )
        for name in (
            "adapt_mix_threshold",
            "adapt_gap_threshold",
            "adapt_rule_threshold",
            "adapt_hysteresis",
        ):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must lie in (0, 1], got {value}")
        if self.adapt_cooldown_weeks < 0:
            raise ValueError(
                f"adapt_cooldown_weeks must be >= 0, "
                f"got {self.adapt_cooldown_weeks}"
            )
        if self.adapt_max_interval_weeks <= self.adapt_cooldown_weeks:
            raise ValueError(
                f"adapt_max_interval_weeks "
                f"({self.adapt_max_interval_weeks}) must exceed "
                f"adapt_cooldown_weeks ({self.adapt_cooldown_weeks})"
            )
        if self.adapt_window_events < 16:
            raise ValueError(
                f"adapt_window_events must be >= 16, "
                f"got {self.adapt_window_events}"
            )

    def with_(self, **changes) -> "FrameworkConfig":
        """Functional update helper for experiment sweeps."""
        return replace(self, **changes)


@dataclass
class RetrainEvent:
    """Telemetry of one retraining round."""

    week: int
    train_span: tuple[int, int]
    n_candidates: int
    n_kept: int
    churn: ChurnRecord
    generation_seconds: float
    revise_seconds: float
    #: per-learner training seconds (measured on the executor's workers)
    learner_seconds: dict[str, float] = field(default_factory=dict)


@dataclass
class RunResult:
    """Everything a framework run produces."""

    config: FrameworkConfig
    warnings: list[FailureWarning]
    weekly: list[WeeklyMetrics]
    churn: ChurnHistory
    retrains: list[RetrainEvent]
    overall: PrecisionRecall
    start_week: int
    end_week: int
    #: retrainings that failed (only populated with ``on_retrain_error="degrade"``)
    retrain_failures: list[RetrainFailure] = field(default_factory=list)

    def series(self, metric: str) -> tuple[list[int], list[float]]:
        """(weeks, values) of ``"precision"`` or ``"recall"``."""
        if metric not in ("precision", "recall"):
            raise ValueError(f"metric must be precision or recall, got {metric!r}")
        return (
            [w.week for w in self.weekly],
            [getattr(w, metric) for w in self.weekly],
        )


class DynamicMetaLearningFramework:
    """Top-level entry point reproducing the paper's prediction engine."""

    def __init__(
        self,
        config: FrameworkConfig | None = None,
        catalog: EventCatalog | None = None,
        executor: Executor | None = None,
        own_executor: bool = False,
    ) -> None:
        self.config = config or FrameworkConfig()
        self.catalog = catalog or default_catalog()
        self._executor = executor
        self._own_executor = own_executor and executor is not None
        self.meta = MetaLearner(
            learners=self.config.learners,
            catalog=self.catalog,
            executor=executor,
            learner_params=self.config.learner_params,
        )
        self.reviser = Reviser(
            min_roc=self.config.min_roc,
            catalog=self.catalog,
            tick=self.config.tick,
            dist_horizon_cap=self.config.dist_horizon_cap,
        )
        self.repository = KnowledgeRepository()
        #: The active prediction window; subclasses (adaptive tuning) may
        #: change it between retrainings.
        self._window = self.config.prediction_window

    @property
    def prediction_window(self) -> float:
        """The currently active prediction window ``Wp``."""
        return self._window

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the executor if this framework owns it (idempotent)."""
        if self._own_executor:
            self._own_executor = False
            assert self._executor is not None
            self._executor.close()

    def __enter__(self) -> "DynamicMetaLearningFramework":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- retraining --------------------------------------------------------

    def _retrain(self, log: EventLog, week: int) -> RetrainEvent:
        cfg = self.config
        w0, w1 = cfg.policy.window(week)
        train_log = log.slice_weeks(w0, w1)

        output = self.meta.train(train_log, self._window, week=week)
        candidates = output.records()
        candidate_keys = {r.key for r in candidates}

        if cfg.use_reviser:
            revision = self.reviser.revise(
                candidates, train_log, self._window
            )
            kept = revision.kept
            removed_keys = revision.removed_keys
            revise_seconds = revision.seconds
        else:
            kept = candidates
            removed_keys = set()
            revise_seconds = 0.0

        churn = diff_rule_sets(
            week, self.repository.keys(), candidate_keys, removed_keys
        )
        self.repository.replace_all(kept)
        return RetrainEvent(
            week=week,
            train_span=(w0, w1),
            n_candidates=len(candidates),
            n_kept=len(kept),
            churn=churn,
            generation_seconds=output.seconds,
            revise_seconds=revise_seconds,
            learner_seconds=dict(output.learner_seconds),
        )

    def _rule_weights(self) -> dict:
        """Per-rule training precision (m1), the weighted policy's input."""
        return self.repository.precision_weights()

    def _should_retrain(self, week: int, start_week: int) -> bool:
        if week == start_week:
            return True  # initial training
        if not self.config.policy.retrains:
            return False
        return (week - start_week) % self.config.retrain_weeks == 0

    # -- main loop -----------------------------------------------------------

    def run(
        self,
        log: EventLog,
        start_week: int | None = None,
        end_week: int | None = None,
    ) -> RunResult:
        """Train-and-predict over ``log``.

        Weeks before ``start_week`` (default: the configured initial
        training period) are training-only; prediction and evaluation run
        from ``start_week`` to ``end_week`` (default: end of log).
        """
        cfg = self.config
        start = cfg.initial_train_weeks if start_week is None else start_week
        end = log.n_weeks if end_week is None else end_week
        if start < 1:
            raise ValueError(f"start_week must be >= 1, got {start}")
        if end <= start:
            raise ValueError(
                f"nothing to evaluate: end_week {end} <= start_week {start}"
            )

        warnings: list[FailureWarning] = []
        churn = ChurnHistory()
        retrains: list[RetrainEvent] = []
        failures: list[RetrainFailure] = []
        predictor: Predictor | None = None
        #: week owed a successful retraining (degraded mode only)
        pending: int | None = None
        attempts = 0

        for week in range(start, end):
            if self._should_retrain(week, start) or pending is not None:
                try:
                    event = self._retrain(log, week)
                except Exception as exc:
                    if cfg.on_retrain_error == "raise":
                        raise
                    # Degraded mode: keep the previous rule set, retry at
                    # the next week (batch replay has no finer clock).
                    attempts += 1
                    failures.append(
                        RetrainFailure(
                            week=week,
                            error=repr(exc),
                            error_type=type(exc).__name__,
                            attempt=attempts,
                            time=log.origin + week * WEEK_SECONDS,
                        )
                    )
                    observe.counter("online.retrain_failures").inc()
                    pending = week
                else:
                    retrains.append(event)
                    churn.append(event.churn)
                    predictor = None
                    pending = None
                    attempts = 0
            if predictor is None:
                predictor = Predictor(
                    self.repository.rules(),
                    window=self._window,
                    catalog=self.catalog,
                    ensemble=cfg.ensemble,
                    dist_horizon_cap=cfg.dist_horizon_cap,
                    rule_weights=self._rule_weights(),
                    indexing=cfg.predictor_indexing,
                )
                # Re-prime the fresh predictor with the last Wp seconds of
                # history so precursors straddling the handover can still
                # complete a rule, and anchor its clock at the week
                # boundary so replay does not reject the first event.
                boundary = log.origin + week * WEEK_SECONDS
                predictor.prime(
                    log.between(boundary - self._window, boundary),
                    now=boundary,
                )
            warnings.extend(predictor.replay(log.week(week), tick=cfg.tick))

        weekly, overall = self._evaluate(log, warnings, start, end)
        return RunResult(
            config=cfg,
            warnings=warnings,
            weekly=weekly,
            churn=churn,
            retrains=retrains,
            overall=overall,
            start_week=start,
            end_week=end,
            retrain_failures=failures,
        )

    # -- evaluation ------------------------------------------------------------

    def _evaluate(
        self,
        log: EventLog,
        warnings: list[FailureWarning],
        start_week: int,
        end_week: int,
    ) -> tuple[list[WeeklyMetrics], PrecisionRecall]:
        fatal_times, fatal_codes = extract_failures(log, self.catalog)
        result = match_warnings(warnings, fatal_times, fatal_codes)

        def week_of(t: float) -> int:
            return int((t - log.origin) // WEEK_SECONDS)

        weekly: list[WeeklyMetrics] = []
        per_week_tp = {w: 0 for w in range(start_week, end_week)}
        per_week_fp = dict(per_week_tp)
        per_week_fn = dict(per_week_tp)
        per_week_warn = dict(per_week_tp)
        per_week_fatal = dict(per_week_tp)

        for i, w in enumerate(warnings):
            wk = week_of(w.time)
            if wk not in per_week_tp:
                continue
            per_week_warn[wk] += 1
            if result.matched[i]:
                per_week_tp[wk] += 1
            else:
                per_week_fp[wk] += 1
        for j, t in enumerate(fatal_times):
            wk = week_of(float(t))
            if wk not in per_week_fn:
                continue
            per_week_fatal[wk] += 1
            if not result.covered[j]:
                per_week_fn[wk] += 1

        for wk in range(start_week, end_week):
            weekly.append(
                WeeklyMetrics(
                    week=wk,
                    counts=PrecisionRecall(
                        tp=per_week_tp[wk], fp=per_week_fp[wk], fn=per_week_fn[wk]
                    ),
                    n_warnings=per_week_warn[wk],
                    n_fatal=per_week_fatal[wk],
                )
            )
        overall = PrecisionRecall(
            tp=sum(per_week_tp.values()),
            fp=sum(per_week_fp.values()),
            fn=sum(per_week_fn.values()),
        )
        return weekly, overall
