"""Rule-churn accounting (Figure 12).

At every retraining the paper measures four quantities: rules *unchanged*
(present before and re-learned), rules *added* by the meta-learner, rules
*removed* by the meta-learner (previously held, no longer learned), and
rules *removed by the reviser* (learned this round but failing the ROC
filter).  :class:`ChurnHistory` accumulates one :class:`ChurnRecord` per
retraining so the figure's four series can be printed directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.learners.rules import RuleKey


@dataclass(frozen=True, slots=True)
class ChurnRecord:
    """Rule-set movement at one retraining round."""

    week: int
    unchanged: int
    added: int
    removed_by_meta: int
    removed_by_reviser: int

    @property
    def total_active(self) -> int:
        """Rules used for prediction until the next retraining."""
        return self.unchanged + self.added

    @property
    def change_ratio(self) -> float:
        """(changed / unchanged); the paper reports 44 % – 212 %."""
        changed = self.added + self.removed_by_meta + self.removed_by_reviser
        return changed / self.unchanged if self.unchanged else float("inf")


def diff_rule_sets(
    week: int,
    previous_keys: set[RuleKey],
    candidate_keys: set[RuleKey],
    reviser_removed_keys: set[RuleKey],
) -> ChurnRecord:
    """Compute one churn record.

    ``candidate_keys`` is what the meta-learner produced this round
    (before revising); ``reviser_removed_keys`` ⊆ ``candidate_keys`` is
    what the reviser then discarded.  Surviving rules are candidates minus
    reviser removals; "unchanged" counts survivors already present before.
    """
    if not reviser_removed_keys <= candidate_keys:
        raise ValueError("reviser removals must be a subset of the candidates")
    surviving = candidate_keys - reviser_removed_keys
    return ChurnRecord(
        week=week,
        unchanged=len(surviving & previous_keys),
        added=len(surviving - previous_keys),
        removed_by_meta=len(previous_keys - candidate_keys),
        removed_by_reviser=len(reviser_removed_keys),
    )


@dataclass
class ChurnHistory:
    """Per-retraining churn records, in week order."""

    records: list[ChurnRecord] = field(default_factory=list)

    def append(self, record: ChurnRecord) -> None:
        if self.records and record.week <= self.records[-1].week:
            raise ValueError(
                f"churn records must be appended in week order "
                f"({record.week} after {self.records[-1].week})"
            )
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def series(self) -> dict[str, list[int]]:
        """The four Figure 12 series keyed by name."""
        return {
            "week": [r.week for r in self.records],
            "unchanged": [r.unchanged for r in self.records],
            "added": [r.added for r in self.records],
            "removed_by_meta": [r.removed_by_meta for r in self.records],
            "removed_by_reviser": [r.removed_by_reviser for r in self.records],
        }
