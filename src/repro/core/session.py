"""Pure streaming session core: the prediction state machine, no I/O.

:class:`SessionCore` is the event-at-a-time heart of the online path —
windowing, retrain scheduling, degraded-mode bookkeeping, and the
predictor feed — extracted from the monolithic
``OnlinePredictionSession`` so durability and delivery concerns compose
*around* it instead of being welded into it:

* :class:`~repro.resilience.wrappers.ReorderingSession` re-sequences
  late events through a bounded buffer before they reach the core;
* :class:`~repro.resilience.wrappers.JournalingSession` appends every
  accepted input to a write-ahead log before delegating;
* :class:`~repro.observe.wrappers.MeteredSession` records labeled
  throughput/latency/degraded-state metrics around any layer.

Every layer implements the same three-method :class:`StreamSession`
protocol (``ingest`` / ``advance`` / ``flush``), so stacks are built by
plain composition — ``JournalingSession(ReorderingSession(core))`` — and
a fleet-level service can wrap N cores without any of them knowing.

The core itself performs no durable I/O: it owns no files, no journal,
no checkpoint format.  (It *does* record process-local metrics through
:mod:`repro.observe` and may train through an executor — neither touches
disk.)  Checkpoint serialization lives with the
``OnlinePredictionSession`` facade, which reads the core's state through
:meth:`state`-style accessors rather than pickling it blind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro import observe
from repro.adapt import DriftMonitor
from repro.alerts import FailureWarning
from repro.core.framework import FrameworkConfig, RetrainEvent
from repro.core.knowledge import KnowledgeRepository
from repro.core.meta import MetaLearner
from repro.core.predictor import Predictor
from repro.core.reviser import Reviser
from repro.core.tracking import ChurnHistory, diff_rule_sets
from repro.evaluation.matching import MatchResult, match_warnings
from repro.parallel.executor import Executor
from repro.raslog.catalog import EventCatalog, default_catalog
from repro.raslog.events import RASEvent
from repro.raslog.store import EventLog
from repro.resilience.degrade import RetrainFailure, backoff_delay
from repro.utils.timeutil import WEEK_SECONDS


@runtime_checkable
class StreamSession(Protocol):
    """The composable session surface every layer implements."""

    def ingest(self, event: RASEvent) -> list[FailureWarning]: ...

    def advance(self, now: float) -> list[FailureWarning]: ...

    def flush(self) -> list[FailureWarning]: ...


@dataclass
class SessionSummary:
    """Accounting of a finished (or in-flight) session.

    ``precision``/``recall`` follow the paper's Section 5.1 formulas
    (true positives are correct *predictions*, false negatives are missed
    *failures*), matching
    :attr:`repro.core.framework.RunResult.overall`; the full
    :class:`MatchResult` is attached for coverage-based analysis.
    """

    n_events: int
    n_fatal: int
    n_warnings: int
    matching: MatchResult
    retrains: list[RetrainEvent] = field(default_factory=list)
    retrain_failures: list[RetrainFailure] = field(default_factory=list)
    n_quarantined: int = 0

    @property
    def precision(self) -> float:
        denom = self.matching.true_positives + self.matching.false_positives
        return self.matching.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.matching.true_positives + self.matching.false_negatives
        return self.matching.true_positives / denom if denom else 0.0


class SessionCore:
    """Ordered event-at-a-time prediction state machine.

    ``origin`` anchors week arithmetic (events must not precede it).
    Predictions start once ``config.initial_train_weeks`` of data have
    streamed in; before that, :meth:`ingest` buffers silently.  Events
    must arrive in time order — tolerance for disorder is a wrapper's
    job (:class:`~repro.resilience.wrappers.ReorderingSession`).
    """

    def __init__(
        self,
        config: FrameworkConfig | None = None,
        catalog: EventCatalog | None = None,
        executor: Executor | None = None,
        origin: float = 0.0,
    ) -> None:
        self.config = config or FrameworkConfig()
        self.catalog = catalog or default_catalog()
        self.origin = float(origin)
        self.meta = MetaLearner(
            learners=self.config.learners,
            catalog=self.catalog,
            executor=executor,
            learner_params=self.config.learner_params,
        )
        self.reviser = Reviser(
            min_roc=self.config.min_roc,
            catalog=self.catalog,
            tick=self.config.tick,
            dist_horizon_cap=self.config.dist_horizon_cap,
        )
        self.repository = KnowledgeRepository()
        self.churn = ChurnHistory()
        self.retrains: list[RetrainEvent] = []
        self.warnings: list[FailureWarning] = []
        #: failed retraining attempts (degraded mode only)
        self.retrain_failures: list[RetrainFailure] = []

        self._events: list[RASEvent] = []
        self._fatal_times: list[float] = []
        self._fatal_codes: list[str] = []
        self._last_time = self.origin
        self._predictor: Predictor | None = None
        #: week number of the next scheduled retraining boundary (with
        #: the adaptive trigger: the next weekly drift *evaluation*);
        #: None once a non-retraining policy has run its initial training
        self._next_retrain_week: int | None = self.config.initial_train_weeks
        #: week still owed a successful retraining (degraded mode)
        self._pending_retrain_week: int | None = None
        #: consecutive retrain failures since the last success
        self._retrain_attempts = 0
        #: stream time before which no retry may run
        self._retry_at = float("-inf")
        #: stream time at which the current degraded stretch began
        self._degraded_since: float | None = None
        #: events dropped from the head of ``_events`` by a tail resume
        self._history_dropped = 0
        #: drift detectors + adaptive retrain policy (None: fixed cadence)
        self._adapt: DriftMonitor | None = (
            DriftMonitor.from_config(self.config)
            if self.config.retrain_trigger == "adaptive"
            else None
        )

    # -- bookkeeping -------------------------------------------------------

    @property
    def current_week(self) -> int:
        return int((self._last_time - self.origin) // WEEK_SECONDS)

    @property
    def started(self) -> bool:
        """Whether the initial training has happened yet."""
        return self._predictor is not None

    @property
    def degraded(self) -> bool:
        """Whether a retraining is currently owed after failures."""
        return self._pending_retrain_week is not None

    @property
    def last_time(self) -> float:
        """The stream clock: timestamp of the newest observed instant."""
        return self._last_time

    @property
    def adaptive(self) -> bool:
        """Whether retraining is drift-triggered rather than fixed-cadence."""
        return self._adapt is not None

    def drift_status(self) -> dict | None:
        """Drift-detector/policy state, or None with the fixed trigger."""
        return None if self._adapt is None else self._adapt.status()

    def history(self) -> EventLog:
        """Everything ingested so far, as an EventLog.

        A core restored from a tail checkpoint only retains the tail its
        future retrainings can reach; earlier events are summarized by
        counters (``summary().n_events`` stays exact).
        """
        return EventLog(self._events, origin=self.origin, _presorted=True)

    def _boundary_time(self, week: int) -> float:
        return self.origin + week * WEEK_SECONDS

    # -- retraining ---------------------------------------------------------

    def _retrain(self, week: int) -> None:
        cfg = self.config
        history = self.history()
        w0, w1 = cfg.policy.window(week)
        train_log = history.slice_weeks(w0, w1)

        with observe.span("online.retrain"):
            output = self.meta.train(
                train_log, cfg.prediction_window, week=week
            )
            candidates = output.records()
            candidate_keys = {r.key for r in candidates}

            if cfg.use_reviser:
                revision = self.reviser.revise(
                    candidates, train_log, cfg.prediction_window
                )
                kept, removed_keys = revision.kept, revision.removed_keys
                revise_seconds = revision.seconds
            else:
                kept, removed_keys = candidates, set()
                revise_seconds = 0.0

            churn_record = diff_rule_sets(
                week, self.repository.keys(), candidate_keys, removed_keys
            )
            self.repository.replace_all(kept)
            self.churn.append(churn_record)
            self.retrains.append(
                RetrainEvent(
                    week=week,
                    train_span=(w0, w1),
                    n_candidates=len(candidates),
                    n_kept=len(kept),
                    churn=churn_record,
                    generation_seconds=output.seconds,
                    revise_seconds=revise_seconds,
                    learner_seconds=dict(output.learner_seconds),
                )
            )

            self._predictor = self.make_predictor()
            # Re-prime the fresh predictor with the last Wp seconds of the
            # stream: the rule set changed but the system's recent past did
            # not, so precursors that arrived just before the boundary must
            # still be able to complete a rule (batch/stream equivalence).
            boundary = self._boundary_time(week)
            self._predictor.prime(
                history.between(boundary - cfg.prediction_window, boundary),
                now=boundary,
            )

    def make_predictor(self) -> Predictor:
        """A fresh predictor over the current rule repository."""
        cfg = self.config
        return Predictor(
            self.repository.rules(),
            window=cfg.prediction_window,
            catalog=self.catalog,
            ensemble=cfg.ensemble,
            dist_horizon_cap=cfg.dist_horizon_cap,
            rule_weights=self.repository.precision_weights(),
            indexing=cfg.predictor_indexing,
        )

    def _schedule_after(self, week: int) -> None:
        if not self.config.policy.retrains:
            self._next_retrain_week = None
        elif self._adapt is not None:
            # Adaptive trigger: every week boundary is an *evaluation*;
            # whether it becomes a retraining is the policy's call.
            self._next_retrain_week = week + 1
        else:
            self._next_retrain_week = week + self.config.retrain_weeks

    def _attempt_retrain(self, week: int, now: float) -> None:
        """One retraining try; in degraded mode a failure is absorbed."""
        try:
            self._retrain(week)
        except Exception as exc:
            if self.config.on_retrain_error == "raise":
                raise
            self._retrain_attempts += 1
            self.retrain_failures.append(
                RetrainFailure(
                    week=week,
                    error=repr(exc),
                    error_type=type(exc).__name__,
                    attempt=self._retrain_attempts,
                    time=now,
                )
            )
            observe.counter("online.retrain_failures").inc()
            if self._degraded_since is None:
                self._degraded_since = now
            self._retry_at = now + backoff_delay(
                self._retrain_attempts,
                self.config.retrain_backoff_base,
                self.config.retrain_backoff_cap,
            )
        else:
            self._pending_retrain_week = None
            self._retrain_attempts = 0
            self._retry_at = float("-inf")
            if self._degraded_since is not None:
                observe.counter("online.degraded_seconds").inc(
                    max(0.0, now - self._degraded_since)
                )
                self._degraded_since = None
            if self._adapt is not None:
                self._adapt.retrained(week)

    def _cross_boundaries(self, t: float) -> None:
        """Run any retrainings whose boundary the stream has crossed, and
        any backoff-elapsed retry owed from earlier failures."""
        while (
            self._next_retrain_week is not None
            and t >= self._boundary_time(self._next_retrain_week)
        ):
            week = self._next_retrain_week
            self._schedule_after(week)
            if self._adapt is not None:
                if self._pending_retrain_week is not None:
                    # Degraded: a retraining is already owed to the retry
                    # machinery.  A drift signal now must defer to it —
                    # never queue a second retraining for the same regime
                    # change.
                    self._adapt.evaluate(week, deferred=True)
                    continue
                decision = self._adapt.evaluate(week)
                if not decision.retrain:
                    continue
            # The newest crossed boundary supersedes an older owed week:
            # its training window is the current one.
            self._pending_retrain_week = week
            if t >= self._retry_at:
                self._attempt_retrain(week, t)
        if self._pending_retrain_week is not None and t >= self._retry_at:
            self._attempt_retrain(self._pending_retrain_week, t)

    # -- StreamSession surface ---------------------------------------------

    def ingest(self, event: RASEvent) -> list[FailureWarning]:
        """Feed one in-order event; returns any warnings it raised."""
        if event.timestamp < self.origin:
            raise ValueError(
                f"event at {event.timestamp} precedes the session origin "
                f"{self.origin}"
            )
        if event.timestamp < self._last_time:
            raise ValueError(
                f"events must arrive in time order "
                f"({event.timestamp} < {self._last_time})"
            )
        self._cross_boundaries(event.timestamp)
        self._last_time = event.timestamp
        self._events.append(event)
        observe.counter("online.events").inc()
        code = event.entry_data
        if code in self.catalog and self.catalog.is_fatal_code(code):
            self._fatal_times.append(event.timestamp)
            self._fatal_codes.append(code)
        if self._adapt is not None:
            self._adapt.observe_event(code, event.timestamp, event.location)

        if self._predictor is None:
            return []
        with observe.timer("online.ingest"):
            new = self._predictor.feed(event, tick=self.config.tick)
        self.warnings.extend(new)
        if self._adapt is not None and new:
            self._adapt.observe_warnings(new)
        return new

    def advance(self, now: float) -> list[FailureWarning]:
        """Move the session clock without an event (idle timer service)."""
        if now < self._last_time:
            raise ValueError(
                f"clock moved backwards: {now} < {self._last_time}"
            )
        self._cross_boundaries(now)
        self._last_time = now
        if self._predictor is None or self.config.tick is None:
            return []
        caught = self._predictor.catch_up(now, self.config.tick)
        self.warnings.extend(caught)
        if self._adapt is not None and caught:
            self._adapt.observe_warnings(caught)
        return caught

    def flush(self) -> list[FailureWarning]:
        """End of stream; the pure core holds nothing back."""
        return []

    # -- accounting ---------------------------------------------------------

    def summary(self, n_quarantined: int = 0) -> SessionSummary:
        """Accuracy accounting over the prediction period.

        Failures that occurred before predictions started (during the
        initial training period) do not count toward recall.
        """
        prediction_start = self._boundary_time(self.config.initial_train_weeks)
        times: list[float] = []
        codes: list[str] = []
        for t, c in zip(self._fatal_times, self._fatal_codes):
            if t >= prediction_start:
                times.append(t)
                codes.append(c)
        matching = match_warnings(
            self.warnings, np.asarray(times, dtype=np.float64), codes
        )
        return SessionSummary(
            n_events=self._history_dropped + len(self._events),
            n_fatal=len(times),
            n_warnings=len(self.warnings),
            matching=matching,
            retrains=list(self.retrains),
            retrain_failures=list(self.retrain_failures),
            n_quarantined=n_quarantined,
        )

    def history_tail_start(self) -> float:
        """Earliest event time any future retraining can reach.

        Sliding policies only look back ``length_weeks`` from the next
        owed retraining (minus one prediction window for predictor
        priming); growing and static policies need the full history.
        """
        wp = self.config.prediction_window
        owed = [
            w
            for w in (self._pending_retrain_week, self._next_retrain_week)
            if w is not None
        ]
        if not owed:
            return self._last_time - wp
        policy = self.config.policy
        if policy.kind != "sliding":
            return self.origin
        first = min(owed)
        w0 = max(0, first - policy.length_weeks)
        return min(self._boundary_time(w0), self._boundary_time(first) - wp)


__all__ = ["SessionCore", "SessionSummary", "StreamSession"]
