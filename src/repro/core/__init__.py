"""The paper's primary contribution: dynamic meta-learning for failure
prediction — meta-learner, reviser, predictor, knowledge repository and
the dynamic retraining framework (Section 4)."""

from repro.core.adaptive import (
    AdaptiveWindowFramework,
    AdaptiveWindowTuner,
    TuningDecision,
)
from repro.core.framework import (
    DynamicMetaLearningFramework,
    FrameworkConfig,
    RetrainEvent,
    RunResult,
    WeeklyMetrics,
)
from repro.core.online import OnlinePredictionSession, SessionSummary
from repro.core.session import SessionCore, StreamSession
from repro.core.serialization import (
    dump_repository,
    load_repository,
    rule_from_dict,
    rule_to_dict,
)
from repro.core.knowledge import KnowledgeRepository, RuleRecord
from repro.core.meta import MetaLearner, TrainingOutput
from repro.core.predictor import (
    ENSEMBLE_POLICIES,
    FailureWarning,
    Predictor,
    PredictorState,
)
from repro.core.reviser import DEFAULT_MIN_ROC, Reviser, RevisionResult
from repro.core.tracking import ChurnHistory, ChurnRecord, diff_rule_sets
from repro.core.windows import (
    TrainingPolicy,
    dynamic_months,
    dynamic_whole,
    static_initial,
)

__all__ = [
    "AdaptiveWindowFramework",
    "AdaptiveWindowTuner",
    "DEFAULT_MIN_ROC",
    "ENSEMBLE_POLICIES",
    "OnlinePredictionSession",
    "SessionCore",
    "SessionSummary",
    "StreamSession",
    "TuningDecision",
    "dump_repository",
    "load_repository",
    "rule_from_dict",
    "rule_to_dict",
    "ChurnHistory",
    "ChurnRecord",
    "DynamicMetaLearningFramework",
    "FailureWarning",
    "FrameworkConfig",
    "KnowledgeRepository",
    "MetaLearner",
    "Predictor",
    "PredictorState",
    "RetrainEvent",
    "Reviser",
    "RevisionResult",
    "RuleRecord",
    "RunResult",
    "TrainingOutput",
    "TrainingPolicy",
    "WeeklyMetrics",
    "diff_rule_sets",
    "dynamic_months",
    "dynamic_whole",
    "static_initial",
]
