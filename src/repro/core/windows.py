"""Training-window policies (Section 5.2.2, Figure 9).

The paper compares four ways of choosing the training set at each
retraining: *dynamic-whole* (all history so far), *dynamic-6 mo* and
*dynamic-3 mo* (sliding windows), and *static* (the initial window,
never retrained).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Weeks per "month" in the paper's 3-/6-month windows (≈ 30 days).
WEEKS_PER_MONTH = 30.0 / 7.0


@dataclass(frozen=True, slots=True)
class TrainingPolicy:
    """Maps the current week to a ``[start_week, end_week)`` training span.

    ``kind``:
      * ``"growing"`` — train on everything seen so far (dynamic-whole);
      * ``"sliding"`` — train on the most recent ``length_weeks`` weeks;
      * ``"static"``  — always the initial ``length_weeks`` weeks (and no
        retraining should be triggered by the framework).
    """

    kind: str
    length_weeks: int = 26

    def __post_init__(self) -> None:
        if self.kind not in ("growing", "sliding", "static"):
            raise ValueError(
                f"kind must be growing/sliding/static, got {self.kind!r}"
            )
        if self.length_weeks <= 0:
            raise ValueError(
                f"length_weeks must be positive, got {self.length_weeks}"
            )

    @property
    def retrains(self) -> bool:
        return self.kind != "static"

    def window(self, current_week: int) -> tuple[int, int]:
        """Training span (in weeks, half-open) when retraining at
        ``current_week``."""
        if current_week < 0:
            raise ValueError(f"current_week must be >= 0, got {current_week}")
        if self.kind == "growing":
            return (0, current_week)
        if self.kind == "sliding":
            return (max(0, current_week - self.length_weeks), current_week)
        return (0, self.length_weeks)


def dynamic_whole() -> TrainingPolicy:
    """Train on all historical data (dynamic-whole)."""
    return TrainingPolicy(kind="growing")


def dynamic_months(months: int = 6) -> TrainingPolicy:
    """Sliding window of the most recent ``months`` (dynamic-N mo)."""
    if months <= 0:
        raise ValueError(f"months must be positive, got {months}")
    return TrainingPolicy(kind="sliding", length_weeks=round(months * WEEKS_PER_MONTH))


def static_initial(months: int = 6) -> TrainingPolicy:
    """Fixed initial window, never retrained (static)."""
    if months <= 0:
        raise ValueError(f"months must be positive, got {months}")
    return TrainingPolicy(kind="static", length_weeks=round(months * WEEKS_PER_MONTH))
