"""Knowledge repository (Figure 1).

Stores the learned rules of failure patterns together with their
provenance (which base learner produced them, at which retraining, with
what training-set scores).  The repository is versioned by retraining
round, so the rule-churn accounting of Figure 12 falls out of a diff
between consecutive versions (:mod:`repro.core.tracking`).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, replace

from repro.learners.rules import Rule, RuleKey, rule_sort_key


@dataclass(frozen=True, slots=True)
class RuleRecord:
    """One rule plus its provenance."""

    rule: Rule
    learner: str
    trained_at_week: int
    #: Algorithm 1 scores on the training set, filled by the reviser.
    tp: int = 0
    fp: int = 0
    fn: int = 0
    roc: float = 0.0

    @property
    def key(self) -> RuleKey:
        return self.rule.key

    def with_scores(self, tp: int, fp: int, fn: int, roc: float) -> "RuleRecord":
        return replace(self, tp=tp, fp=fp, fn=fn, roc=roc)


class KnowledgeRepository:
    """The current rule set, keyed by rule identity."""

    def __init__(self, records: Iterable[RuleRecord] = ()) -> None:
        self._records: dict[RuleKey, RuleRecord] = {}
        for record in records:
            self.add(record)

    def add(self, record: RuleRecord) -> None:
        if record.key in self._records:
            raise ValueError(f"duplicate rule key {record.key!r}")
        self._records[record.key] = record

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: RuleKey) -> bool:
        return key in self._records

    def __iter__(self) -> Iterator[RuleRecord]:
        return iter(self.records())

    def get(self, key: RuleKey) -> RuleRecord:
        try:
            return self._records[key]
        except KeyError:
            raise KeyError(f"no rule with key {key!r}") from None

    def records(self) -> list[RuleRecord]:
        return sorted(self._records.values(), key=lambda r: rule_sort_key(r.rule))

    def rules(self) -> list[Rule]:
        return [r.rule for r in self.records()]

    def keys(self) -> set[RuleKey]:
        return set(self._records)

    def by_learner(self, learner: str) -> list[RuleRecord]:
        return [r for r in self.records() if r.learner == learner]

    def precision_weights(self) -> dict[RuleKey, float]:
        """Per-rule training precision (Algorithm 1's m1) for rules that
        fired during revision — the ``weighted`` ensemble's input."""
        weights: dict[RuleKey, float] = {}
        for record in self._records.values():
            fired = record.tp + record.fp
            if fired:
                weights[record.key] = record.tp / fired
        return weights

    def replace_all(self, records: Iterable[RuleRecord]) -> None:
        self._records.clear()
        for record in records:
            self.add(record)

    def snapshot(self) -> "KnowledgeRepository":
        """Independent copy (records are immutable, so this is shallow)."""
        copy = KnowledgeRepository()
        copy._records = dict(self._records)
        return copy
