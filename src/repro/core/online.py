"""Online (streaming) operation of the dynamic meta-learning framework.

:class:`~repro.core.framework.DynamicMetaLearningFramework` replays a
complete log; a deployment instead *streams* events as the CMCS reports
them.  :class:`OnlinePredictionSession` is that mode: feed events one at
a time with :meth:`ingest`, receive warnings back, and retraining fires
automatically whenever the stream crosses a retraining boundary — using
exactly the same training-window policy, meta-learner and reviser as the
batch framework, so a streamed trace produces the same warnings as a
batch run over the same events (covered by the equivalence tests).

Structurally the session is a *facade* over a layered stack
(:mod:`repro.core.session`): a pure :class:`~repro.core.session.SessionCore`
holds the prediction state machine, and the production concerns compose
around it as wrappers —

* :class:`~repro.resilience.wrappers.ReorderingSession` (enabled by
  ``config.reorder_slack > 0``) re-sequences out-of-order events within
  the slack through a bounded buffer and quarantines later ones;
* :class:`~repro.resilience.wrappers.JournalingSession` (enabled by
  passing a :class:`~repro.resilience.EventJournal`) appends every
  accepted input write-ahead, so :meth:`recover` (checkpoint + journal
  replay past the checkpoint's recorded position) is crash-consistent;
* with ``config.on_retrain_error="degrade"``, a crashing retraining is
  recorded as a :class:`~repro.resilience.RetrainFailure` inside the
  core and retried with capped exponential backoff while the previous
  rule set keeps predicting;
* :meth:`checkpoint` / :meth:`resume` round-trip the full stack state
  through a versioned JSON file, so a restarted process continues
  byte-identically to one that never stopped.

The facade owns input validation (a rejected event must never reach the
journal), the ``n_ingested`` ledger, and the checkpoint schema; a fleet
of these sessions is orchestrated by
:class:`repro.service.PredictionService`.
"""

from __future__ import annotations

from collections import deque
from pathlib import Path

import numpy as np

from repro import observe
from repro.alerts import FailureWarning
from repro.core.framework import FrameworkConfig, RetrainEvent
from repro.core.knowledge import KnowledgeRepository
from repro.core.session import SessionCore, SessionSummary, StreamSession
from repro.core.tracking import ChurnHistory
from repro.parallel.executor import Executor
from repro.raslog.catalog import EventCatalog
from repro.raslog.events import RASEvent
from repro.raslog.store import EventLog
from repro.resilience import checkpoint as ckpt
from repro.resilience.degrade import RetrainFailure
from repro.resilience.journal import EventJournal, JournalCorruption
from repro.resilience.reorder import ReorderBuffer
from repro.resilience.wrappers import (
    QUARANTINE_KEEP,
    JournalingSession,
    ReorderingSession,
)

__all__ = [
    "OnlinePredictionSession",
    "QUARANTINE_KEEP",
    "SessionSummary",
]


class OnlinePredictionSession:
    """Event-at-a-time interface to the prediction engine.

    ``origin`` anchors week arithmetic (events must not precede it).
    Predictions start once ``config.initial_train_weeks`` of data have
    streamed in; before that, :meth:`ingest` buffers silently.
    """

    def __init__(
        self,
        config: FrameworkConfig | None = None,
        catalog: EventCatalog | None = None,
        executor: Executor | None = None,
        origin: float = 0.0,
        own_executor: bool = False,
        journal: EventJournal | None = None,
    ) -> None:
        self._executor = executor
        self._own_executor = own_executor and executor is not None
        self._core = SessionCore(
            config, catalog=catalog, executor=executor, origin=origin
        )
        #: total events offered to :meth:`ingest` (incl. buffered/dropped)
        self.n_ingested = 0

        self._reordering: ReorderingSession | None = (
            ReorderingSession(self._core, self._core.config.reorder_slack)
            if self._core.config.reorder_slack > 0
            else None
        )
        self._journaling: JournalingSession | None = None
        self._stack: StreamSession = self._reordering or self._core
        if journal is not None:
            self._journaling = JournalingSession(self._stack, journal)
            self._stack = self._journaling

    # -- layer access ------------------------------------------------------

    @property
    def core(self) -> SessionCore:
        """The pure prediction state machine under the wrappers."""
        return self._core

    @property
    def config(self) -> FrameworkConfig:
        return self._core.config

    @property
    def catalog(self) -> EventCatalog:
        return self._core.catalog

    @property
    def origin(self) -> float:
        return self._core.origin

    @property
    def meta(self):
        return self._core.meta

    @property
    def reviser(self):
        return self._core.reviser

    @property
    def repository(self) -> KnowledgeRepository:
        return self._core.repository

    @property
    def churn(self) -> ChurnHistory:
        return self._core.churn

    @property
    def retrains(self) -> list[RetrainEvent]:
        return self._core.retrains

    @property
    def warnings(self) -> list[FailureWarning]:
        return self._core.warnings

    @property
    def retrain_failures(self) -> list[RetrainFailure]:
        """Failed retraining attempts (degraded mode only)."""
        return self._core.retrain_failures

    @property
    def quarantined(self) -> deque[RASEvent]:
        """Most recent events dropped as later than ``reorder_slack``."""
        if self._reordering is None:
            return deque(maxlen=QUARANTINE_KEEP)
        return self._reordering.quarantined

    @property
    def n_quarantined(self) -> int:
        return 0 if self._reordering is None else self._reordering.n_quarantined

    @property
    def journal(self) -> EventJournal | None:
        """The attached write-ahead journal, if any."""
        return None if self._journaling is None else self._journaling.journal

    @property
    def _reorder(self) -> ReorderBuffer | None:
        """The reorder buffer, if late-event tolerance is enabled."""
        return None if self._reordering is None else self._reordering.buffer

    @property
    def _last_time(self) -> float:
        return self._core.last_time

    # -- bookkeeping -------------------------------------------------------

    @property
    def current_week(self) -> int:
        return self._core.current_week

    @property
    def started(self) -> bool:
        """Whether the initial training has happened yet."""
        return self._core.started

    @property
    def degraded(self) -> bool:
        """Whether a retraining is currently owed after failures."""
        return self._core.degraded

    @property
    def adaptive(self) -> bool:
        """Whether retraining is drift-triggered rather than fixed-cadence."""
        return self._core.adaptive

    def drift_status(self) -> dict | None:
        """Drift-detector/policy state, or None with the fixed trigger."""
        return self._core.drift_status()

    def history(self) -> EventLog:
        """Everything ingested so far, as an EventLog.

        A session resumed from a tail checkpoint only retains the tail
        its future retrainings can reach; earlier events are summarized
        by counters (``summary().n_events`` stays exact).
        """
        return self._core.history()

    def close(self) -> None:
        """Release the executor if this session owns it (idempotent)."""
        if self._own_executor:
            self._own_executor = False
            assert self._executor is not None
            self._executor.close()

    def __enter__(self) -> "OnlinePredictionSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- public API --------------------------------------------------------

    def ingest(self, event: RASEvent) -> list[FailureWarning]:
        """Feed one event; returns any warnings it (or the timer) raised.

        With ``config.reorder_slack == 0`` (the default) events must
        arrive in time order and a regression raises ``ValueError``.
        With a positive slack, out-of-order events within the slack are
        buffered and re-sequenced — the returned warnings then belong to
        whichever earlier events cleared the buffer — and events later
        than the slack are quarantined (counted, kept in
        :attr:`quarantined`, never raised).  Call :meth:`flush` at end of
        stream to drain the buffer.

        Validation happens *here*, before the stack: a rejected event is
        deliberately never journaled — replaying it would abort recovery
        with the same error.
        """
        if event.timestamp < self.origin:
            raise ValueError(
                f"event at {event.timestamp} precedes the session origin "
                f"{self.origin}"
            )
        if self._reordering is None and event.timestamp < self._core.last_time:
            raise ValueError(
                f"events must arrive in time order "
                f"({event.timestamp} < {self._core.last_time})"
            )
        new = self._stack.ingest(event)
        self.n_ingested += 1
        return new

    def ingest_batch(self, events: list[RASEvent]) -> list[FailureWarning]:
        """Feed a batch of events; returns warnings in ingest order.

        Semantically equivalent to calling :meth:`ingest` per event,
        but with journaling enabled the whole batch is made durable by a
        single group commit (one write + one fsync) instead of one fsync
        per event — the dominant per-event cost under
        ``journal_fsync="always"``.

        Validation is atomic over the batch: every event is checked
        against the origin and (without reorder slack) time order
        *before* any is journaled or processed, so a bad batch raises
        ``ValueError`` having changed nothing — there is no partially
        applied prefix to reason about on retry.
        """
        if not events:
            return []
        last = self._core.last_time
        for event in events:
            if event.timestamp < self.origin:
                raise ValueError(
                    f"event at {event.timestamp} precedes the session "
                    f"origin {self.origin}"
                )
            if self._reordering is None:
                if event.timestamp < last:
                    raise ValueError(
                        f"events must arrive in time order "
                        f"({event.timestamp} < {last})"
                    )
                last = event.timestamp
        batch = getattr(self._stack, "ingest_batch", None)
        if batch is not None:
            new = batch(events)
        else:
            new = []
            for event in events:
                new.extend(self._stack.ingest(event))
        self.n_ingested += len(events)
        return new

    def flush(self) -> list[FailureWarning]:
        """Drain the reorder buffer (end of stream); returns new warnings."""
        if self._reordering is None:
            return []
        return self._stack.flush()

    def advance(self, now: float) -> list[FailureWarning]:
        """Move the session clock without an event (idle timer service)."""
        if now < self._core.last_time:
            raise ValueError(
                f"clock moved backwards: {now} < {self._core.last_time}"
            )
        return self._stack.advance(now)

    def summary(self) -> SessionSummary:
        """Accuracy accounting over the prediction period.

        Failures that occurred before predictions started (during the
        initial training period) do not count toward recall.
        """
        return self._core.summary(n_quarantined=self.n_quarantined)

    # -- write-ahead journal -----------------------------------------------

    def _replay_journal(self, from_position: int) -> int:
        """Re-feed journal records past ``from_position``; returns count.

        Replay drives the *public* API (``ingest``/``advance``/``flush``)
        with journaling suppressed, so the recovered session walks
        exactly the state transitions of the pre-crash one — reorder
        buffering, retraining, degraded-mode bookkeeping and all.
        """
        assert self._journaling is not None
        journal = self._journaling.journal
        self._journaling.suppress = True
        replayed = 0
        try:
            for _index, record in journal.replay(from_position):
                kind = record.get("kind")
                if kind == "ingest":
                    self.ingest(RASEvent.from_dict(record["event"]))
                elif kind == "advance":
                    self.advance(record["now"])
                elif kind == "flush":
                    self.flush()
                else:
                    raise JournalCorruption(
                        f"unknown journal record kind {kind!r}"
                    )
                replayed += 1
        finally:
            self._journaling.suppress = False
        if replayed:
            observe.counter("journal.replayed_events").inc(replayed)
        return replayed

    # -- checkpoint / resume -----------------------------------------------

    def checkpoint(self, path: str | Path) -> dict:
        """Serialize the session to ``path`` atomically; returns the payload.

        The file is versioned JSON (schema
        :data:`repro.resilience.CHECKPOINT_VERSION`) carrying the config
        digest, clock and origin, the event-history tail future
        retrainings need, fatal bookkeeping, the rule repository with
        provenance, predictor monitoring state, retrain schedule and
        degraded-mode bookkeeping, churn, accumulated warnings, and any
        reorder-buffer residue.  Written with temp-file + ``os.replace``
        so a crash mid-write never leaves a torn file.
        """
        core = self._core
        tail_start = core.history_tail_start()
        times = np.fromiter(
            (e.timestamp for e in core._events),
            dtype=np.float64,
            count=len(core._events),
        )
        lo = int(np.searchsorted(times, tail_start, side="left"))
        journal = self.journal
        payload = {
            "format": ckpt.CHECKPOINT_FORMAT,
            "version": ckpt.CHECKPOINT_VERSION,
            "config_digest": ckpt.config_digest(core.config),
            "config": ckpt.config_to_dict(core.config),
            "origin": core.origin,
            "last_time": core.last_time,
            "n_ingested": self.n_ingested,
            "history": {
                "dropped": core._history_dropped + lo,
                "events": [e.as_dict() for e in core._events[lo:]],
            },
            "fatal": {
                "times": list(core._fatal_times),
                "codes": list(core._fatal_codes),
            },
            "schedule": {
                "next_retrain_week": core._next_retrain_week,
                "pending_retrain_week": core._pending_retrain_week,
                "retrain_attempts": core._retrain_attempts,
                "retry_at": (
                    None if core._retrain_attempts == 0 else core._retry_at
                ),
                "degraded_since": core._degraded_since,
            },
            "repository": [
                ckpt.record_to_dict(r) for r in core.repository.records()
            ],
            "predictor": (
                None
                if core._predictor is None
                else core._predictor.state_snapshot()
            ),
            "retrains": [
                ckpt.retrain_event_to_dict(r) for r in core.retrains
            ],
            "retrain_failures": [
                ckpt.failure_to_dict(f) for f in core.retrain_failures
            ],
            "warnings": [ckpt.warning_to_dict(w) for w in core.warnings],
            # Write-ahead-log position this snapshot covers: recovery
            # replays journal records from here on.  None: the session
            # ran without a journal (checkpoint-only durability).
            "journal": (
                None if journal is None else {"position": journal.position}
            ),
            # Drift-detector + adaptive-policy state (format v3).  None:
            # fixed-cadence trigger, nothing to capture.
            "adapt": (
                None if core._adapt is None else core._adapt.snapshot()
            ),
            "reorder": (
                None
                if self._reordering is None
                else {
                    # -inf (no event seen yet) is not valid JSON; encode
                    # the sentinel as null, mirroring retry_at above.
                    "max_seen": (
                        None
                        if self._reordering.buffer.max_seen == float("-inf")
                        else self._reordering.buffer.max_seen
                    ),
                    "n_reordered": self._reordering.buffer.n_reordered,
                    "buffered": [
                        e.as_dict() for e in self._reordering.buffer.pending()
                    ],
                    "n_quarantined": self._reordering.n_quarantined,
                    "quarantined_tail": [
                        e.as_dict() for e in self._reordering.quarantined
                    ],
                }
            ),
        }
        ckpt.atomic_write_json(path, payload)
        observe.counter("online.checkpoints").inc()
        if journal is not None:
            # Everything below the recorded position is now covered by
            # this checkpoint; whole segments beneath it can go.
            journal.compact(journal.position)
        return payload

    @classmethod
    def resume(
        cls,
        path: str | Path,
        config: FrameworkConfig | None = None,
        catalog: EventCatalog | None = None,
        executor: Executor | None = None,
        own_executor: bool = False,
        journal: EventJournal | None = None,
    ) -> "OnlinePredictionSession":
        """Rebuild a session from a :meth:`checkpoint` file.

        ``config`` defaults to the one stored in the checkpoint; passing
        one explicitly asserts compatibility — a digest mismatch raises
        :class:`~repro.resilience.CheckpointError` rather than silently
        resuming under different semantics.  The resumed session
        continues byte-identically to one that never stopped (pinned by
        the crash-recovery equivalence tests).

        Passing ``journal`` makes the resume *crash-consistent*: after
        the snapshot is restored, journal records past the checkpoint's
        recorded position are replayed, reconstructing every input the
        crash would otherwise have lost (any torn final record was
        already truncated when the journal was opened).
        """
        payload = ckpt.read_checkpoint(path)
        if config is None:
            config = ckpt.config_from_dict(payload["config"])
        if ckpt.config_digest(config) != payload["config_digest"]:
            raise ckpt.CheckpointError(
                f"{path}: checkpoint was written under a different "
                f"configuration (digest mismatch)"
            )
        session = cls(
            config,
            catalog=catalog,
            executor=executor,
            origin=payload["origin"],
            own_executor=own_executor,
        )
        core = session._core
        core._last_time = payload["last_time"]
        session.n_ingested = payload["n_ingested"]
        core._history_dropped = payload["history"]["dropped"]
        core._events = [
            RASEvent.from_dict(d) for d in payload["history"]["events"]
        ]
        core._fatal_times = list(payload["fatal"]["times"])
        core._fatal_codes = list(payload["fatal"]["codes"])

        schedule = payload["schedule"]
        core._next_retrain_week = schedule["next_retrain_week"]
        core._pending_retrain_week = schedule["pending_retrain_week"]
        core._retrain_attempts = schedule["retrain_attempts"]
        core._retry_at = (
            float("-inf")
            if schedule["retry_at"] is None
            else schedule["retry_at"]
        )
        core._degraded_since = schedule["degraded_since"]

        core.repository = KnowledgeRepository(
            ckpt.record_from_dict(d) for d in payload["repository"]
        )
        if payload["predictor"] is not None:
            predictor = core.make_predictor()
            predictor.restore_state(payload["predictor"])
            core._predictor = predictor
        core.retrains = [
            ckpt.retrain_event_from_dict(d) for d in payload["retrains"]
        ]
        core.churn = ChurnHistory()
        for event in core.retrains:
            core.churn.append(event.churn)
        core.retrain_failures = [
            ckpt.failure_from_dict(d) for d in payload["retrain_failures"]
        ]
        core.warnings = [
            ckpt.warning_from_dict(d) for d in payload["warnings"]
        ]

        # v2 files predate the drift subsystem; their configs are always
        # fixed-cadence (the adaptive config fields change the digest),
        # so a missing/None field never drops adaptive state.
        adapt_state = payload.get("adapt")
        if core._adapt is not None and adapt_state is not None:
            core._adapt.restore(adapt_state)

        reorder = payload["reorder"]
        if reorder is not None and session._reordering is not None:
            buffer = session._reordering.buffer
            buffer.max_seen = (
                float("-inf")
                if reorder["max_seen"] is None
                else reorder["max_seen"]
            )
            for d in reorder["buffered"]:
                # Re-pushing in release order preserves tie-breaking; all
                # were inside the slack window, so none release or drop.
                buffer.push(RASEvent.from_dict(d))
            buffer.n_reordered = reorder["n_reordered"]
            buffer.n_quarantined = reorder["n_quarantined"]
            session._reordering.n_quarantined = reorder["n_quarantined"]
            session._reordering.quarantined.extend(
                RASEvent.from_dict(d) for d in reorder["quarantined_tail"]
            )
        observe.counter("online.resumes").inc()
        if journal is not None:
            session._journaling = JournalingSession(
                session._reordering or session._core, journal
            )
            session._stack = session._journaling
            recorded = payload.get("journal")
            # A v1 checkpoint (or one written journal-less) recorded no
            # position; replaying from 0 is only sound if the journal
            # really does start at this checkpoint's state, so demand an
            # explicit record when any journal records exist.
            if recorded is None and journal.position > 0:
                raise ckpt.CheckpointError(
                    f"{path}: checkpoint carries no journal position but "
                    f"the journal holds {journal.position} record(s); "
                    f"cannot align replay"
                )
            position = 0 if recorded is None else recorded["position"]
            if position > journal.position:
                # Power loss under a relaxed fsync policy: page-cached
                # appends below the checkpoint's position vanished.  The
                # snapshot still covers them — realign the journal and
                # continue (the loss window is the documented policy
                # trade-off).
                journal.reset_position(position)
            session._replay_journal(position)
        return session

    @classmethod
    def recover(
        cls,
        path: str | Path,
        journal: EventJournal,
        config: FrameworkConfig | None = None,
        catalog: EventCatalog | None = None,
        executor: Executor | None = None,
        origin: float = 0.0,
        own_executor: bool = False,
    ) -> "OnlinePredictionSession":
        """Crash-consistent recovery: checkpoint (if any) + journal replay.

        The one-call recovery entry point behind ``repro recover``.  If
        ``path`` exists it is resumed with the journal replayed past its
        recorded position; if the crash happened before the first
        checkpoint was ever written, a fresh session (``config``,
        ``origin``) replays the whole journal instead.  Either way the
        recovered session has seen exactly the inputs the dead one
        accepted, minus a torn final record — which was never durable
        and will be re-delivered by the source.
        """
        if Path(path).exists():
            return cls.resume(
                path,
                config,
                catalog=catalog,
                executor=executor,
                own_executor=own_executor,
                journal=journal,
            )
        session = cls(
            config,
            catalog=catalog,
            executor=executor,
            origin=origin,
            own_executor=own_executor,
            journal=journal,
        )
        session._replay_journal(0)
        return session
