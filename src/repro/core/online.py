"""Online (streaming) operation of the dynamic meta-learning framework.

:class:`~repro.core.framework.DynamicMetaLearningFramework` replays a
complete log; a deployment instead *streams* events as the CMCS reports
them.  :class:`OnlinePredictionSession` is that mode: feed events one at
a time with :meth:`ingest`, receive warnings back, and retraining fires
automatically whenever the stream crosses a retraining boundary — using
exactly the same training-window policy, meta-learner and reviser as the
batch framework, so a streamed trace produces the same warnings as a
batch run over the same events (covered by the equivalence tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import observe
from repro.alerts import FailureWarning
from repro.core.framework import FrameworkConfig, RetrainEvent
from repro.core.knowledge import KnowledgeRepository
from repro.core.meta import MetaLearner
from repro.core.predictor import Predictor
from repro.core.reviser import Reviser
from repro.core.tracking import ChurnHistory, diff_rule_sets
from repro.evaluation.matching import MatchResult, match_warnings
from repro.parallel.executor import Executor
from repro.raslog.catalog import EventCatalog, default_catalog
from repro.raslog.events import RASEvent
from repro.raslog.store import EventLog
from repro.utils.timeutil import WEEK_SECONDS


@dataclass
class SessionSummary:
    """Accounting of a finished (or in-flight) session.

    ``precision``/``recall`` follow the paper's Section 5.1 formulas
    (true positives are correct *predictions*, false negatives are missed
    *failures*), matching
    :attr:`repro.core.framework.RunResult.overall`; the full
    :class:`MatchResult` is attached for coverage-based analysis.
    """

    n_events: int
    n_fatal: int
    n_warnings: int
    matching: MatchResult
    retrains: list[RetrainEvent] = field(default_factory=list)

    @property
    def precision(self) -> float:
        denom = self.matching.true_positives + self.matching.false_positives
        return self.matching.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.matching.true_positives + self.matching.false_negatives
        return self.matching.true_positives / denom if denom else 0.0


class OnlinePredictionSession:
    """Event-at-a-time interface to the prediction engine.

    ``origin`` anchors week arithmetic (events must not precede it).
    Predictions start once ``config.initial_train_weeks`` of data have
    streamed in; before that, :meth:`ingest` buffers silently.
    """

    def __init__(
        self,
        config: FrameworkConfig | None = None,
        catalog: EventCatalog | None = None,
        executor: Executor | None = None,
        origin: float = 0.0,
        own_executor: bool = False,
    ) -> None:
        self.config = config or FrameworkConfig()
        self.catalog = catalog or default_catalog()
        self.origin = float(origin)
        self._executor = executor
        self._own_executor = own_executor and executor is not None
        self.meta = MetaLearner(
            learners=self.config.learners,
            catalog=self.catalog,
            executor=executor,
            learner_params=self.config.learner_params,
        )
        self.reviser = Reviser(
            min_roc=self.config.min_roc,
            catalog=self.catalog,
            tick=self.config.tick,
            dist_horizon_cap=self.config.dist_horizon_cap,
        )
        self.repository = KnowledgeRepository()
        self.churn = ChurnHistory()
        self.retrains: list[RetrainEvent] = []
        self.warnings: list[FailureWarning] = []

        self._events: list[RASEvent] = []
        self._fatal_times: list[float] = []
        self._fatal_codes: list[str] = []
        self._last_time = self.origin
        self._predictor: Predictor | None = None
        #: week number of the next scheduled retraining
        self._next_retrain_week = self.config.initial_train_weeks

    # -- bookkeeping -------------------------------------------------------

    @property
    def current_week(self) -> int:
        return int((self._last_time - self.origin) // WEEK_SECONDS)

    @property
    def started(self) -> bool:
        """Whether the initial training has happened yet."""
        return self._predictor is not None

    def history(self) -> EventLog:
        """Everything ingested so far, as an EventLog."""
        return EventLog(self._events, origin=self.origin, _presorted=True)

    def close(self) -> None:
        """Release the executor if this session owns it (idempotent)."""
        if self._own_executor:
            self._own_executor = False
            assert self._executor is not None
            self._executor.close()

    def __enter__(self) -> "OnlinePredictionSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _boundary_time(self, week: int) -> float:
        return self.origin + week * WEEK_SECONDS

    # -- retraining ---------------------------------------------------------

    def _retrain(self, week: int) -> None:
        cfg = self.config
        history = self.history()
        w0, w1 = cfg.policy.window(week)
        train_log = history.slice_weeks(w0, w1)

        with observe.span("online.retrain"):
            output = self.meta.train(
                train_log, cfg.prediction_window, week=week
            )
            candidates = output.records()
            candidate_keys = {r.key for r in candidates}

            if cfg.use_reviser:
                revision = self.reviser.revise(
                    candidates, train_log, cfg.prediction_window
                )
                kept, removed_keys = revision.kept, revision.removed_keys
                revise_seconds = revision.seconds
            else:
                kept, removed_keys = candidates, set()
                revise_seconds = 0.0

            churn_record = diff_rule_sets(
                week, self.repository.keys(), candidate_keys, removed_keys
            )
            self.repository.replace_all(kept)
            self.churn.append(churn_record)
            self.retrains.append(
                RetrainEvent(
                    week=week,
                    train_span=(w0, w1),
                    n_candidates=len(candidates),
                    n_kept=len(kept),
                    churn=churn_record,
                    generation_seconds=output.seconds,
                    revise_seconds=revise_seconds,
                    learner_seconds=dict(output.learner_seconds),
                )
            )

            self._predictor = Predictor(
                self.repository.rules(),
                window=cfg.prediction_window,
                catalog=self.catalog,
                ensemble=cfg.ensemble,
                dist_horizon_cap=cfg.dist_horizon_cap,
                rule_weights=self.repository.precision_weights(),
            )
            # Re-prime the fresh predictor with the last Wp seconds of the
            # stream: the rule set changed but the system's recent past did
            # not, so precursors that arrived just before the boundary must
            # still be able to complete a rule (batch/stream equivalence).
            boundary = self._boundary_time(week)
            self._predictor.prime(
                history.between(boundary - cfg.prediction_window, boundary),
                now=boundary,
            )

    def _schedule_after(self, week: int) -> None:
        if self.config.policy.retrains:
            self._next_retrain_week = week + self.config.retrain_weeks
        else:
            self._next_retrain_week = None  # type: ignore[assignment]

    def _cross_boundaries(self, t: float) -> None:
        """Run any retrainings whose boundary the stream has crossed."""
        while (
            self._next_retrain_week is not None
            and t >= self._boundary_time(self._next_retrain_week)
        ):
            week = self._next_retrain_week
            self._retrain(week)
            self._schedule_after(week)

    # -- public API ------------------------------------------------------------

    def ingest(self, event: RASEvent) -> list[FailureWarning]:
        """Feed one event; returns any warnings it (or the timer) raised."""
        if event.timestamp < self.origin:
            raise ValueError(
                f"event at {event.timestamp} precedes the session origin "
                f"{self.origin}"
            )
        if event.timestamp < self._last_time:
            raise ValueError(
                f"events must arrive in time order "
                f"({event.timestamp} < {self._last_time})"
            )

        self._cross_boundaries(event.timestamp)
        self._last_time = event.timestamp
        self._events.append(event)
        observe.counter("online.events").inc()
        code = event.entry_data
        if code in self.catalog and self.catalog.is_fatal_code(code):
            self._fatal_times.append(event.timestamp)
            self._fatal_codes.append(code)

        if self._predictor is None:
            return []
        with observe.timer("online.ingest"):
            new = self._predictor.feed(event, tick=self.config.tick)
        self.warnings.extend(new)
        return new

    def advance(self, now: float) -> list[FailureWarning]:
        """Move the session clock without an event (idle timer service)."""
        if now < self._last_time:
            raise ValueError(f"clock moved backwards: {now} < {self._last_time}")
        self._cross_boundaries(now)
        self._last_time = now
        if self._predictor is None or self.config.tick is None:
            return []
        new = self._predictor.catch_up(now, self.config.tick)
        self.warnings.extend(new)
        return new

    def summary(self) -> SessionSummary:
        """Accuracy accounting over the prediction period.

        Failures that occurred before predictions started (during the
        initial training period) do not count toward recall.
        """
        prediction_start = self._boundary_time(self.config.initial_train_weeks)
        times: list[float] = []
        codes: list[str] = []
        for t, c in zip(self._fatal_times, self._fatal_codes):
            if t >= prediction_start:
                times.append(t)
                codes.append(c)
        matching = match_warnings(
            self.warnings, np.asarray(times, dtype=np.float64), codes
        )
        return SessionSummary(
            n_events=len(self._events),
            n_fatal=len(times),
            n_warnings=len(self.warnings),
            matching=matching,
            retrains=list(self.retrains),
        )
