"""Online (streaming) operation of the dynamic meta-learning framework.

:class:`~repro.core.framework.DynamicMetaLearningFramework` replays a
complete log; a deployment instead *streams* events as the CMCS reports
them.  :class:`OnlinePredictionSession` is that mode: feed events one at
a time with :meth:`ingest`, receive warnings back, and retraining fires
automatically whenever the stream crosses a retraining boundary — using
exactly the same training-window policy, meta-learner and reviser as the
batch framework, so a streamed trace produces the same warnings as a
batch run over the same events (covered by the equivalence tests).

A production session additionally survives the failure modes a
long-lived monitor meets (:mod:`repro.resilience`):

* with ``config.on_retrain_error="degrade"``, a crashing retraining is
  recorded as a :class:`~repro.resilience.RetrainFailure` and retried
  with capped exponential backoff while the previous rule set keeps
  predicting;
* :meth:`checkpoint` / :meth:`resume` round-trip the full session state
  through a versioned JSON file, so a restarted process continues
  byte-identically to one that never stopped;
* with a :class:`~repro.resilience.EventJournal` attached, every
  accepted input is appended to a write-ahead log *before* it is
  processed, and :meth:`recover` (checkpoint + journal replay past the
  checkpoint's recorded position) is crash-consistent — no event
  between the last checkpoint and the crash is lost;
* with ``config.reorder_slack > 0``, out-of-order events within the
  slack are re-sequenced through a bounded buffer and later ones are
  quarantined instead of raising.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import observe
from repro.alerts import FailureWarning
from repro.core.framework import FrameworkConfig, RetrainEvent
from repro.core.knowledge import KnowledgeRepository
from repro.core.meta import MetaLearner
from repro.core.predictor import Predictor
from repro.core.reviser import Reviser
from repro.core.tracking import ChurnHistory, diff_rule_sets
from repro.evaluation.matching import MatchResult, match_warnings
from repro.parallel.executor import Executor
from repro.raslog.catalog import EventCatalog, default_catalog
from repro.raslog.events import RASEvent
from repro.raslog.store import EventLog
from repro.resilience import checkpoint as ckpt
from repro.resilience.degrade import RetrainFailure, backoff_delay
from repro.resilience.journal import EventJournal, JournalCorruption
from repro.resilience.reorder import ReorderBuffer
from repro.utils.timeutil import WEEK_SECONDS

#: How many quarantined (too-late) events are kept for inspection.
QUARANTINE_KEEP = 100


@dataclass
class SessionSummary:
    """Accounting of a finished (or in-flight) session.

    ``precision``/``recall`` follow the paper's Section 5.1 formulas
    (true positives are correct *predictions*, false negatives are missed
    *failures*), matching
    :attr:`repro.core.framework.RunResult.overall`; the full
    :class:`MatchResult` is attached for coverage-based analysis.
    """

    n_events: int
    n_fatal: int
    n_warnings: int
    matching: MatchResult
    retrains: list[RetrainEvent] = field(default_factory=list)
    retrain_failures: list[RetrainFailure] = field(default_factory=list)
    n_quarantined: int = 0

    @property
    def precision(self) -> float:
        denom = self.matching.true_positives + self.matching.false_positives
        return self.matching.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.matching.true_positives + self.matching.false_negatives
        return self.matching.true_positives / denom if denom else 0.0


class OnlinePredictionSession:
    """Event-at-a-time interface to the prediction engine.

    ``origin`` anchors week arithmetic (events must not precede it).
    Predictions start once ``config.initial_train_weeks`` of data have
    streamed in; before that, :meth:`ingest` buffers silently.
    """

    def __init__(
        self,
        config: FrameworkConfig | None = None,
        catalog: EventCatalog | None = None,
        executor: Executor | None = None,
        origin: float = 0.0,
        own_executor: bool = False,
        journal: EventJournal | None = None,
    ) -> None:
        self.config = config or FrameworkConfig()
        self.catalog = catalog or default_catalog()
        self.origin = float(origin)
        self._executor = executor
        self._own_executor = own_executor and executor is not None
        self.meta = MetaLearner(
            learners=self.config.learners,
            catalog=self.catalog,
            executor=executor,
            learner_params=self.config.learner_params,
        )
        self.reviser = Reviser(
            min_roc=self.config.min_roc,
            catalog=self.catalog,
            tick=self.config.tick,
            dist_horizon_cap=self.config.dist_horizon_cap,
        )
        self.repository = KnowledgeRepository()
        self.churn = ChurnHistory()
        self.retrains: list[RetrainEvent] = []
        self.warnings: list[FailureWarning] = []
        #: failed retraining attempts (degraded mode only)
        self.retrain_failures: list[RetrainFailure] = []
        #: most recent events dropped as later than ``reorder_slack``
        self.quarantined: deque[RASEvent] = deque(maxlen=QUARANTINE_KEEP)
        self.n_quarantined = 0
        #: total events offered to :meth:`ingest` (incl. buffered/dropped)
        self.n_ingested = 0

        self._events: list[RASEvent] = []
        self._fatal_times: list[float] = []
        self._fatal_codes: list[str] = []
        self._last_time = self.origin
        self._predictor: Predictor | None = None
        #: week number of the next scheduled retraining
        self._next_retrain_week = self.config.initial_train_weeks
        #: week still owed a successful retraining (degraded mode)
        self._pending_retrain_week: int | None = None
        #: consecutive retrain failures since the last success
        self._retrain_attempts = 0
        #: stream time before which no retry may run
        self._retry_at = float("-inf")
        #: stream time at which the current degraded stretch began
        self._degraded_since: float | None = None
        #: events dropped from the head of ``_events`` by a tail resume
        self._history_dropped = 0
        #: write-ahead log of accepted inputs (None: checkpoint-only
        #: durability); appends happen *before* processing, replay is
        #: suppressed while :attr:`_replaying` re-feeds journal records.
        self._journal = journal
        self._replaying = False
        self._reorder = (
            ReorderBuffer(self.config.reorder_slack)
            if self.config.reorder_slack > 0
            else None
        )

    # -- bookkeeping -------------------------------------------------------

    @property
    def current_week(self) -> int:
        return int((self._last_time - self.origin) // WEEK_SECONDS)

    @property
    def started(self) -> bool:
        """Whether the initial training has happened yet."""
        return self._predictor is not None

    @property
    def degraded(self) -> bool:
        """Whether a retraining is currently owed after failures."""
        return self._pending_retrain_week is not None

    def history(self) -> EventLog:
        """Everything ingested so far, as an EventLog.

        A session resumed from a tail checkpoint only retains the tail
        its future retrainings can reach; earlier events are summarized
        by counters (``summary().n_events`` stays exact).
        """
        return EventLog(self._events, origin=self.origin, _presorted=True)

    def close(self) -> None:
        """Release the executor if this session owns it (idempotent)."""
        if self._own_executor:
            self._own_executor = False
            assert self._executor is not None
            self._executor.close()

    def __enter__(self) -> "OnlinePredictionSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _boundary_time(self, week: int) -> float:
        return self.origin + week * WEEK_SECONDS

    # -- retraining ---------------------------------------------------------

    def _retrain(self, week: int) -> None:
        cfg = self.config
        history = self.history()
        w0, w1 = cfg.policy.window(week)
        train_log = history.slice_weeks(w0, w1)

        with observe.span("online.retrain"):
            output = self.meta.train(
                train_log, cfg.prediction_window, week=week
            )
            candidates = output.records()
            candidate_keys = {r.key for r in candidates}

            if cfg.use_reviser:
                revision = self.reviser.revise(
                    candidates, train_log, cfg.prediction_window
                )
                kept, removed_keys = revision.kept, revision.removed_keys
                revise_seconds = revision.seconds
            else:
                kept, removed_keys = candidates, set()
                revise_seconds = 0.0

            churn_record = diff_rule_sets(
                week, self.repository.keys(), candidate_keys, removed_keys
            )
            self.repository.replace_all(kept)
            self.churn.append(churn_record)
            self.retrains.append(
                RetrainEvent(
                    week=week,
                    train_span=(w0, w1),
                    n_candidates=len(candidates),
                    n_kept=len(kept),
                    churn=churn_record,
                    generation_seconds=output.seconds,
                    revise_seconds=revise_seconds,
                    learner_seconds=dict(output.learner_seconds),
                )
            )

            self._predictor = self._make_predictor()
            # Re-prime the fresh predictor with the last Wp seconds of the
            # stream: the rule set changed but the system's recent past did
            # not, so precursors that arrived just before the boundary must
            # still be able to complete a rule (batch/stream equivalence).
            boundary = self._boundary_time(week)
            self._predictor.prime(
                history.between(boundary - cfg.prediction_window, boundary),
                now=boundary,
            )

    def _make_predictor(self) -> Predictor:
        cfg = self.config
        return Predictor(
            self.repository.rules(),
            window=cfg.prediction_window,
            catalog=self.catalog,
            ensemble=cfg.ensemble,
            dist_horizon_cap=cfg.dist_horizon_cap,
            rule_weights=self.repository.precision_weights(),
        )

    def _schedule_after(self, week: int) -> None:
        if self.config.policy.retrains:
            self._next_retrain_week = week + self.config.retrain_weeks
        else:
            self._next_retrain_week = None  # type: ignore[assignment]

    def _attempt_retrain(self, week: int, now: float) -> None:
        """One retraining try; in degraded mode a failure is absorbed."""
        try:
            self._retrain(week)
        except Exception as exc:
            if self.config.on_retrain_error == "raise":
                raise
            self._retrain_attempts += 1
            self.retrain_failures.append(
                RetrainFailure(
                    week=week,
                    error=repr(exc),
                    error_type=type(exc).__name__,
                    attempt=self._retrain_attempts,
                    time=now,
                )
            )
            observe.counter("online.retrain_failures").inc()
            if self._degraded_since is None:
                self._degraded_since = now
            self._retry_at = now + backoff_delay(
                self._retrain_attempts,
                self.config.retrain_backoff_base,
                self.config.retrain_backoff_cap,
            )
        else:
            self._pending_retrain_week = None
            self._retrain_attempts = 0
            self._retry_at = float("-inf")
            if self._degraded_since is not None:
                observe.counter("online.degraded_seconds").inc(
                    max(0.0, now - self._degraded_since)
                )
                self._degraded_since = None

    def _cross_boundaries(self, t: float) -> None:
        """Run any retrainings whose boundary the stream has crossed, and
        any backoff-elapsed retry owed from earlier failures."""
        while (
            self._next_retrain_week is not None
            and t >= self._boundary_time(self._next_retrain_week)
        ):
            week = self._next_retrain_week
            self._schedule_after(week)
            # The newest crossed boundary supersedes an older owed week:
            # its training window is the current one.
            self._pending_retrain_week = week
            if t >= self._retry_at:
                self._attempt_retrain(week, t)
        if self._pending_retrain_week is not None and t >= self._retry_at:
            self._attempt_retrain(self._pending_retrain_week, t)

    # -- public API ------------------------------------------------------------

    def ingest(self, event: RASEvent) -> list[FailureWarning]:
        """Feed one event; returns any warnings it (or the timer) raised.

        With ``config.reorder_slack == 0`` (the default) events must
        arrive in time order and a regression raises ``ValueError``.
        With a positive slack, out-of-order events within the slack are
        buffered and re-sequenced — the returned warnings then belong to
        whichever earlier events cleared the buffer — and events later
        than the slack are quarantined (counted, kept in
        :attr:`quarantined`, never raised).  Call :meth:`flush` at end of
        stream to drain the buffer.
        """
        if event.timestamp < self.origin:
            raise ValueError(
                f"event at {event.timestamp} precedes the session origin "
                f"{self.origin}"
            )
        if self._reorder is None and event.timestamp < self._last_time:
            raise ValueError(
                f"events must arrive in time order "
                f"({event.timestamp} < {self._last_time})"
            )
        # Write-ahead: the accepted event becomes durable before any
        # state changes, so a crash between here and the end of this
        # call is recovered by replaying the journal record.  Rejected
        # events (the raises above) are deliberately never journaled —
        # replaying them would abort recovery with the same error.
        self._journal_append({"kind": "ingest", "event": event.as_dict()})
        self.n_ingested += 1
        if self._reorder is None:
            return self._ingest_ordered(event)

        ready, dropped = self._reorder.push(event)
        if dropped:
            self.n_quarantined += len(dropped)
            self.quarantined.extend(dropped)
            observe.counter("online.quarantined").inc(len(dropped))
        new: list[FailureWarning] = []
        for e in ready:
            new.extend(self._ingest_ordered(e))
        return new

    def _ingest_ordered(self, event: RASEvent) -> list[FailureWarning]:
        """Process one event known to respect stream order."""
        self._cross_boundaries(event.timestamp)
        self._last_time = event.timestamp
        self._events.append(event)
        observe.counter("online.events").inc()
        code = event.entry_data
        if code in self.catalog and self.catalog.is_fatal_code(code):
            self._fatal_times.append(event.timestamp)
            self._fatal_codes.append(code)

        if self._predictor is None:
            return []
        with observe.timer("online.ingest"):
            new = self._predictor.feed(event, tick=self.config.tick)
        self.warnings.extend(new)
        return new

    def flush(self) -> list[FailureWarning]:
        """Drain the reorder buffer (end of stream); returns new warnings."""
        if self._reorder is None:
            return []
        self._journal_append({"kind": "flush"})
        new: list[FailureWarning] = []
        for e in self._reorder.drain():
            new.extend(self._ingest_ordered(e))
        return new

    def advance(self, now: float) -> list[FailureWarning]:
        """Move the session clock without an event (idle timer service)."""
        if now < self._last_time:
            raise ValueError(f"clock moved backwards: {now} < {self._last_time}")
        self._journal_append({"kind": "advance", "now": now})
        new: list[FailureWarning] = []
        if self._reorder is not None:
            # The clock overtaking a buffered event forces it out: the
            # deployment timer observed "now", so nothing before it may
            # still be pending.
            for e in self._reorder.release_until(now):
                new.extend(self._ingest_ordered(e))
        self._cross_boundaries(now)
        self._last_time = now
        if self._predictor is None or self.config.tick is None:
            return new
        caught = self._predictor.catch_up(now, self.config.tick)
        self.warnings.extend(caught)
        new.extend(caught)
        return new

    def summary(self) -> SessionSummary:
        """Accuracy accounting over the prediction period.

        Failures that occurred before predictions started (during the
        initial training period) do not count toward recall.
        """
        prediction_start = self._boundary_time(self.config.initial_train_weeks)
        times: list[float] = []
        codes: list[str] = []
        for t, c in zip(self._fatal_times, self._fatal_codes):
            if t >= prediction_start:
                times.append(t)
                codes.append(c)
        matching = match_warnings(
            self.warnings, np.asarray(times, dtype=np.float64), codes
        )
        return SessionSummary(
            n_events=self._history_dropped + len(self._events),
            n_fatal=len(times),
            n_warnings=len(self.warnings),
            matching=matching,
            retrains=list(self.retrains),
            retrain_failures=list(self.retrain_failures),
            n_quarantined=self.n_quarantined,
        )

    # -- write-ahead journal ---------------------------------------------------

    @property
    def journal(self) -> EventJournal | None:
        """The attached write-ahead journal, if any."""
        return self._journal

    def _journal_append(self, record: dict) -> None:
        """Append one input record write-ahead (no-op while replaying)."""
        if self._journal is not None and not self._replaying:
            self._journal.append(record)

    def _replay_journal(self, from_position: int) -> int:
        """Re-feed journal records past ``from_position``; returns count.

        Replay drives the *public* API (``ingest``/``advance``/``flush``)
        with journaling suppressed, so the recovered session walks
        exactly the state transitions of the pre-crash one — reorder
        buffering, retraining, degraded-mode bookkeeping and all.
        """
        assert self._journal is not None
        self._replaying = True
        replayed = 0
        try:
            for _index, record in self._journal.replay(from_position):
                kind = record.get("kind")
                if kind == "ingest":
                    self.ingest(RASEvent.from_dict(record["event"]))
                elif kind == "advance":
                    self.advance(record["now"])
                elif kind == "flush":
                    self.flush()
                else:
                    raise JournalCorruption(
                        f"unknown journal record kind {kind!r}"
                    )
                replayed += 1
        finally:
            self._replaying = False
        if replayed:
            observe.counter("journal.replayed_events").inc(replayed)
        return replayed

    # -- checkpoint / resume ---------------------------------------------------

    def _history_tail_start(self) -> float:
        """Earliest event time any future retraining can reach.

        Sliding policies only look back ``length_weeks`` from the next
        owed retraining (minus one prediction window for predictor
        priming); growing and static policies need the full history.
        """
        wp = self.config.prediction_window
        owed = [
            w
            for w in (self._pending_retrain_week, self._next_retrain_week)
            if w is not None
        ]
        if not owed:
            return self._last_time - wp
        policy = self.config.policy
        if policy.kind != "sliding":
            return self.origin
        first = min(owed)
        w0 = max(0, first - policy.length_weeks)
        return min(self._boundary_time(w0), self._boundary_time(first) - wp)

    def checkpoint(self, path: str | Path) -> dict:
        """Serialize the session to ``path`` atomically; returns the payload.

        The file is versioned JSON (schema
        :data:`repro.resilience.CHECKPOINT_VERSION`) carrying the config
        digest, clock and origin, the event-history tail future
        retrainings need, fatal bookkeeping, the rule repository with
        provenance, predictor monitoring state, retrain schedule and
        degraded-mode bookkeeping, churn, accumulated warnings, and any
        reorder-buffer residue.  Written with temp-file + ``os.replace``
        so a crash mid-write never leaves a torn file.
        """
        tail_start = self._history_tail_start()
        times = np.fromiter(
            (e.timestamp for e in self._events),
            dtype=np.float64,
            count=len(self._events),
        )
        lo = int(np.searchsorted(times, tail_start, side="left"))
        payload = {
            "format": ckpt.CHECKPOINT_FORMAT,
            "version": ckpt.CHECKPOINT_VERSION,
            "config_digest": ckpt.config_digest(self.config),
            "config": ckpt.config_to_dict(self.config),
            "origin": self.origin,
            "last_time": self._last_time,
            "n_ingested": self.n_ingested,
            "history": {
                "dropped": self._history_dropped + lo,
                "events": [e.as_dict() for e in self._events[lo:]],
            },
            "fatal": {
                "times": list(self._fatal_times),
                "codes": list(self._fatal_codes),
            },
            "schedule": {
                "next_retrain_week": self._next_retrain_week,
                "pending_retrain_week": self._pending_retrain_week,
                "retrain_attempts": self._retrain_attempts,
                "retry_at": (
                    None if self._retrain_attempts == 0 else self._retry_at
                ),
                "degraded_since": self._degraded_since,
            },
            "repository": [
                ckpt.record_to_dict(r) for r in self.repository.records()
            ],
            "predictor": (
                None
                if self._predictor is None
                else self._predictor.state_snapshot()
            ),
            "retrains": [
                ckpt.retrain_event_to_dict(r) for r in self.retrains
            ],
            "retrain_failures": [
                ckpt.failure_to_dict(f) for f in self.retrain_failures
            ],
            "warnings": [ckpt.warning_to_dict(w) for w in self.warnings],
            # Write-ahead-log position this snapshot covers: recovery
            # replays journal records from here on.  None: the session
            # ran without a journal (checkpoint-only durability).
            "journal": (
                None
                if self._journal is None
                else {"position": self._journal.position}
            ),
            "reorder": (
                None
                if self._reorder is None
                else {
                    # -inf (no event seen yet) is not valid JSON; encode
                    # the sentinel as null, mirroring retry_at above.
                    "max_seen": (
                        None
                        if self._reorder.max_seen == float("-inf")
                        else self._reorder.max_seen
                    ),
                    "n_reordered": self._reorder.n_reordered,
                    "buffered": [
                        e.as_dict() for e in self._reorder.pending()
                    ],
                    "n_quarantined": self.n_quarantined,
                    "quarantined_tail": [
                        e.as_dict() for e in self.quarantined
                    ],
                }
            ),
        }
        ckpt.atomic_write_json(path, payload)
        observe.counter("online.checkpoints").inc()
        if self._journal is not None:
            # Everything below the recorded position is now covered by
            # this checkpoint; whole segments beneath it can go.
            self._journal.compact(self._journal.position)
        return payload

    @classmethod
    def resume(
        cls,
        path: str | Path,
        config: FrameworkConfig | None = None,
        catalog: EventCatalog | None = None,
        executor: Executor | None = None,
        own_executor: bool = False,
        journal: EventJournal | None = None,
    ) -> "OnlinePredictionSession":
        """Rebuild a session from a :meth:`checkpoint` file.

        ``config`` defaults to the one stored in the checkpoint; passing
        one explicitly asserts compatibility — a digest mismatch raises
        :class:`~repro.resilience.CheckpointError` rather than silently
        resuming under different semantics.  The resumed session
        continues byte-identically to one that never stopped (pinned by
        the crash-recovery equivalence tests).

        Passing ``journal`` makes the resume *crash-consistent*: after
        the snapshot is restored, journal records past the checkpoint's
        recorded position are replayed, reconstructing every input the
        crash would otherwise have lost (any torn final record was
        already truncated when the journal was opened).
        """
        payload = ckpt.read_checkpoint(path)
        if config is None:
            config = ckpt.config_from_dict(payload["config"])
        if ckpt.config_digest(config) != payload["config_digest"]:
            raise ckpt.CheckpointError(
                f"{path}: checkpoint was written under a different "
                f"configuration (digest mismatch)"
            )
        session = cls(
            config,
            catalog=catalog,
            executor=executor,
            origin=payload["origin"],
            own_executor=own_executor,
        )
        session._last_time = payload["last_time"]
        session.n_ingested = payload["n_ingested"]
        session._history_dropped = payload["history"]["dropped"]
        session._events = [
            RASEvent.from_dict(d) for d in payload["history"]["events"]
        ]
        session._fatal_times = list(payload["fatal"]["times"])
        session._fatal_codes = list(payload["fatal"]["codes"])

        schedule = payload["schedule"]
        session._next_retrain_week = schedule["next_retrain_week"]
        session._pending_retrain_week = schedule["pending_retrain_week"]
        session._retrain_attempts = schedule["retrain_attempts"]
        session._retry_at = (
            float("-inf")
            if schedule["retry_at"] is None
            else schedule["retry_at"]
        )
        session._degraded_since = schedule["degraded_since"]

        session.repository = KnowledgeRepository(
            ckpt.record_from_dict(d) for d in payload["repository"]
        )
        if payload["predictor"] is not None:
            predictor = session._make_predictor()
            predictor.restore_state(payload["predictor"])
            session._predictor = predictor
        session.retrains = [
            ckpt.retrain_event_from_dict(d) for d in payload["retrains"]
        ]
        session.churn = ChurnHistory()
        for event in session.retrains:
            session.churn.append(event.churn)
        session.retrain_failures = [
            ckpt.failure_from_dict(d) for d in payload["retrain_failures"]
        ]
        session.warnings = [
            ckpt.warning_from_dict(d) for d in payload["warnings"]
        ]

        reorder = payload["reorder"]
        if reorder is not None and session._reorder is not None:
            session._reorder.max_seen = (
                float("-inf")
                if reorder["max_seen"] is None
                else reorder["max_seen"]
            )
            for d in reorder["buffered"]:
                # Re-pushing in release order preserves tie-breaking; all
                # were inside the slack window, so none release or drop.
                session._reorder.push(RASEvent.from_dict(d))
            session._reorder.n_reordered = reorder["n_reordered"]
            session.n_quarantined = reorder["n_quarantined"]
            session._reorder.n_quarantined = reorder["n_quarantined"]
            session.quarantined.extend(
                RASEvent.from_dict(d) for d in reorder["quarantined_tail"]
            )
        observe.counter("online.resumes").inc()
        if journal is not None:
            session._journal = journal
            recorded = payload.get("journal")
            # A v1 checkpoint (or one written journal-less) recorded no
            # position; replaying from 0 is only sound if the journal
            # really does start at this checkpoint's state, so demand an
            # explicit record when any journal records exist.
            if recorded is None and journal.position > 0:
                raise ckpt.CheckpointError(
                    f"{path}: checkpoint carries no journal position but "
                    f"the journal holds {journal.position} record(s); "
                    f"cannot align replay"
                )
            position = 0 if recorded is None else recorded["position"]
            if position > journal.position:
                # Power loss under a relaxed fsync policy: page-cached
                # appends below the checkpoint's position vanished.  The
                # snapshot still covers them — realign the journal and
                # continue (the loss window is the documented policy
                # trade-off).
                journal.reset_position(position)
            session._replay_journal(position)
        return session

    @classmethod
    def recover(
        cls,
        path: str | Path,
        journal: EventJournal,
        config: FrameworkConfig | None = None,
        catalog: EventCatalog | None = None,
        executor: Executor | None = None,
        origin: float = 0.0,
        own_executor: bool = False,
    ) -> "OnlinePredictionSession":
        """Crash-consistent recovery: checkpoint (if any) + journal replay.

        The one-call recovery entry point behind ``repro recover``.  If
        ``path`` exists it is resumed with the journal replayed past its
        recorded position; if the crash happened before the first
        checkpoint was ever written, a fresh session (``config``,
        ``origin``) replays the whole journal instead.  Either way the
        recovered session has seen exactly the inputs the dead one
        accepted, minus a torn final record — which was never durable
        and will be re-delivered by the source.
        """
        if Path(path).exists():
            return cls.resume(
                path,
                config,
                catalog=catalog,
                executor=executor,
                own_executor=own_executor,
                journal=journal,
            )
        session = cls(
            config,
            catalog=catalog,
            executor=executor,
            origin=origin,
            own_executor=own_executor,
            journal=journal,
        )
        session._replay_journal(0)
        return session
