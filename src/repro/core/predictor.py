"""Event-driven online predictor (Algorithm 2).

The predictor maintains three structures from the learned rules:

* ``F-List`` — for each fatal event type, the trigger sets that forecast it
  (one entry per association rule);
* ``E-List`` — for each event type, the fatal types it may participate in
  triggering (the inverted index of the F-List);
* the monitoring set ``E`` of events observed within the last prediction
  window ``Wp``.

On each event occurrence the predictor prunes the monitoring set, consults
the rule kinds in the mixture-of-experts order (association rules for
non-fatal events, statistical rules for fatal events, and the fitted
inter-arrival distribution as the fallback expert), and emits
:class:`FailureWarning` objects.

Because the distribution expert is *time*-triggered ("elapsed time since
the last failure exceeds the threshold") while the design is event-driven,
the predictor also accepts clock ticks (:meth:`Predictor.advance`): an
online deployment checks the clock periodically; replaying a log calls
``advance`` between events.  After firing, the distribution expert
re-arms every ``Wp`` seconds while no failure arrives — this reproduces
the paper's observation that the method "cannot pinpoint the occurrence
times of the failures, thereby giving many false alarms once the elapsed
time since the last failure is large enough".

**Per-rule window semantics.**  Count and statistical rules carry their
own mined ``window``; matching thresholds them over occurrences with
``now - t <= rule.window``, *not* over everything in the predictor-wide
``Wp`` monitoring set.  (Earlier versions counted the whole ``Wp`` deque,
so a rule with ``window < Wp`` over-counted and fired false warnings.)
Since the monitoring set only retains ``Wp`` seconds of history, the
effective counting window is ``min(rule.window, Wp)``.

**Matching indices.**  With the default ``indexing="compiled"`` the
F-List/E-List are precompiled into flat hash-joined per-code candidate
lists: each event code maps directly to the association rules it can
complete (with the *residual* antecedent precomputed) and matching
checks an incrementally maintained occurrence count per code instead of
rebuilding a set from the whole monitoring deque; count rules consult a
per-code timestamp deque instead of scanning the full window.
``indexing="scan"`` keeps the original per-event scans (same warnings,
slower) so the speedup stays measurable on one harness
(``repro bench --topic predictor_feed``).
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro import observe
from repro.alerts import FailureWarning
from repro.learners.rules import (
    ANY_FAILURE,
    AssociationRule,
    CountRule,
    DistributionRule,
    Rule,
    RuleKey,
    StatisticalRule,
)
from repro.raslog.catalog import EventCatalog, default_catalog
from repro.raslog.events import RASEvent
from repro.raslog.store import EventLog

#: Ensemble policies: ``experts`` is the paper's mixture-of-experts order
#: (later experts consulted only when earlier ones stay silent);
#: ``union`` fires every matching rule (used for ablation and by the
#: reviser to score rules individually in one pass); ``weighted`` fires
#: every matching rule whose training-set precision weight clears
#: ``weight_threshold`` — an alternative combination scheme from the
#: paper's future-work list.
ENSEMBLE_POLICIES = ("experts", "union", "weighted")

#: Matching-index implementations: ``compiled`` (precompiled per-code
#: candidate lists + incremental occurrence tracking, the default) and
#: ``scan`` (the original per-event deque scans, kept so the benchmark
#: harness can measure the index speedup on identical output).
INDEXING_MODES = ("compiled", "scan")


@dataclass
class PredictorState:
    """Mutable runtime state, exposed for inspection and tests."""

    clock: float = 0.0
    last_fatal_time: float | None = None
    #: recent events (time, code) within the prediction window
    monitoring: deque = field(default_factory=deque)
    #: recent fatal times within the prediction window
    recent_fatals: deque = field(default_factory=deque)
    #: per-rule refractory bookkeeping: rule key -> last firing time
    last_fired: dict = field(default_factory=dict)
    #: next time the distribution expert may fire (None = armed on cross)
    dist_next_allowed: float = 0.0


class Predictor:
    """Online matcher of learned rules against an event stream."""

    def __init__(
        self,
        rules: Iterable[Rule],
        window: float,
        catalog: EventCatalog | None = None,
        ensemble: str = "experts",
        refractory: float | None = None,
        dist_horizon_cap: float = 43200.0,
        rule_weights: "dict[RuleKey, float] | None" = None,
        weight_threshold: float = 0.5,
        indexing: str = "compiled",
    ) -> None:
        if window <= 0:
            raise ValueError(f"prediction window must be positive, got {window}")
        if ensemble not in ENSEMBLE_POLICIES:
            raise ValueError(
                f"ensemble must be one of {ENSEMBLE_POLICIES}, got {ensemble!r}"
            )
        if indexing not in INDEXING_MODES:
            raise ValueError(
                f"indexing must be one of {INDEXING_MODES}, got {indexing!r}"
            )
        if dist_horizon_cap <= 0:
            raise ValueError(
                f"dist_horizon_cap must be positive, got {dist_horizon_cap}"
            )
        self.window = float(window)
        #: Upper bound on the distribution expert's warning horizon — the
        #: fitted quantile can reach many hours, beyond which a warning is
        #: not actionable for proactive fault tolerance.
        self.dist_horizon_cap = float(dist_horizon_cap)
        if not 0.0 <= weight_threshold <= 1.0:
            raise ValueError(
                f"weight_threshold must lie in [0, 1], got {weight_threshold}"
            )
        self.catalog = catalog or default_catalog()
        self.ensemble = ensemble
        #: per-rule confidence weights for the ``weighted`` policy (e.g.
        #: training-set precision from the reviser); unknown rules weigh 0.5
        self.rule_weights = dict(rule_weights or {})
        self.weight_threshold = float(weight_threshold)
        #: suppress re-firing of one rule within this many seconds; default
        #: is the prediction window (one warning per rule per window).
        self.refractory = float(window if refractory is None else refractory)

        self.association_rules: list[AssociationRule] = []
        self.statistical_rules: list[StatisticalRule] = []
        self.distribution_rules: list[DistributionRule] = []
        self.count_rules: dict[str, list[CountRule]] = {}
        for rule in rules:
            if isinstance(rule, AssociationRule):
                self.association_rules.append(rule)
            elif isinstance(rule, StatisticalRule):
                self.statistical_rules.append(rule)
            elif isinstance(rule, DistributionRule):
                self.distribution_rules.append(rule)
            elif isinstance(rule, CountRule):
                self.count_rules.setdefault(rule.code, []).append(rule)
            else:
                raise TypeError(f"unsupported rule type {type(rule).__name__}")
        self.statistical_rules.sort(key=lambda r: r.k)

        # F-List / E-List of Algorithm 2.
        self.f_list: dict[str, list[AssociationRule]] = {}
        self.e_list: dict[str, set[str]] = {}
        for rule in self.association_rules:
            self.f_list.setdefault(rule.consequent, []).append(rule)
            for item in rule.antecedent:
                self.e_list.setdefault(item, set()).add(rule.consequent)

        self.indexing = indexing
        self._compiled = indexing == "compiled"
        if self._compiled:
            self._compile_indices()

        self.state = PredictorState()
        self._rebuild_tracking()

        # Instrument handles are cached per registry so the per-event
        # hot path pays one identity check, not a registry lookup.
        self._obs_registry = None
        self._feed_histogram = None
        self._warning_counter = None

    # -- compiled matching indices -------------------------------------------

    def _compile_indices(self) -> None:
        """Flatten the F-List/E-List into per-code hash-join candidates.

        For every event code that can participate in an association rule,
        precompute the rules it may complete — in exactly the order the
        scan path visits them (consequents sorted, then F-List insertion
        order) so both index modes emit identical warning sequences — and
        pair each with its *residual* antecedent (the other items whose
        presence in the monitoring window must be checked).
        """
        self._assoc_candidates: dict[
            str, tuple[tuple[AssociationRule, tuple[str, ...]], ...]
        ] = {}
        for code, consequents in self.e_list.items():
            candidates = []
            for fatal_code in sorted(consequents):
                for rule in self.f_list[fatal_code]:
                    if code in rule.antecedent:
                        others = tuple(
                            item for item in sorted(rule.antecedent)
                            if item != code
                        )
                        candidates.append((rule, others))
            self._assoc_candidates[code] = tuple(candidates)
        #: codes whose in-window occurrence count matters for hash joins
        self._acount_codes = frozenset(self.e_list)

    def _rebuild_tracking(self) -> None:
        """(Re)derive incremental occurrence tracking from ``state``.

        Called on construction and after :meth:`restore_state`; the
        tracked structures are pure functions of the monitoring deque, so
        they are never checkpointed.
        """
        self._refractory_sweep_at = float("-inf")
        if not self._compiled:
            return
        #: per-code occurrence count inside the monitoring window
        self._acounts: dict[str, int] = {}
        #: per-count-rule-code timestamps inside the monitoring window
        self._ctimes: dict[str, deque] = {c: deque() for c in self.count_rules}
        for t, code in self.state.monitoring:
            self._track_append(t, code)

    def _track_append(self, t: float, code: str) -> None:
        """Maintain the compiled-index tracking for one appended event."""
        if code in self._acount_codes:
            self._acounts[code] = self._acounts.get(code, 0) + 1
        times = self._ctimes.get(code)
        if times is not None:
            times.append(t)

    def _track_popleft(self, code: str) -> None:
        """Undo :meth:`_track_append` for the oldest event of ``code``."""
        if code in self._acount_codes:
            remaining = self._acounts[code] - 1
            if remaining:
                self._acounts[code] = remaining
            else:
                del self._acounts[code]
        times = self._ctimes.get(code)
        if times is not None:
            times.popleft()

    # -- internals ----------------------------------------------------------

    def _instruments(self):
        registry = observe.get_registry()
        if self._obs_registry is not registry:
            self._obs_registry = registry
            self._feed_histogram = registry.histogram("predictor.feed")
            self._warning_counter = registry.counter("predictor.warnings")
        return self._feed_histogram, self._warning_counter

    def _prune(self, now: float) -> None:
        horizon = now - self.window
        monitoring = self.state.monitoring
        if self._compiled:
            while monitoring and monitoring[0][0] < horizon:
                _, code = monitoring.popleft()
                self._track_popleft(code)
        else:
            while monitoring and monitoring[0][0] < horizon:
                monitoring.popleft()
        fatals = self.state.recent_fatals
        while fatals and fatals[0] < horizon:
            fatals.popleft()
        # Amortized sweep of per-rule refractory stamps: an entry older
        # than the refractory can never suppress again, so dropping it is
        # invisible to matching — but without the sweep ``last_fired``
        # grows one entry per retired rule key over week-scale streams.
        last_fired = self.state.last_fired
        if last_fired and now >= self._refractory_sweep_at:
            cutoff = now - self.refractory
            stale = [key for key, t in last_fired.items() if t <= cutoff]
            for key in stale:
                del last_fired[key]
            self._refractory_sweep_at = now + self.refractory

    def _fire(
        self, now: float, predicted: str, rule_key: RuleKey, learner: str
    ) -> FailureWarning | None:
        last = self.state.last_fired.get(rule_key)
        if last is not None and now - last < self.refractory:
            return None
        self.state.last_fired[rule_key] = now
        return FailureWarning(
            time=now,
            predicted=predicted,
            window=self.window,
            rule_key=rule_key,
            learner=learner,
        )

    def _match_association(self, event: RASEvent) -> list[FailureWarning]:
        if not self._compiled:
            return self._match_association_scan(event)
        candidates = self._assoc_candidates.get(event.entry_data)
        if not candidates:
            return []
        # Hash join: the triggering code keys straight into the rules it
        # can complete; the residual antecedent is checked against the
        # incrementally maintained per-code occurrence counts.  (The
        # triggering event itself belongs to the monitoring set E —
        # Algorithm 2 appends before matching — which the residual
        # encodes by construction.)
        counts = self._acounts
        warnings: list[FailureWarning] = []
        for rule, others in candidates:
            for item in others:
                if not counts.get(item):
                    break
            else:
                w = self._fire(
                    event.timestamp, rule.consequent, rule.key, "association"
                )
                if w is not None:
                    warnings.append(w)
        return warnings

    def _match_association_scan(self, event: RASEvent) -> list[FailureWarning]:
        code = event.entry_data
        possible = self.e_list.get(code)
        if not possible:
            return []
        recent_codes = {c for _, c in self.state.monitoring}
        recent_codes.add(code)
        warnings: list[FailureWarning] = []
        for fatal_code in sorted(possible):
            for rule in self.f_list[fatal_code]:
                if code in rule.antecedent and rule.antecedent <= recent_codes:
                    w = self._fire(
                        event.timestamp, fatal_code, rule.key, "association"
                    )
                    if w is not None:
                        warnings.append(w)
        return warnings

    def _match_count(self, event: RASEvent) -> list[FailureWarning]:
        code = event.entry_data
        candidates = self.count_rules.get(code)
        if not candidates:
            return []
        now = event.timestamp
        warnings: list[FailureWarning] = []
        if self._compiled:
            times = self._ctimes[code]
            for rule in candidates:
                cutoff = now - rule.window
                occurrences = 1  # the triggering event
                for t in reversed(times):
                    if t < cutoff:
                        break
                    occurrences += 1
                if occurrences >= rule.count:
                    w = self._fire(now, rule.consequent, rule.key, "count")
                    if w is not None:
                        warnings.append(w)
        else:
            for rule in candidates:
                cutoff = now - rule.window
                occurrences = 1 + sum(
                    1
                    for t, c in self.state.monitoring
                    if c == code and t >= cutoff
                )
                if occurrences >= rule.count:
                    w = self._fire(now, rule.consequent, rule.key, "count")
                    if w is not None:
                        warnings.append(w)
        return warnings

    def _match_statistical(self, event: RASEvent) -> list[FailureWarning]:
        fatals = self.state.recent_fatals
        now = event.timestamp
        # Most-specific expert: the largest k whose own window holds a
        # burst of at least k failures (the deque is time-ordered, so
        # counting walks back from the newest and stops early).
        best: StatisticalRule | None = None
        for rule in self.statistical_rules:
            if len(fatals) < rule.k:
                continue
            cutoff = now - rule.window
            count = 0
            for t in reversed(fatals):
                if t < cutoff:
                    break
                count += 1
                if count >= rule.k:
                    best = rule
                    break
        if best is None:
            return []
        w = self._fire(now, ANY_FAILURE, best.key, "statistical")
        return [w] if w is not None else []

    def _check_distribution(self, now: float) -> list[FailureWarning]:
        if not self.distribution_rules:
            return []
        last_fatal = self.state.last_fatal_time
        if last_fatal is None:
            return []
        if now < self.state.dist_next_allowed:
            return []
        warnings: list[FailureWarning] = []
        horizon = self.window
        for rule in self.distribution_rules:
            if now - last_fatal >= rule.quantile_time:
                # The distribution expert forecasts at its own, fitted
                # resolution: the paper notes it "cannot pinpoint the
                # occurrence times of the failures", so its warning
                # horizon is the learned quantile (capped to keep the
                # warning actionable) rather than Wp.
                rule_horizon = max(
                    self.window, min(rule.quantile_time, self.dist_horizon_cap)
                )
                horizon = max(horizon, rule_horizon)
                w = FailureWarning(
                    time=now,
                    predicted=ANY_FAILURE,
                    window=rule_horizon,
                    rule_key=rule.key,
                    learner="distribution",
                )
                warnings.append(w)
        if warnings:
            # Re-arm one horizon later so a long failure-free stretch
            # yields a bounded train of warnings rather than one per tick.
            self.state.dist_next_allowed = now + horizon
        return warnings

    # -- public API -------------------------------------------------------------

    def prime(
        self, events: Iterable[RASEvent], now: float | None = None
    ) -> None:
        """Seed the sliding window from history without emitting warnings.

        A freshly constructed predictor that takes over mid-stream (after
        a retraining swaps the rule set) starts with an empty monitoring
        set, so precursors that arrived just before the handover could no
        longer complete a rule.  Priming replays the last ``window``
        seconds of already-observed events into the predictor's state —
        monitoring set, recent-fatal burst window, and the elapsed-time
        expert's anchor — exactly as :meth:`observe` would have built it,
        but silently: those events already had their chance to fire under
        the previous rule set.

        ``now`` optionally advances the clock to the handover instant
        afterwards (events beyond it are rejected, like :meth:`observe`).
        """
        state = self.state
        for event in events:
            t = event.timestamp
            if t < state.clock:
                raise ValueError(
                    f"priming events must arrive in time order: "
                    f"{t} < {state.clock}"
                )
            state.clock = t
            code = event.entry_data
            if code in self.catalog and self.catalog.is_fatal_code(code):
                state.recent_fatals.append(t)
                state.last_fatal_time = t
                state.dist_next_allowed = t
            state.monitoring.append((t, code))
            if self._compiled:
                self._track_append(t, code)
        if now is not None:
            if now < state.clock:
                raise ValueError(
                    f"clock moved backwards: {now} < {state.clock}"
                )
            state.clock = now
        self._prune(state.clock)

    def advance(self, now: float) -> list[FailureWarning]:
        """Move the clock forward without an event (periodic timer check)."""
        if now < self.state.clock:
            raise ValueError(
                f"clock moved backwards: {now} < {self.state.clock}"
            )
        self.state.clock = now
        self._prune(now)
        return self._check_distribution(now)

    def observe(self, event: RASEvent) -> list[FailureWarning]:
        """Feed one event (Algorithm 2's per-occurrence step)."""
        now = event.timestamp
        if now < self.state.clock:
            raise ValueError(
                f"events must arrive in time order: {now} < {self.state.clock}"
            )
        self.state.clock = now
        self._prune(now)

        code = event.entry_data
        is_fatal = code in self.catalog and self.catalog.is_fatal_code(code)
        warnings: list[FailureWarning] = []

        if is_fatal:
            self.state.recent_fatals.append(now)
            warnings.extend(self._match_statistical(event))
            # A failure resets the elapsed-time expert.
            self.state.last_fatal_time = now
            self.state.dist_next_allowed = now
        else:
            warnings.extend(self._match_association(event))
            warnings.extend(self._match_count(event))

        self.state.monitoring.append((now, code))
        if self._compiled:
            self._track_append(now, code)

        if self.ensemble == "experts":
            if not warnings:
                warnings.extend(self._check_distribution(now))
        else:  # union/weighted: every expert gets to speak
            warnings.extend(self._check_distribution(now))
        if self.ensemble == "weighted":
            warnings = [
                w
                for w in warnings
                if self.rule_weights.get(w.rule_key, 0.5) >= self.weight_threshold
            ]
        return warnings

    def _next_timer_fire(self, tick: float) -> float | None:
        """Earliest future time the distribution expert could fire.

        Used by :func:`replay` to simulate a periodic timer without
        stepping through every empty tick: the next interesting instant is
        when the smallest fitted quantile is crossed (or the re-arm delay
        expires), rounded up to the tick grid.
        """
        if not self.distribution_rules or self.state.last_fatal_time is None:
            return None
        earliest_cross = self.state.last_fatal_time + min(
            r.quantile_time for r in self.distribution_rules
        )
        t = max(earliest_cross, self.state.dist_next_allowed, self.state.clock)
        # Align to the timer grid (a live deployment only looks at the
        # clock every ``tick`` seconds).
        grid = -(-t // tick) * tick  # ceil to multiple of tick
        return max(grid, t)

    def feed(
        self, event: RASEvent, tick: float | None = 60.0
    ) -> list[FailureWarning]:
        """Catch the deployment timer up to the event, then observe it.

        This is the unit step of both offline replay and online streaming:
        any timer firings due between the previous clock position and the
        event are emitted first, exactly as a live timer would have done.
        """
        if tick is not None and tick <= 0:
            raise ValueError(f"tick must be positive, got {tick}")
        t0 = time.perf_counter()
        warnings: list[FailureWarning] = []
        if tick is not None:
            warnings.extend(self.catch_up(event.timestamp, tick))
        warnings.extend(self.observe(event))
        feed_histogram, warning_counter = self._instruments()
        feed_histogram.observe(time.perf_counter() - t0)
        if warnings:
            warning_counter.inc(len(warnings))
        return warnings

    def catch_up(self, until: float, tick: float) -> list[FailureWarning]:
        """Emit all timer firings strictly before ``until``."""
        warnings: list[FailureWarning] = []
        checked: float | None = None
        while True:
            t = self._next_timer_fire(tick)
            if t is None:
                break
            # The timer never re-examines an instant: if the previous
            # check fired nothing (e.g. the fitted quantile lost to
            # rounding in ``_next_timer_fire``), the next opportunity is
            # one tick later — otherwise a degenerate fit whose quantile
            # sits within one ulp of the grid can loop forever.
            if checked is not None and t <= checked:
                t = checked + tick
            if t >= until:
                break
            warnings.extend(self.advance(t))
            checked = t
        return warnings

    def replay(
        self, log: EventLog, tick: float | None = 60.0
    ) -> list[FailureWarning]:
        """Run the predictor over a whole log, with simulated clock ticks.

        ``tick`` is the period of the deployment timer that services the
        time-triggered distribution expert between events; ``None``
        disables the timer (purely event-driven replay).
        """
        if tick is not None and tick <= 0:
            raise ValueError(f"tick must be positive, got {tick}")
        warnings: list[FailureWarning] = []
        for event in log:
            warnings.extend(self.feed(event, tick))
        return warnings

    @property
    def n_rules(self) -> int:
        return (
            len(self.association_rules)
            + len(self.statistical_rules)
            + len(self.distribution_rules)
            + sum(len(v) for v in self.count_rules.values())
        )

    # -- monitoring-state persistence ---------------------------------------

    def state_snapshot(self) -> dict:
        """JSON-ready copy of the full monitoring state.

        Captures everything :class:`PredictorState` carries — the sliding
        monitoring set, the recent-fatal burst window, per-rule refractory
        anchors and the time-triggered expert's clock and re-arm time — so
        a predictor rebuilt from the same rules and fed the same stream
        tail after :meth:`restore_state` emits byte-identical warnings.
        """
        from repro.core.serialization import key_to_json

        s = self.state
        return {
            "clock": s.clock,
            "last_fatal_time": s.last_fatal_time,
            "monitoring": [[t, code] for t, code in s.monitoring],
            "recent_fatals": list(s.recent_fatals),
            "last_fired": [
                [key_to_json(key), t] for key, t in s.last_fired.items()
            ],
            "dist_next_allowed": s.dist_next_allowed,
        }

    def restore_state(self, snapshot: dict) -> None:
        """Install a state captured by :meth:`state_snapshot`."""
        from repro.core.serialization import key_from_json

        self.state = PredictorState(
            clock=snapshot["clock"],
            last_fatal_time=snapshot["last_fatal_time"],
            monitoring=deque((t, code) for t, code in snapshot["monitoring"]),
            recent_fatals=deque(snapshot["recent_fatals"]),
            last_fired={
                key_from_json(key): t for key, t in snapshot["last_fired"]
            },
            dist_next_allowed=snapshot["dist_next_allowed"],
        )
        self._rebuild_tracking()
