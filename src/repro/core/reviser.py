"""The reviser (Algorithm 1).

Because the base learners deliberately use permissive parameters (low
support/confidence, low probability thresholds) to catch rare failure
patterns, some learned rules are bad.  The reviser replays the candidate
rules against the training set, computes per-rule confusion counts, and
keeps a rule only when its distance from the ROC-space origin,
``sqrt(m1² + m2²)`` with ``m1 = TP/(TP+FP)`` and ``m2 = TP/(TP+FN)``,
exceeds ``MinROC`` (0.7 in the paper).

Scoring runs as a *single* union-mode predictor pass over the training
log: every rule fires independently, warnings are grouped by rule, and
each rule's counts come from its own warnings — equivalent to evaluating
each rule in isolation, at a fraction of the cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import observe
from repro.core.knowledge import RuleRecord
from repro.core.predictor import Predictor
from repro.evaluation.matching import RuleScore, extract_failures, score_rules
from repro.learners.rules import RuleKey
from repro.raslog.catalog import EventCatalog, default_catalog
from repro.raslog.store import EventLog

DEFAULT_MIN_ROC = 0.7


@dataclass
class RevisionResult:
    """Kept and discarded rules, with their training-set scores."""

    kept: list[RuleRecord] = field(default_factory=list)
    removed: list[RuleRecord] = field(default_factory=list)
    scores: dict[RuleKey, RuleScore] = field(default_factory=dict)
    #: wall-clock seconds of the revision round
    seconds: float = 0.0

    @property
    def removed_keys(self) -> set[RuleKey]:
        return {r.key for r in self.removed}


class Reviser:
    """ROC-filter over candidate rules (Algorithm 1)."""

    def __init__(
        self,
        min_roc: float = DEFAULT_MIN_ROC,
        catalog: EventCatalog | None = None,
        tick: float | None = 60.0,
        dist_horizon_cap: float = 43200.0,
    ) -> None:
        if not 0.0 <= min_roc <= 2.0**0.5:
            raise ValueError(
                f"min_roc must lie in [0, sqrt(2)], got {min_roc}"
            )
        self.min_roc = min_roc
        self.catalog = catalog or default_catalog()
        self.tick = tick
        self.dist_horizon_cap = dist_horizon_cap

    def score(
        self, records: list[RuleRecord], training_log: EventLog, window: float
    ) -> dict[RuleKey, RuleScore]:
        """Per-rule confusion counts over the training log."""
        predictor = Predictor(
            [r.rule for r in records],
            window=window,
            catalog=self.catalog,
            ensemble="union",
            dist_horizon_cap=self.dist_horizon_cap,
        )
        warnings = predictor.replay(training_log, tick=self.tick)
        fatal_times, fatal_codes = extract_failures(training_log, self.catalog)
        scores = score_rules(warnings, fatal_times, fatal_codes)
        # Rules that never fired on the training data get a zero score —
        # they cannot demonstrate effectiveness, so Algorithm 1 drops them.
        for record in records:
            scores.setdefault(record.key, RuleScore())
        return scores

    def revise(
        self, records: list[RuleRecord], training_log: EventLog, window: float
    ) -> RevisionResult:
        """Apply Algorithm 1 to the candidate records."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        with observe.span("reviser.revise") as sp:
            scores = self.score(records, training_log, window)
            result = RevisionResult(scores=scores)
            for record in records:
                s = scores[record.key]
                scored = record.with_scores(tp=s.tp, fp=s.fp, fn=s.fn, roc=s.roc)
                if s.roc > self.min_roc:
                    result.kept.append(scored)
                else:
                    result.removed.append(scored)
        result.seconds = sp.seconds
        observe.counter("reviser.kept").inc(len(result.kept))
        observe.counter("reviser.removed").inc(len(result.removed))
        return result
