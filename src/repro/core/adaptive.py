"""Adaptive prediction-window tuning (the paper's first future-work item).

Section 7: "in the current design, the prediction window size is fixed.
Our on-going work includes adaptively changing this window size such that
the system can automatically tune its size to reduce the training cost,
without sacrificing the prediction accuracy."

:class:`AdaptiveWindowTuner` implements that idea with a validation
split: at each retraining the candidate windows are scored by training on
the head of the training window and measuring prediction accuracy on its
tail, and the *smallest* window whose F1 is within ``tolerance`` of the
best is selected — smaller windows mean shorter event histories to
maintain and cheaper online matching (the paper's stated motivation for
not simply using two-hour windows everywhere).
:class:`AdaptiveWindowFramework` plugs the tuner into the dynamic
framework.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.framework import (
    DynamicMetaLearningFramework,
    FrameworkConfig,
    RetrainEvent,
)
from repro.core.meta import MetaLearner
from repro.core.predictor import Predictor
from repro.core.reviser import Reviser
from repro.evaluation.matching import extract_failures, match_warnings
from repro.parallel.executor import Executor
from repro.raslog.catalog import EventCatalog
from repro.raslog.store import EventLog

#: The paper's Figure 13 sweep, reused as the default candidate set.
DEFAULT_CANDIDATES: tuple[float, ...] = (300.0, 900.0, 1800.0, 3600.0, 7200.0)


@dataclass
class TuningDecision:
    """Outcome of one window-tuning round."""

    week: int
    chosen: float
    #: candidate window -> (precision, recall, f1) on the validation tail
    scores: dict[float, tuple[float, float, float]] = field(default_factory=dict)


class AdaptiveWindowTuner:
    """Chooses ``Wp`` by validation accuracy, preferring small windows."""

    def __init__(
        self,
        candidates: tuple[float, ...] = DEFAULT_CANDIDATES,
        validation_fraction: float = 0.25,
        tolerance: float = 0.03,
        tick: float | None = 60.0,
    ) -> None:
        if len(candidates) < 2:
            raise ValueError("need at least two candidate windows")
        if sorted(candidates) != list(candidates):
            raise ValueError("candidate windows must be ascending")
        if not 0.0 < validation_fraction < 1.0:
            raise ValueError("validation_fraction must lie in (0, 1)")
        if tolerance < 0.0:
            raise ValueError("tolerance must be non-negative")
        self.candidates = tuple(float(c) for c in candidates)
        self.validation_fraction = validation_fraction
        self.tolerance = tolerance
        self.tick = tick

    def _split(self, train_log: EventLog) -> tuple[EventLog, EventLog]:
        start, end = train_log.span
        cut = end - (end - start) * self.validation_fraction
        return train_log.between(start, cut), train_log.between(cut, end + 1.0)

    def _score(
        self,
        window: float,
        meta: MetaLearner,
        reviser: Reviser,
        head: EventLog,
        tail: EventLog,
        catalog: EventCatalog,
        ensemble: str,
        dist_horizon_cap: float,
    ) -> tuple[float, float, float]:
        output = meta.train(head, window)
        revision = reviser.revise(output.records(), head, window)
        predictor = Predictor(
            [r.rule for r in revision.kept],
            window=window,
            catalog=catalog,
            ensemble=ensemble,
            dist_horizon_cap=dist_horizon_cap,
        )
        if len(tail):
            predictor.state.clock = float(tail.timestamps[0]) - 1.0
        warnings = predictor.replay(tail, tick=self.tick)
        fatal_times, fatal_codes = extract_failures(tail, catalog)
        result = match_warnings(warnings, fatal_times, fatal_codes)
        tp = result.true_positives
        p = tp / result.n_warnings if result.n_warnings else 0.0
        denom = tp + result.false_negatives
        r = tp / denom if denom else 0.0
        f1 = 2 * p * r / (p + r) if (p + r) else 0.0
        return (p, r, f1)

    def choose(
        self,
        week: int,
        train_log: EventLog,
        meta: MetaLearner,
        reviser: Reviser,
        catalog: EventCatalog,
        ensemble: str = "experts",
        dist_horizon_cap: float = 43200.0,
    ) -> TuningDecision:
        """Score every candidate and pick the smallest near-best window."""
        head, tail = self._split(train_log)
        decision = TuningDecision(week=week, chosen=self.candidates[0])
        if len(head) == 0 or len(tail) == 0:
            return decision  # not enough data to tune; keep the smallest
        for window in self.candidates:
            decision.scores[window] = self._score(
                window, meta, reviser, head, tail, catalog,
                ensemble, dist_horizon_cap,
            )
        best_f1 = max(f1 for _, _, f1 in decision.scores.values())
        for window in self.candidates:  # ascending: smallest wins ties
            if decision.scores[window][2] >= best_f1 - self.tolerance:
                decision.chosen = window
                break
        return decision


class AdaptiveWindowFramework(DynamicMetaLearningFramework):
    """Dynamic framework with per-retraining window tuning."""

    def __init__(
        self,
        config: FrameworkConfig | None = None,
        catalog: EventCatalog | None = None,
        executor: Executor | None = None,
        tuner: AdaptiveWindowTuner | None = None,
    ) -> None:
        super().__init__(config, catalog, executor)
        self.tuner = tuner or AdaptiveWindowTuner(tick=self.config.tick)
        self.decisions: list[TuningDecision] = []

    def _retrain(self, log: EventLog, week: int) -> RetrainEvent:
        w0, w1 = self.config.policy.window(week)
        train_log = log.slice_weeks(w0, w1)
        decision = self.tuner.choose(
            week,
            train_log,
            self.meta,
            self.reviser,
            self.catalog,
            ensemble=self.config.ensemble,
            dist_horizon_cap=self.config.dist_horizon_cap,
        )
        self.decisions.append(decision)
        self._window = decision.chosen
        return super()._retrain(log, week)
