"""The meta-learner (Section 4.1, "Ensemble Learning").

Trains the base learners on the current training set and combines them
with the mixture-of-experts model: each base learner is an expert on a
portion of the feature space, and the combination rule selects the most
appropriate expert per instance.  The consultation order — association
rules on a non-fatal event, statistical rules on a fatal event, the
probability distribution as fallback — is fixed by verification on the
training data in the paper; here it is configurable (and exercised by the
ensemble-ordering ablation bench).

Base learners are independent, so training fans out through a
:class:`repro.parallel.Executor` — the paper's observation that rule
generation can run in parallel while the machine operates.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro import faults, observe
from repro.core.knowledge import RuleRecord
from repro.learners.base import BaseLearner
from repro.learners.registry import DEFAULT_LEARNERS, create_learner
from repro.learners.rules import Rule
from repro.parallel.executor import Executor, ExecutorBroken, SerialExecutor
from repro.raslog.catalog import EventCatalog, default_catalog
from repro.raslog.store import EventLog


@dataclass
class TrainingOutput:
    """Per-learner rules from one meta-training round."""

    week: int
    rules_by_learner: dict[str, list[Rule]] = field(default_factory=dict)
    #: wall-clock seconds of the whole round (all learners + combination)
    seconds: float = 0.0
    #: wall-clock training seconds per base learner (measured in the
    #: worker, so the numbers are meaningful under process pools too)
    learner_seconds: dict[str, float] = field(default_factory=dict)

    def records(self) -> list[RuleRecord]:
        out: list[RuleRecord] = []
        seen = set()
        for learner, rules in self.rules_by_learner.items():
            for rule in rules:
                if rule.key in seen:
                    continue
                seen.add(rule.key)
                out.append(
                    RuleRecord(rule=rule, learner=learner, trained_at_week=self.week)
                )
        return out

    @property
    def n_rules(self) -> int:
        return len({r.key for rules in self.rules_by_learner.values() for r in rules})


class _TrainTask:
    """Picklable (learner, log, window) -> (rules, seconds) closure.

    Timing happens inside the call so that it is measured on the worker
    (thread or process) that actually ran the learner.
    """

    def __init__(self, log: EventLog, window: float) -> None:
        self.log = log
        self.window = window

    def __call__(self, learner: BaseLearner) -> tuple[list[Rule], float]:
        t0 = time.perf_counter()
        rules = learner.train(self.log, self.window)
        return rules, time.perf_counter() - t0


class MetaLearner:
    """Trains and combines the base predictive methods."""

    def __init__(
        self,
        learners: Sequence[BaseLearner | str] = DEFAULT_LEARNERS,
        catalog: EventCatalog | None = None,
        executor: Executor | None = None,
        learner_params: dict[str, dict] | None = None,
    ) -> None:
        if not learners:
            raise ValueError("need at least one base learner")
        self.catalog = catalog or default_catalog()
        self.executor = executor or SerialExecutor()
        params = learner_params or {}
        self.learners: list[BaseLearner] = []
        for item in learners:
            if isinstance(item, str):
                self.learners.append(
                    create_learner(item, catalog=self.catalog, **params.get(item, {}))
                )
            else:
                self.learners.append(item)
        names = [lr.name for lr in self.learners]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate learner names: {names}")

    @property
    def learner_names(self) -> list[str]:
        return [lr.name for lr in self.learners]

    def train(self, log: EventLog, window: float, week: int = 0) -> TrainingOutput:
        """Run every base learner on the training log (in parallel when the
        executor supports it) and collect their candidate rules."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        plan = faults.active()
        if plan is not None:
            plan.on_train(week)
        task = _TrainTask(log, window)
        with observe.span("meta.train") as sp:
            try:
                results = self.executor.map(task, self.learners)
            except ExecutorBroken:
                # Infrastructure died, not a learner: retrain serially so
                # this round still completes, and stay serial — the old
                # pool is closed and cannot be revived from here.
                observe.counter("meta.train.serial_fallback").inc()
                self.executor = SerialExecutor()
                results = self.executor.map(task, self.learners)
            output = TrainingOutput(week=week)
            for learner, (rules, seconds) in zip(self.learners, results):
                output.rules_by_learner[learner.name] = list(rules)
                output.learner_seconds[learner.name] = seconds
                observe.histogram(f"meta.train.{learner.name}").observe(seconds)
        output.seconds = sp.seconds
        return output
