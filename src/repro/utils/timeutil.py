"""Time arithmetic helpers.

All timestamps in the library are plain floats measured in seconds from an
arbitrary epoch (for synthetic logs, the start of the trace; for parsed
LogHub logs, the UNIX epoch).  Week and month arithmetic follows the paper's
conventions: a "week" is exactly seven days and a "month" is approximated as
30 days, which is how the paper's 3-/6-month sliding training windows are
interpreted.
"""

from __future__ import annotations

MINUTE_SECONDS = 60.0
HOUR_SECONDS = 60.0 * MINUTE_SECONDS
DAY_SECONDS = 24.0 * HOUR_SECONDS
WEEK_SECONDS = 7.0 * DAY_SECONDS
MONTH_SECONDS = 30.0 * DAY_SECONDS


def weeks(n: float) -> float:
    """Duration of *n* weeks in seconds."""
    return float(n) * WEEK_SECONDS


def months(n: float) -> float:
    """Duration of *n* 30-day months in seconds."""
    return float(n) * MONTH_SECONDS


def week_index(timestamp: float, origin: float = 0.0) -> int:
    """Zero-based week number containing *timestamp* relative to *origin*."""
    if timestamp < origin:
        raise ValueError(
            f"timestamp {timestamp!r} precedes the trace origin {origin!r}"
        )
    return int((timestamp - origin) // WEEK_SECONDS)


def day_index(timestamp: float, origin: float = 0.0) -> int:
    """Zero-based day number containing *timestamp* relative to *origin*."""
    if timestamp < origin:
        raise ValueError(
            f"timestamp {timestamp!r} precedes the trace origin {origin!r}"
        )
    return int((timestamp - origin) // DAY_SECONDS)


def week_span(week: int, origin: float = 0.0) -> tuple[float, float]:
    """Half-open time interval ``[start, end)`` of the given week number."""
    if week < 0:
        raise ValueError(f"week number must be non-negative, got {week}")
    start = origin + week * WEEK_SECONDS
    return start, start + WEEK_SECONDS
