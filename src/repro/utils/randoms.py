"""Deterministic random-number handling.

Every stochastic component in the library accepts either an integer seed or
a ready-made :class:`numpy.random.Generator`.  Components that need several
independent streams (e.g. the log generator, which draws background events,
failure arrivals and duplication noise separately so that changing one knob
does not reshuffle the others) derive them from a :class:`SeedSequencePool`.
"""

from __future__ import annotations

import numpy as np

SeedLike = int | np.random.Generator | np.random.SeedSequence | None


def rng_from_seed(seed: SeedLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form."""
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


class SeedSequencePool:
    """Hand out named, reproducible child RNG streams from one root seed.

    Streams are keyed by name: asking twice for the same name returns
    generators with identical state, and distinct names give statistically
    independent streams regardless of the order they are requested in.
    """

    def __init__(self, seed: SeedLike = None) -> None:
        if isinstance(seed, np.random.Generator):
            # Derive a root sequence from the generator so that pools built
            # from a generator are still reproducible from that generator's
            # state at construction time.
            root = np.random.SeedSequence(int(seed.integers(0, 2**63)))
        elif isinstance(seed, np.random.SeedSequence):
            root = seed
        else:
            root = np.random.SeedSequence(seed)
        self._root = root

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the stream called *name*."""
        digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
        child = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=tuple(int(b) for b in digest),
        )
        return np.random.default_rng(child)
