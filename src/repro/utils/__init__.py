"""Shared utilities: time arithmetic, RNG handling, table formatting."""

from repro.utils.randoms import SeedSequencePool, rng_from_seed
from repro.utils.tables import TableResult, format_table
from repro.utils.timeutil import (
    DAY_SECONDS,
    HOUR_SECONDS,
    MINUTE_SECONDS,
    MONTH_SECONDS,
    WEEK_SECONDS,
    day_index,
    months,
    week_index,
    week_span,
    weeks,
)

__all__ = [
    "DAY_SECONDS",
    "HOUR_SECONDS",
    "MINUTE_SECONDS",
    "MONTH_SECONDS",
    "WEEK_SECONDS",
    "SeedSequencePool",
    "TableResult",
    "day_index",
    "format_table",
    "months",
    "rng_from_seed",
    "week_index",
    "week_span",
    "weeks",
]
