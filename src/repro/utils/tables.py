"""Plain-text table rendering for experiment outputs.

Every experiment driver returns a :class:`TableResult` holding the rows a
paper table or figure reports; benchmarks print them with
:func:`format_table` so the reproduction can be eyeballed against the paper
without any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any


def _cell(value: Any, floatfmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


@dataclass
class TableResult:
    """A titled grid of rows, the unit of output for every experiment.

    ``rows`` maps column name to value; all rows must share the header of
    the first row.  ``meta`` carries experiment parameters (seed, scale,
    windows) so a printed table is self-describing.
    """

    title: str
    columns: Sequence[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        missing = [c for c in self.columns if c not in values]
        extra = [c for c in values if c not in self.columns]
        if missing or extra:
            raise ValueError(
                f"row keys do not match columns: missing={missing} extra={extra}"
            )
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        if name not in self.columns:
            raise KeyError(f"no column {name!r} in table {self.title!r}")
        return [row[name] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def render(self, floatfmt: str = ".3f") -> str:
        return format_table(self, floatfmt=floatfmt)


def format_table(
    table: TableResult | Mapping[str, Iterable[Any]],
    floatfmt: str = ".3f",
) -> str:
    """Render a :class:`TableResult` (or column mapping) as aligned text."""
    if isinstance(table, TableResult):
        title = table.title
        columns = list(table.columns)
        rows = [[_cell(r[c], floatfmt) for c in columns] for r in table.rows]
        meta = table.meta
    else:
        title = ""
        columns = list(table.keys())
        data = [list(v) for v in table.values()]
        if data and len({len(col) for col in data}) > 1:
            raise ValueError("all columns must have the same length")
        rows = [
            [_cell(col[i], floatfmt) for col in data]
            for i in range(len(data[0]) if data else 0)
        ]
        meta = {}

    widths = [
        max(len(columns[j]), *(len(r[j]) for r in rows)) if rows else len(columns[j])
        for j in range(len(columns))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    if meta:
        lines.append("  " + "  ".join(f"{k}={v}" for k, v in sorted(meta.items())))
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)
