"""Failure warnings — the output datatype of the prediction engine.

Lives at the package top level because it is shared by the producer side
(:mod:`repro.core.predictor`) and the consumer side
(:mod:`repro.evaluation`), which otherwise form a strict dependency
layering (core depends on evaluation, never the reverse).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.learners.rules import RuleKey


@dataclass(frozen=True, slots=True)
class FailureWarning:
    """A prediction: failure ``predicted`` within ``window`` after ``time``.

    ``predicted`` is a catalog fatal-type code, or
    :data:`repro.learners.rules.ANY_FAILURE` for untyped forecasts.
    ``rule_key`` and ``learner`` carry provenance for per-rule scoring
    (the reviser) and per-learner analysis (the Figure 8 Venn diagram).
    """

    time: float
    predicted: str
    window: float
    rule_key: RuleKey
    learner: str

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"warning window must be positive, got {self.window}")

    @property
    def deadline(self) -> float:
        """Latest time the predicted failure may occur and still count."""
        return self.time + self.window
