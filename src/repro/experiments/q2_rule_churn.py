"""Q2 / Figure 12 — number of rules changed per retraining.

The paper tracks, per retraining round: rules unchanged, added by the
meta-learner, removed by the meta-learner, and removed by the reviser —
showing constant churn (change ratio 44 %–212 %), accumulation of rules
over the first year, and a spike at the SDSC week-60–64 reconfiguration
(57 added / 148 removed vs the usual 20–30 / 50–80).
"""

from __future__ import annotations

from repro.core.framework import DynamicMetaLearningFramework, FrameworkConfig, RunResult
from repro.experiments.config import DEFAULT_SEED, make_log
from repro.utils.tables import TableResult


def run(
    system: str = "SDSC",
    scale: float = 1.0,
    weeks: int | None = None,
    seed: int = DEFAULT_SEED,
    window: float = 300.0,
) -> tuple[TableResult, RunResult]:
    """The four churn series over one dynamic run."""
    syn = make_log(system, scale=scale, weeks=weeks, seed=seed)
    log, catalog = syn.clean, syn.catalog

    config = FrameworkConfig(prediction_window=window)
    result = DynamicMetaLearningFramework(config, catalog=catalog).run(log)

    table = TableResult(
        title=f"Figure 12: rules changed per retraining ({system})",
        columns=[
            "week",
            "unchanged",
            "added",
            "removed_by_meta",
            "removed_by_reviser",
            "active",
            "change_ratio",
        ],
        meta={"system": system, "seed": seed},
    )
    for record in result.churn.records:
        table.add_row(
            week=record.week,
            unchanged=record.unchanged,
            added=record.added,
            removed_by_meta=record.removed_by_meta,
            removed_by_reviser=record.removed_by_reviser,
            active=record.total_active,
            change_ratio=round(record.change_ratio, 2)
            if record.unchanged
            else float("inf"),
        )
    return table, result
