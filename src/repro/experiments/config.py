"""Shared experiment configuration and workload construction.

Every experiment driver takes a system name ("ANL" / "SDSC"), a volume
``scale`` and an optional week count, and builds its workload through
:func:`make_log`, which memoizes generated traces so a benchmark session
that regenerates several figures from the same log pays the generation
cost once.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.raslog.catalog import EventCatalog, default_catalog
from repro.raslog.generator import GeneratorConfig, SyntheticLog, generate_log
from repro.raslog.profiles import get_profile

#: Default volume scale for experiment drivers: full calibrated volume for
#: the logical (clean) stream, which is what the learners consume.
DEFAULT_SCALE = 1.0
DEFAULT_SEED = 2008  # the paper's year


@dataclass(frozen=True)
class ExperimentSetup:
    """Identity of one experiment workload."""

    system: str = "SDSC"
    scale: float = DEFAULT_SCALE
    weeks: int | None = None
    seed: int = DEFAULT_SEED
    duplicates: bool = False

    def __post_init__(self) -> None:
        get_profile(self.system)  # validate early


@lru_cache(maxsize=16)
def _cached_log(setup: ExperimentSetup) -> SyntheticLog:
    profile = get_profile(setup.system)
    config = GeneratorConfig(
        scale=setup.scale,
        weeks=setup.weeks,
        seed=setup.seed,
        duplicates=setup.duplicates,
    )
    return generate_log(profile, config)


def make_log(
    system: str = "SDSC",
    scale: float = DEFAULT_SCALE,
    weeks: int | None = None,
    seed: int = DEFAULT_SEED,
    duplicates: bool = False,
) -> SyntheticLog:
    """Build (or fetch a cached) synthetic trace for an experiment."""
    return _cached_log(
        ExperimentSetup(
            system=system,
            scale=scale,
            weeks=weeks,
            seed=seed,
            duplicates=duplicates,
        )
    )


def catalog() -> EventCatalog:
    return default_catalog()


def clear_cache() -> None:
    """Drop memoized traces (tests use this to bound memory)."""
    _cached_log.cache_clear()
