"""Q3 / Figure 13 — sensitivity to the prediction-window size.

Sweeps Wp over the paper's durations (5 min – 2 h).  Expected trend: the
larger the window, the higher the recall (up to ≈ 0.82 at two hours) and
the lower the precision; across all settings both metrics stay above
≈ 0.55, and the precision spread is ≤ ~0.25 / recall spread ≤ ~0.15.
"""

from __future__ import annotations

from repro.core.framework import DynamicMetaLearningFramework, FrameworkConfig, RunResult
from repro.evaluation.timeline import mean_accuracy
from repro.experiments.config import DEFAULT_SEED, make_log
from repro.utils.tables import TableResult

#: The paper's prediction windows, seconds.
WINDOWS: tuple[float, ...] = (
    300.0,
    900.0,
    1800.0,
    2700.0,
    3600.0,
    5400.0,
    7200.0,
)


def run(
    system: str = "SDSC",
    scale: float = 1.0,
    weeks: int | None = None,
    seed: int = DEFAULT_SEED,
    windows: tuple[float, ...] = WINDOWS,
) -> tuple[TableResult, dict[float, RunResult]]:
    """Overall precision/recall per prediction-window size."""
    syn = make_log(system, scale=scale, weeks=weeks, seed=seed)
    log, catalog = syn.clean, syn.catalog

    results: dict[float, RunResult] = {}
    table = TableResult(
        title=f"Figure 13: prediction-window sensitivity ({system})",
        columns=["window", "precision", "recall", "n_warnings"],
        meta={"system": system, "seed": seed},
    )
    for wp in windows:
        config = FrameworkConfig(prediction_window=wp)
        result = DynamicMetaLearningFramework(config, catalog=catalog).run(log)
        results[wp] = result
        precision, recall = mean_accuracy(result.weekly)
        label = f"{wp / 60:.0f}min" if wp < 3600 else f"{wp / 3600:g}hr"
        table.add_row(
            window=label,
            precision=round(precision, 3),
            recall=round(recall, 3),
            n_warnings=len(result.warnings),
        )
    return table, results
