"""Q2 / Figure 9 — what is the appropriate size for the training set?

Compares four policies at the default retraining period: dynamic-whole
(all history), dynamic-6 mo and dynamic-3 mo sliding windows, and static
(initial six months, no retraining).  The paper finds dynamic-whole best,
dynamic-6 mo within ≈ 0.08 of it, dynamic-3 mo worst among the dynamic
variants, and static decaying monotonically — hence the recommendation
to train on the most recent six months.
"""

from __future__ import annotations

from repro.core.framework import DynamicMetaLearningFramework, FrameworkConfig, RunResult
from repro.core.windows import TrainingPolicy, dynamic_months, dynamic_whole, static_initial
from repro.evaluation.timeline import mean_accuracy, rolling_metrics
from repro.experiments.config import DEFAULT_SEED, make_log
from repro.utils.tables import TableResult

POLICIES: dict[str, TrainingPolicy] = {
    "dynamic-whole": dynamic_whole(),
    "dynamic-6mo": dynamic_months(6),
    "dynamic-3mo": dynamic_months(3),
    "static": static_initial(6),
}


def run(
    system: str = "SDSC",
    scale: float = 1.0,
    weeks: int | None = None,
    seed: int = DEFAULT_SEED,
    window: float = 300.0,
    smoothing: int = 4,
) -> tuple[TableResult, dict[str, RunResult]]:
    """Weekly accuracy per training-window policy."""
    syn = make_log(system, scale=scale, weeks=weeks, seed=seed)
    log, catalog = syn.clean, syn.catalog

    results: dict[str, RunResult] = {}
    for name, policy in POLICIES.items():
        config = FrameworkConfig(prediction_window=window, policy=policy)
        results[name] = DynamicMetaLearningFramework(config, catalog=catalog).run(log)

    columns = ["week"]
    for name in POLICIES:
        columns += [f"p_{name}", f"r_{name}"]
    table = TableResult(
        title=f"Figure 9: training-set size policies ({system})",
        columns=columns,
        meta={
            "system": system,
            "seed": seed,
            **{
                f"mean_{name}": tuple(round(x, 3) for x in mean_accuracy(r.weekly))
                for name, r in results.items()
            },
        },
    )
    smoothed = {m: rolling_metrics(r.weekly, smoothing) for m, r in results.items()}
    n_weeks = len(next(iter(smoothed.values())))
    for i in range(n_weeks):
        row = {"week": smoothed["dynamic-whole"][i].week}
        for name in POLICIES:
            row[f"p_{name}"] = round(smoothed[name][i].precision, 3)
            row[f"r_{name}"] = round(smoothed[name][i].recall, 3)
        table.add_row(**row)
    return table, results
