"""Table 3 — event categories: fatal / non-fatal low-level types per
high-level (facility) category; 69 fatal and 150 non-fatal in total."""

from __future__ import annotations

from repro.raslog.catalog import TABLE3_COUNTS, EventCatalog, default_catalog
from repro.raslog.events import FACILITIES
from repro.utils.tables import TableResult


def run(catalog: EventCatalog | None = None) -> TableResult:
    """Regenerate Table 3 from the catalog (paper columns alongside)."""
    catalog = catalog or default_catalog()
    counts = catalog.counts_by_facility()
    table = TableResult(
        title="Table 3: event categories in Blue Gene/L",
        columns=[
            "category",
            "fatal",
            "nonfatal",
            "paper_fatal",
            "paper_nonfatal",
        ],
    )
    total_f = total_n = 0
    for fac in FACILITIES:
        fatal, nonfatal = counts[fac]
        paper_f, paper_n = TABLE3_COUNTS[fac]
        total_f += fatal
        total_n += nonfatal
        table.add_row(
            category=fac.value,
            fatal=fatal,
            nonfatal=nonfatal,
            paper_fatal=paper_f,
            paper_nonfatal=paper_n,
        )
    table.add_row(
        category="TOTAL",
        fatal=total_f,
        nonfatal=total_n,
        paper_fatal=sum(v[0] for v in TABLE3_COUNTS.values()),
        paper_nonfatal=sum(v[1] for v in TABLE3_COUNTS.values()),
    )
    return table
