"""Q2 / Figure 11 — is it necessary to conduct dynamic revising?

Runs the dynamic framework with and without the reviser.  The paper
reports that dynamic revising boosts both precision and recall by up to
~6 %: the permissive mining parameters needed to catch rare failure
patterns also produce misleading rules, which the ROC filter removes.
"""

from __future__ import annotations

from repro.core.framework import DynamicMetaLearningFramework, FrameworkConfig, RunResult
from repro.evaluation.timeline import mean_accuracy, rolling_metrics
from repro.experiments.config import DEFAULT_SEED, make_log
from repro.utils.tables import TableResult


def run(
    system: str = "SDSC",
    scale: float = 1.0,
    weeks: int | None = None,
    seed: int = DEFAULT_SEED,
    window: float = 300.0,
    smoothing: int = 4,
) -> tuple[TableResult, dict[str, RunResult]]:
    """Weekly accuracy with and without the reviser."""
    syn = make_log(system, scale=scale, weeks=weeks, seed=seed)
    log, catalog = syn.clean, syn.catalog

    results = {
        "revised": DynamicMetaLearningFramework(
            FrameworkConfig(prediction_window=window, use_reviser=True),
            catalog=catalog,
        ).run(log),
        "unrevised": DynamicMetaLearningFramework(
            FrameworkConfig(prediction_window=window, use_reviser=False),
            catalog=catalog,
        ).run(log),
    }

    table = TableResult(
        title=f"Figure 11: effect of the reviser ({system})",
        columns=["week", "p_revised", "r_revised", "p_unrevised", "r_unrevised"],
        meta={
            "system": system,
            "seed": seed,
            **{
                f"mean_{name}": tuple(round(x, 3) for x in mean_accuracy(r.weekly))
                for name, r in results.items()
            },
        },
    )
    smoothed = {m: rolling_metrics(r.weekly, smoothing) for m, r in results.items()}
    for i in range(len(smoothed["revised"])):
        table.add_row(
            week=smoothed["revised"][i].week,
            p_revised=round(smoothed["revised"][i].precision, 3),
            r_revised=round(smoothed["revised"][i].recall, 3),
            p_unrevised=round(smoothed["unrevised"][i].precision, 3),
            r_unrevised=round(smoothed["unrevised"][i].recall, 3),
        )
    return table, results
