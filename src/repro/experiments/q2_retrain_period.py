"""Q2 / Figure 10 — how often to trigger relearning?

Runs the dynamic framework with retraining windows WR ∈ {2, 4, 8} weeks.
The paper: accuracy is broadly similar across WR with more frequent
retraining better by up to ~0.06, and the SDSC reconfiguration around
week 64 produces a > 10 % dip that heals within a few retrainings.
"""

from __future__ import annotations

from repro.core.framework import DynamicMetaLearningFramework, FrameworkConfig, RunResult
from repro.evaluation.timeline import mean_accuracy, rolling_metrics
from repro.experiments.config import DEFAULT_SEED, make_log
from repro.utils.tables import TableResult

RETRAIN_WINDOWS: tuple[int, ...] = (2, 4, 8)


def run(
    system: str = "SDSC",
    scale: float = 1.0,
    weeks: int | None = None,
    seed: int = DEFAULT_SEED,
    window: float = 300.0,
    smoothing: int = 4,
    retrain_windows: tuple[int, ...] = RETRAIN_WINDOWS,
) -> tuple[TableResult, dict[int, RunResult]]:
    """Weekly accuracy per retraining period WR."""
    syn = make_log(system, scale=scale, weeks=weeks, seed=seed)
    log, catalog = syn.clean, syn.catalog

    results: dict[int, RunResult] = {}
    for wr in retrain_windows:
        config = FrameworkConfig(prediction_window=window, retrain_weeks=wr)
        results[wr] = DynamicMetaLearningFramework(config, catalog=catalog).run(log)

    columns = ["week"]
    for wr in retrain_windows:
        columns += [f"p_wr{wr}", f"r_wr{wr}"]
    table = TableResult(
        title=f"Figure 10: retraining period sweep ({system})",
        columns=columns,
        meta={
            "system": system,
            "seed": seed,
            **{
                f"mean_wr{wr}": tuple(round(x, 3) for x in mean_accuracy(r.weekly))
                for wr, r in results.items()
            },
        },
    )
    smoothed = {wr: rolling_metrics(r.weekly, smoothing) for wr, r in results.items()}
    n_weeks = len(next(iter(smoothed.values())))
    for i in range(n_weeks):
        row = {"week": smoothed[retrain_windows[0]][i].week}
        for wr in retrain_windows:
            row[f"p_wr{wr}"] = round(smoothed[wr][i].precision, 3)
            row[f"r_wr{wr}"] = round(smoothed[wr][i].recall, 3)
        table.add_row(**row)
    return table, results
