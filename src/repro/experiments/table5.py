"""Table 5 — operation overhead as a function of training size.

The paper times rule generation (statistical / association / probability
distribution / "ensemble & revise") and rule matching for training sets
of 3–30 months on a 1.6 GHz Pentium.  Absolute times are hardware-bound;
the claims this driver reproduces are the *shape*: generation grows
roughly linearly with training size, association mining dominates it, and
online rule matching stays trivially cheap and roughly constant.
"""

from __future__ import annotations

from repro.evaluation.overhead import OverheadRecord, measure_overhead
from repro.experiments.config import DEFAULT_SEED, make_log
from repro.learners.registry import DEFAULT_LEARNERS, create_learner
from repro.utils.tables import TableResult
from repro.utils.timeutil import WEEK_SECONDS

#: Training sizes of Table 5, months.
TABLE5_MONTHS: tuple[int, ...] = (3, 6, 12, 18, 24, 30)


def run(
    system: str = "SDSC",
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    months: tuple[int, ...] = TABLE5_MONTHS,
    window: float = 300.0,
    matching_weeks: int = 4,
) -> tuple[TableResult, list[OverheadRecord]]:
    """Measure generation/matching overhead per training size."""
    max_weeks = max(round(m * 30 / 7) for m in months) + matching_weeks
    syn = make_log(system, scale=scale, weeks=max_weeks, seed=seed)
    log = syn.clean
    catalog = syn.catalog

    table = TableResult(
        title="Table 5: operation overhead (seconds) vs training size",
        columns=[
            "training",
            "weeks",
            "events",
            "stat_rule",
            "asso_rule",
            "prob_dist",
            "ensemble_revise",
            "rule_matching",
        ],
        meta={"system": system, "scale": scale, "seed": seed, "window": window},
    )
    records: list[OverheadRecord] = []
    for m in months:
        weeks = round(m * 30 / 7)
        training_log = log.between(0.0, weeks * WEEK_SECONDS)
        matching_log = log.between(
            weeks * WEEK_SECONDS, (weeks + matching_weeks) * WEEK_SECONDS
        )
        learners = [create_learner(name, catalog=catalog) for name in DEFAULT_LEARNERS]
        record = measure_overhead(
            learners,
            training_log,
            matching_log,
            window=window,
            training_weeks=weeks,
            catalog=catalog,
        )
        records.append(record)
        table.add_row(
            training=f"{m} mo",
            weeks=weeks,
            events=record.n_training_events,
            stat_rule=round(record.generation.get("statistical", 0.0), 3),
            asso_rule=round(record.generation.get("association", 0.0), 3),
            prob_dist=round(record.generation.get("distribution", 0.0), 3),
            ensemble_revise=round(record.ensemble_and_revise, 3),
            rule_matching=round(record.rule_matching, 3),
        )
    return table, records
