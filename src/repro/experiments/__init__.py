"""Experiment drivers, one per paper table/figure (see DESIGN.md index)."""

from repro.experiments import (
    figure4,
    figure5,
    figure8,
    q1_meta,
    q2_retrain_period,
    q2_reviser,
    q2_rule_churn,
    q2_training_size,
    q3_window,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.config import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    ExperimentSetup,
    clear_cache,
    make_log,
)

__all__ = [
    "DEFAULT_SCALE",
    "DEFAULT_SEED",
    "ExperimentSetup",
    "clear_cache",
    "figure4",
    "figure5",
    "figure8",
    "make_log",
    "q1_meta",
    "q2_retrain_period",
    "q2_reviser",
    "q2_rule_churn",
    "q2_training_size",
    "q3_window",
    "table2",
    "table3",
    "table4",
    "table5",
]
