"""Table 2 — log description: period, weeks, number of events, size.

The paper reports the raw RAS dumps: ANL 112 weeks / 5,887,771 events /
2.27 GB and SDSC 132 weeks / 517,247 events / 463 MB.  This driver
generates both synthetic systems and reports the same columns; the size
column is estimated from the LogHub line rendering of each record.
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_SEED, make_log
from repro.raslog.parser import format_line
from repro.utils.tables import TableResult

#: Published values for side-by-side comparison.
PAPER_ROWS = {
    "ANL": {"weeks": 112, "events": 5_887_771, "size": "2.27 GB"},
    "SDSC": {"weeks": 132, "events": 517_247, "size": "463 MB"},
}


def _estimate_bytes(log, sample: int = 200) -> int:
    if len(log) == 0:
        return 0
    step = max(1, len(log) // sample)
    sampled = [log[i] for i in range(0, len(log), step)]
    mean_line = sum(len(format_line(e)) + 1 for e in sampled) / len(sampled)
    return int(mean_line * len(log))


def run(
    scale: float = 0.02,
    seed: int = DEFAULT_SEED,
    systems: tuple[str, ...] = ("ANL", "SDSC"),
) -> TableResult:
    """Regenerate Table 2 rows from synthetic raw logs.

    Raw (duplicated) logs are volume-heavy; the default ``scale`` keeps
    generation fast — the ``events_scaled_up`` column projects counts back
    to full volume for comparison with the paper.
    """
    table = TableResult(
        title="Table 2: log description",
        columns=[
            "log",
            "weeks",
            "events",
            "events_scaled_up",
            "approx_size_mb",
            "paper_events",
        ],
        meta={"scale": scale, "seed": seed},
    )
    for system in systems:
        syn = make_log(system, scale=scale, seed=seed, duplicates=True)
        raw = syn.raw
        assert raw is not None
        table.add_row(
            log=system,
            weeks=syn.profile.weeks,
            events=len(raw),
            events_scaled_up=int(len(raw) / scale),
            approx_size_mb=round(_estimate_bytes(raw) / scale / 1e6, 1),
            paper_events=PAPER_ROWS[system]["events"],
        )
    return table
