"""Figure 5 — CDFs of failure inter-arrival times with fitted models.

The paper fits Weibull / exponential / log-normal CDFs to the
inter-arrival times of fatal events by maximum likelihood and plots the
empirical CDF against the best fit; the SDSC example is
``F(t) = 1 - exp(-(t/19984.8)^0.507936)``.  The driver reports each
family's parameters, log-likelihood and KS statistic, plus empirical-vs-
fitted CDF values at reference points.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import DEFAULT_SEED, make_log
from repro.learners.fitting import DISTRIBUTION_FAMILIES, fit_family
from repro.utils.tables import TableResult

#: Elapsed-time reference points (seconds) for CDF comparison.
REFERENCE_POINTS: tuple[float, ...] = (300.0, 3600.0, 20000.0, 86400.0, 604800.0)


def run(
    system: str = "SDSC",
    scale: float = 1.0,
    weeks: int | None = None,
    seed: int = DEFAULT_SEED,
) -> tuple[TableResult, TableResult]:
    """(fit comparison table, CDF-at-reference-points table)."""
    syn = make_log(system, scale=scale, weeks=weeks, seed=seed)
    fatal = syn.clean.fatal(syn.catalog)
    gaps = fatal.interarrivals()
    gaps = gaps[gaps > 0.0]

    fits = {name: fit_family(name, gaps) for name in DISTRIBUTION_FAMILIES}
    best = max(fits.values(), key=lambda f: f.loglik)

    fit_table = TableResult(
        title=f"Figure 5: inter-arrival distribution fits ({system})",
        columns=["family", "params", "loglik", "ks", "best"],
        meta={"system": system, "n_gaps": len(gaps), "seed": seed},
    )
    for name, fitted in fits.items():
        fit_table.add_row(
            family=name,
            params=tuple(round(p, 4) for p in fitted.params),
            loglik=round(fitted.loglik, 1),
            ks=round(fitted.ks_statistic, 4),
            best=(fitted.name == best.name),
        )

    sorted_gaps = np.sort(gaps)
    cdf_table = TableResult(
        title=f"Figure 5: CDF values at reference elapsed times ({system})",
        columns=["t_seconds", "empirical", "fitted_best"],
        meta={"best_family": best.name},
    )
    for t in REFERENCE_POINTS:
        empirical = float(np.searchsorted(sorted_gaps, t, "right")) / len(sorted_gaps)
        cdf_table.add_row(
            t_seconds=int(t),
            empirical=round(empirical, 4),
            fitted_best=round(float(best.cdf(t)), 4),
        )
    return fit_table, cdf_table
