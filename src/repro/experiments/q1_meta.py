"""Q1 / Figure 7 — meta-learning versus the individual base methods.

Each base learner runs standalone under a *static* regime (first six
months as training set, no retraining), alongside the static
meta-learner combining all three.  The paper's findings: accuracy decays
over time for every static method; association rules have the worst
recall (≈ 75 % of fatal events have no precursor), statistical rules
have good precision but low recall, the probability distribution has
good recall but many false alarms; and the meta-learner substantially
boosts recall (up to ~3×) with a non-trivial precision gain.
"""

from __future__ import annotations

from repro.core.framework import DynamicMetaLearningFramework, FrameworkConfig, RunResult
from repro.core.windows import static_initial
from repro.evaluation.timeline import rolling_metrics
from repro.experiments.config import DEFAULT_SEED, make_log
from repro.learners.registry import DEFAULT_LEARNERS
from repro.utils.tables import TableResult

#: The four curves of each Figure 7 plot.
METHODS: tuple[str, ...] = DEFAULT_LEARNERS + ("meta",)


def run_method(
    method: str,
    log,
    catalog,
    window: float = 300.0,
    initial_train_weeks: int = 26,
) -> RunResult:
    """One static-policy run: a single base learner, or the full ensemble."""
    learners = DEFAULT_LEARNERS if method == "meta" else (method,)
    config = FrameworkConfig(
        prediction_window=window,
        policy=static_initial(6),
        initial_train_weeks=initial_train_weeks,
        learners=learners,
    )
    return DynamicMetaLearningFramework(config, catalog=catalog).run(log)


def run(
    system: str = "SDSC",
    scale: float = 1.0,
    weeks: int | None = None,
    seed: int = DEFAULT_SEED,
    window: float = 300.0,
    smoothing: int = 4,
) -> tuple[TableResult, dict[str, RunResult]]:
    """Weekly precision/recall of each method plus the static meta-learner."""
    syn = make_log(system, scale=scale, weeks=weeks, seed=seed)
    log, catalog = syn.clean, syn.catalog

    results = {m: run_method(m, log, catalog, window=window) for m in METHODS}

    columns = ["week"]
    for m in METHODS:
        columns += [f"p_{m}", f"r_{m}"]
    table = TableResult(
        title=f"Figure 7: meta-learning vs base methods ({system})",
        columns=columns,
        meta={"system": system, "seed": seed, "window": window},
    )
    smoothed = {m: rolling_metrics(r.weekly, smoothing) for m, r in results.items()}
    n_weeks = len(next(iter(smoothed.values())))
    for i in range(n_weeks):
        row = {"week": smoothed[METHODS[0]][i].week}
        for m in METHODS:
            row[f"p_{m}"] = round(smoothed[m][i].precision, 3)
            row[f"r_{m}"] = round(smoothed[m][i].recall, 3)
        table.add_row(**row)
    return table, results
