"""Figure 8 — Venn diagram of fatal events captured per base learner.

The paper examines SDSC weeks 44–48: of 156 fatal events, the association
learner captured 37 (23.7 %), the statistical learner 58 (37.2 %), the
probability distribution 88 (56.4 %), and 67 were captured by more than
one learner.  This driver trains each learner on the six months before
the analysis span, replays the span, and reports the seven Venn regions.
"""

from __future__ import annotations

from repro.core.predictor import Predictor
from repro.evaluation.matching import extract_failures
from repro.evaluation.venn import VennResult, venn_coverage
from repro.experiments.config import DEFAULT_SEED, make_log
from repro.learners.registry import DEFAULT_LEARNERS, create_learner
from repro.utils.tables import TableResult


def run(
    system: str = "SDSC",
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    span: tuple[int, int] = (44, 48),
    train_weeks: int = 26,
    window: float = 300.0,
) -> tuple[TableResult, VennResult]:
    """Per-learner coverage Venn over the analysis span."""
    start, end = span
    if end <= start:
        raise ValueError(f"empty analysis span {span}")
    syn = make_log(system, scale=scale, weeks=end, seed=seed)
    log, catalog = syn.clean, syn.catalog
    train_log = log.slice_weeks(max(0, start - train_weeks), start)
    test_log = log.slice_weeks(start, end)

    warnings_by_learner = {}
    for name in DEFAULT_LEARNERS:
        learner = create_learner(name, catalog=catalog)
        rules = learner.train(train_log, window)
        predictor = Predictor(rules, window=window, catalog=catalog)
        if len(test_log):
            predictor.state.clock = float(test_log.timestamps[0]) - 1.0
        warnings_by_learner[name] = predictor.replay(test_log)

    fatal_times, fatal_codes = extract_failures(test_log, catalog)
    venn = venn_coverage(warnings_by_learner, fatal_times, fatal_codes)

    table = TableResult(
        title=f"Figure 8: Venn coverage, {system} weeks {start}-{end}",
        columns=["region", "captured"],
        meta={
            "system": system,
            "seed": seed,
            "n_fatal": venn.n_fatal,
            "multi_captured": venn.multi_captured,
        },
    )
    for name in venn.names:
        table.add_row(
            region=f"{name} (total {venn.coverage_fraction(name):.1%})",
            captured=venn.covered_by.get(name, 0),
        )
    for region, count in sorted(
        venn.regions.items(), key=lambda kv: (len(kv[0]), sorted(kv[0]))
    ):
        table.add_row(region="only " + " & ".join(sorted(region)), captured=count)
    table.add_row(region="uncaptured", captured=venn.uncaptured)
    return table, venn
