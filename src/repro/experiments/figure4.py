"""Figure 4 — fatal events per day: temporal correlation among failures.

The paper plots daily failure counts for both systems and observes that a
significant number of failures happen in close proximity (bursts).  The
driver reports the daily series plus summary statistics quantifying
burstiness (index of dispersion ≫ 1 and the share of failures arriving
within the prediction window of the previous failure).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import DEFAULT_SEED, make_log
from repro.utils.tables import TableResult


def run(
    system: str = "SDSC",
    scale: float = 1.0,
    weeks: int | None = None,
    seed: int = DEFAULT_SEED,
    burst_window: float = 300.0,
) -> tuple[TableResult, np.ndarray]:
    """Daily fatal-event counts and burstiness summary for one system."""
    syn = make_log(system, scale=scale, weeks=weeks, seed=seed)
    fatal = syn.clean.fatal(syn.catalog)
    daily = fatal.daily_counts()
    gaps = fatal.interarrivals()

    mean = float(daily.mean()) if len(daily) else 0.0
    var = float(daily.var()) if len(daily) else 0.0
    dispersion = var / mean if mean > 0 else 0.0
    close = float((gaps <= burst_window).mean()) if len(gaps) else 0.0

    table = TableResult(
        title=f"Figure 4: fatal events per day ({system})",
        columns=["statistic", "value"],
        meta={"system": system, "scale": scale, "seed": seed},
    )
    table.add_row(statistic="days", value=len(daily))
    table.add_row(statistic="total_fatal", value=int(daily.sum()))
    table.add_row(statistic="mean_per_day", value=round(mean, 3))
    table.add_row(statistic="max_per_day", value=int(daily.max()) if len(daily) else 0)
    table.add_row(statistic="index_of_dispersion", value=round(dispersion, 2))
    table.add_row(
        statistic=f"frac_gaps_<={int(burst_window)}s", value=round(close, 3)
    )
    table.add_row(
        statistic="frac_days_zero",
        value=round(float((daily == 0).mean()), 3) if len(daily) else 0.0,
    )
    return table, daily
