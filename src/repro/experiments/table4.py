"""Table 4 — number of events surviving filtering at each threshold.

The paper sweeps coalescence thresholds 0/10/60/120/200/300/400 s over
both raw logs, reports per-facility survivor counts, and picks 300 s
(≥ 98 % compression, with diminishing returns beyond).  This driver runs
the same sweep over a synthetic raw log (categorized first, as in the
preprocessing pipeline, so event identity is threshold-independent).
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_SEED, make_log
from repro.preprocess.categorizer import Categorizer
from repro.preprocess.threshold import TABLE4_THRESHOLDS, SweepResult, threshold_sweep
from repro.utils.tables import TableResult


def run(
    system: str = "SDSC",
    scale: float = 0.02,
    seed: int = DEFAULT_SEED,
    thresholds: tuple[float, ...] = TABLE4_THRESHOLDS,
) -> tuple[TableResult, SweepResult]:
    """Regenerate the Table 4 sweep for one system."""
    syn = make_log(system, scale=scale, seed=seed, duplicates=True)
    raw = syn.raw
    assert raw is not None
    categorized = Categorizer(syn.catalog).categorize(raw)
    sweep = threshold_sweep(categorized, thresholds)
    table = sweep.as_table(
        title=f"Table 4: events per filtering threshold ({system})"
    )
    table.meta.update(
        {
            "system": system,
            "scale": scale,
            "seed": seed,
            "compression_at_300s": round(
                sweep.compression_rates()[list(thresholds).index(300.0)], 4
            )
            if 300.0 in thresholds
            else None,
        }
    )
    return table, sweep
