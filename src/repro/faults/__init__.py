"""Deterministic fault injection for chaos testing.

The resilience contracts of the online session — degraded-mode
retraining, serial fallback on broken pools, late-event quarantine — are
only trustworthy if they are exercised, so this package provides a
seedable :class:`FaultPlan` describing *when* the infrastructure should
misbehave, plus pure helpers that corrupt log lines and jitter
timestamps the way real collectors do.

A plan is activated with :func:`install` (a context manager); hook
points in :meth:`repro.core.meta.MetaLearner.train` and the pooled
executors consult the active plan and raise on a match::

    plan = FaultPlan(learner_crashes=[LearnerCrash(week=28, attempts=1)])
    with faults.install(plan):
        for event in log:
            session.ingest(event)   # week-28 retrain crashes once

Plans are deterministic: the same plan over the same stream injects the
same faults, so chaos tests replay exactly.  No plan is ever active
unless a test installs one — the hooks are a single ``is None`` check in
production.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.faults.corrupt import corrupt_lines, jitter_timestamps


class FaultInjected(RuntimeError):
    """An artificial failure raised by an installed :class:`FaultPlan`."""


@dataclass(frozen=True, slots=True)
class LearnerCrash:
    """Crash meta-training at ``week`` for its first ``attempts`` tries.

    ``attempts=1`` models a transient bug (the retry succeeds);
    ``attempts=10**9`` models a persistent one.  ``learner`` names the
    culprit in the raised message (provenance only — the crash surfaces
    from :meth:`MetaLearner.train` either way, exactly like a real
    learner exception propagating out of the executor).
    """

    week: int
    attempts: int = 1
    learner: str | None = None


@dataclass(frozen=True, slots=True)
class PoolBreak:
    """Break the pooled executor's next ``times`` map calls."""

    times: int = 1


@dataclass(frozen=True, slots=True)
class JournalFault:
    """Fault the write-ahead journal append of global record ``record``.

    ``mode="torn"`` writes only the first ``keep_bytes`` bytes of the
    framed record and then kills the journal (the append raises
    :class:`FaultInjected`), modelling a power loss mid-write — recovery
    must truncate the torn tail.  ``mode="bitflip"`` XORs ``flip_mask``
    into payload byte ``flip_byte`` and lets the append succeed,
    modelling bit rot — recovery must refuse to replay past it.
    """

    record: int
    mode: str = "torn"
    keep_bytes: int = 4
    flip_byte: int = 0
    flip_mask: int = 0x01

    def __post_init__(self) -> None:
        if self.mode not in ("torn", "bitflip"):
            raise ValueError(f"unknown journal fault mode {self.mode!r}")


@dataclass(frozen=True, slots=True)
class ShardKill:
    """Kill one fleet shard when its ``at_count``-th event is routed to it.

    The hook fires in :meth:`repro.service.PredictionService.ingest`
    *before* the event reaches the shard's session stack, so the killed
    event was never journaled — exactly the semantics of a process dying
    between receiving an input and accepting it: the event was never
    durable and its source must re-deliver it.  The service marks the
    shard down (its journal is closed, later events for it raise
    ``ShardDown``) while every other shard keeps serving.
    """

    shard: str
    at_count: int = 1

    def __post_init__(self) -> None:
        if self.at_count < 1:
            raise ValueError(
                f"at_count must be a positive ordinal, got {self.at_count}"
            )


@dataclass(frozen=True, slots=True)
class WorkerKill:
    """SIGKILL a live shard **worker process** when its ``at_count``-th
    event is routed to it.

    Unlike :class:`ShardKill` — which raises in the service's routing
    path, modelling a crash *while accepting* the event — a WorkerKill
    kills the worker out from under the service: under the subprocess
    backend the worker process is sent a real ``SIGKILL``, and the
    service only finds out when delivering the event fails (the command
    pipe goes dead), surfacing as ``ShardDown``.  This exercises the
    crash-*detection* machinery end to end, not just the mark-down
    bookkeeping.  Under the inproc backend there is no process to kill;
    the handle is flagged dead and the next delivery fails the same way.
    Either way the killed event was never durable and must be
    re-delivered after ``restore_shard``.
    """

    shard: str
    at_count: int = 1

    def __post_init__(self) -> None:
        if self.at_count < 1:
            raise ValueError(
                f"at_count must be a positive ordinal, got {self.at_count}"
            )


@dataclass(frozen=True, slots=True)
class ReshardCrash:
    """Kill the process at a named live-resharding handoff step.

    The hook fires in :mod:`repro.service.resharding` *after* the named
    step's on-disk effects are durable and before the next step begins,
    so it models a process dying between handoff steps.  Steps, in
    order: ``"begin"`` (migration record in the manifest), ``"seal"``
    (source journals closed), ``"build"`` (target shards built and
    checkpointed), ``"commit"`` (manifest atomically switched to the new
    topology), ``"cleanup"`` (retired source directories removed).
    Every intermediate state must be recoverable by
    ``PredictionService.recover``, which rolls an in-flight migration
    forward; the ``injected`` guard keeps the re-run from crashing at
    the same step again.
    """

    step: str

    _STEPS = ("begin", "seal", "build", "commit", "cleanup")

    def __post_init__(self) -> None:
        if self.step not in self._STEPS:
            raise ValueError(
                f"unknown reshard step {self.step!r} "
                f"(expected one of {', '.join(self._STEPS)})"
            )


@dataclass(frozen=True, slots=True)
class ConnectionDrop:
    """Abruptly drop serving connection ``conn`` at its ``at_frame``-th frame.

    The hook fires in the server's read loop after the frame is counted
    but before it is dispatched, and the server aborts the transport
    (RST, no ``bye`` frame) — modelling a collector agent dying
    mid-conversation.  The dropped frame and everything the client had
    pipelined behind it were never accepted, so the client's
    unacknowledged tail covers exactly what must be re-sent.  ``conn``
    is the server's accept-order connection ordinal (0-based).
    """

    conn: int
    at_frame: int = 1

    def __post_init__(self) -> None:
        if self.at_frame < 1:
            raise ValueError(
                f"at_frame must be a positive ordinal, got {self.at_frame}"
            )


@dataclass
class FaultPlan:
    """A deterministic schedule of infrastructure misbehaviour.

    The plan tracks its own attempt counters, so "crash the first K
    attempts at week W" needs no cooperation from the code under test.
    Counters make a plan stateful: build a fresh one per scenario.
    """

    learner_crashes: list[LearnerCrash] = field(default_factory=list)
    pool_breaks: list[PoolBreak] = field(default_factory=list)
    journal_faults: list[JournalFault] = field(default_factory=list)
    shard_kills: list[ShardKill] = field(default_factory=list)
    worker_kills: list[WorkerKill] = field(default_factory=list)
    connection_drops: list[ConnectionDrop] = field(default_factory=list)
    reshard_crashes: list[ReshardCrash] = field(default_factory=list)

    #: retrain attempts observed so far, per week
    train_attempts: dict[int, int] = field(default_factory=dict)
    #: executor map calls broken so far
    pool_breaks_done: int = 0
    #: faults actually raised, for test assertions
    injected: list[str] = field(default_factory=list)

    def on_train(self, week: int) -> None:
        """Hook: called by ``MetaLearner.train`` before mapping learners."""
        attempt = self.train_attempts.get(week, 0) + 1
        self.train_attempts[week] = attempt
        for crash in self.learner_crashes:
            if crash.week == week and attempt <= crash.attempts:
                who = crash.learner or "learner"
                record = f"train:{week}:{attempt}"
                self.injected.append(record)
                raise FaultInjected(
                    f"injected {who} crash at week {week} (attempt {attempt})"
                )

    def on_executor_map(self, executor: object) -> None:
        """Hook: called by pooled executors before mapping tasks.

        Raises ``BrokenProcessPool`` — the *real* exception type a dead
        worker produces — so the executor's catch-and-retype path and the
        meta-learner's serial fallback are exercised end to end.
        """
        budget = sum(b.times for b in self.pool_breaks)
        if self.pool_breaks_done < budget:
            self.pool_breaks_done += 1
            self.injected.append(f"pool:{self.pool_breaks_done}")
            from concurrent.futures.process import BrokenProcessPool

            raise BrokenProcessPool(
                f"injected pool break #{self.pool_breaks_done} "
                f"on {type(executor).__name__}"
            )

    def on_shard_event(self, shard: str, count: int) -> None:
        """Hook: called by ``PredictionService.ingest`` before delegating.

        ``count`` is the ordinal of this event among those routed to
        ``shard`` in this process.  A matching :class:`ShardKill` fires
        exactly once (re-delivery after recovery sees a higher ordinal
        and the ``injected`` guard, so the shard is not re-killed).
        """
        for kill in self.shard_kills:
            record = f"shard:{shard}:{kill.at_count}"
            if (
                kill.shard != shard
                or count != kill.at_count
                or record in self.injected
            ):
                continue
            self.injected.append(record)
            raise FaultInjected(
                f"injected shard kill on {shard!r} at routed event {count}"
            )

    def take_worker_kill(self, shard: str, count: int) -> bool:
        """Hook: called by the service after :meth:`on_shard_event`.

        Returns True exactly once per matching :class:`WorkerKill` —
        the service then hard-kills the shard's worker and lets the
        doomed delivery trip crash detection.  Re-delivery after
        recovery sees a higher ordinal and the ``injected`` guard.
        """
        for kill in self.worker_kills:
            record = f"worker:{shard}:{kill.at_count}"
            if (
                kill.shard != shard
                or count != kill.at_count
                or record in self.injected
            ):
                continue
            self.injected.append(record)
            return True
        return False

    def worker_plan(self) -> "FaultPlan | None":
        """The session-level slice of this plan, for a shard worker.

        Under the subprocess backend the shard's session stack runs in
        another process, so faults that fire *inside* the stack —
        learner crashes, pool breaks, journal faults — must be installed
        there.  Service-level faults (shard/worker kills, reshard
        crashes, connection drops) keep firing in the parent, which owns
        routing.  Returns None when there is nothing to ship.  The
        worker's ``injected`` records are piggybacked on command replies
        and appended to the parent plan, so test assertions see them.
        """
        if not (
            self.learner_crashes or self.pool_breaks or self.journal_faults
        ):
            return None
        return FaultPlan(
            learner_crashes=list(self.learner_crashes),
            pool_breaks=list(self.pool_breaks),
            journal_faults=list(self.journal_faults),
        )

    def on_reshard_step(self, step: str) -> None:
        """Hook: called by the resharding engine after each handoff step.

        A matching :class:`ReshardCrash` fires exactly once — the
        recovery that rolls the migration forward re-walks the same
        steps, and the ``injected`` guard lets it pass the second time.
        """
        for crash in self.reshard_crashes:
            record = f"reshard:{crash.step}"
            if crash.step != step or record in self.injected:
                continue
            self.injected.append(record)
            raise FaultInjected(
                f"injected process kill after reshard step {step!r}"
            )

    def on_net_frame(self, conn: int, count: int) -> None:
        """Hook: called by the serving read loop per received frame.

        ``count`` is the 1-based ordinal of this frame on connection
        ``conn``.  A matching :class:`ConnectionDrop` fires exactly once;
        the server aborts that connection and keeps serving the rest.
        """
        for drop in self.connection_drops:
            record = f"net:{drop.conn}:{drop.at_frame}"
            if (
                drop.conn != conn
                or count != drop.at_frame
                or record in self.injected
            ):
                continue
            self.injected.append(record)
            raise FaultInjected(
                f"injected connection drop on conn {conn} at frame {count}"
            )

    def on_journal_append(
        self, index: int, framed: bytes
    ) -> tuple[bytes, str | None]:
        """Hook: called by ``EventJournal.append`` with the framed record.

        Returns ``(bytes_to_write, kill_message)``.  A non-None kill
        message tells the journal to write the (partial) bytes, close
        itself and raise :class:`FaultInjected` — the torn-write crash.
        A bit flip mutates the bytes and lets the append succeed.
        """
        for fault in self.journal_faults:
            record = f"journal:{fault.mode}:{index}"
            if fault.record != index or record in self.injected:
                continue
            self.injected.append(record)
            if fault.mode == "bitflip":
                mutated = bytearray(framed)
                # Skip the 8-byte length+CRC header: rot the payload so
                # the stored CRC no longer matches.
                mutated[8 + fault.flip_byte] ^= fault.flip_mask
                return bytes(mutated), None
            return framed[: fault.keep_bytes], (
                f"injected torn write on journal record {index} "
                f"(kept {fault.keep_bytes} of {len(framed)} bytes)"
            )
        return framed, None


_lock = threading.Lock()
_active: FaultPlan | None = None


def active() -> FaultPlan | None:
    """The currently installed plan, or None (the production state)."""
    return _active


@contextmanager
def install(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the duration of a ``with`` block."""
    global _active
    with _lock:
        if _active is not None:
            raise RuntimeError("a fault plan is already installed")
        _active = plan
    try:
        yield plan
    finally:
        with _lock:
            _active = None


def reset(plan: FaultPlan | None = None) -> None:
    """Unconditionally (re)set the active plan — worker processes only.

    A forked shard worker inherits the parent's installed plan; the
    worker entry point calls this to drop it (or replace it with the
    :meth:`FaultPlan.worker_plan` slice shipped in its spec) so parent-
    side faults never double-fire inside the worker.
    """
    global _active
    with _lock:
        _active = plan


__all__ = [
    "ConnectionDrop",
    "FaultInjected",
    "FaultPlan",
    "JournalFault",
    "LearnerCrash",
    "PoolBreak",
    "ReshardCrash",
    "ShardKill",
    "WorkerKill",
    "active",
    "corrupt_lines",
    "install",
    "jitter_timestamps",
    "reset",
]
