"""Seedable trace corruption: garbled lines and clock jitter.

Models the two dominant defects of real RAS collectors — log lines
truncated or overwritten mid-write, and per-node clock skew delivering
events out of order.  Both helpers are pure functions of their seed, so
a chaos test replays identically.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.raslog.events import RASEvent

#: Replacement payloads for corrupted lines, in the styles seen in real
#: dumps: binary noise, truncation, and field-boundary mangling.
_GARBAGE = (
    "\x00\x7f\x00 binary splice",
    "truncated line with",
    "- notanepoch 2005.06.03 R00 whatever",
    "",
)


def corrupt_lines(
    lines: Iterable[str], fraction: float, seed: int = 0
) -> list[str]:
    """Replace ``fraction`` of lines with deterministic garbage."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must lie in [0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    out: list[str] = []
    for line in lines:
        if rng.random() < fraction:
            out.append(_GARBAGE[int(rng.integers(len(_GARBAGE)))])
        else:
            out.append(line)
    return out


def jitter_timestamps(
    events: Sequence[RASEvent],
    fraction: float,
    max_jitter: float,
    seed: int = 0,
) -> list[RASEvent]:
    """Shift ``fraction`` of events backwards by up to ``max_jitter`` s.

    The list keeps its original (arrival) sequence; only the stamps move.
    This reproduces a collector that forwards promptly but stamps with a
    skewed clock, so events now arrive out of timestamp order by up to
    ``max_jitter`` seconds.  Timestamps are clamped at 0 to stay valid.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must lie in [0, 1], got {fraction}")
    if max_jitter < 0:
        raise ValueError(f"max_jitter must be >= 0, got {max_jitter}")
    rng = np.random.default_rng(seed)
    out: list[RASEvent] = []
    for event in events:
        if rng.random() < fraction:
            shift = float(rng.uniform(0.0, max_jitter))
            out.append(event.with_timestamp(max(0.0, event.timestamp - shift)))
        else:
            out.append(event)
    return out
