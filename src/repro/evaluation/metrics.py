"""Prediction-accuracy metrics (Section 5.1)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class PrecisionRecall:
    """A (precision, recall) pair with its confusion counts."""

    tp: int
    fp: int
    fn: int

    def __post_init__(self) -> None:
        if min(self.tp, self.fp, self.fn) < 0:
            raise ValueError("confusion counts must be non-negative")

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def __add__(self, other: "PrecisionRecall") -> "PrecisionRecall":
        return PrecisionRecall(
            tp=self.tp + other.tp, fp=self.fp + other.fp, fn=self.fn + other.fn
        )


def combine(parts: list[PrecisionRecall]) -> PrecisionRecall:
    """Micro-average: pool the confusion counts."""
    total = PrecisionRecall(0, 0, 0)
    for p in parts:
        total = total + p
    return total
