"""Per-learner and cross-run accuracy reporting.

The paper's analysis repeatedly slices accuracy by base learner (Figures
7 and 8) and compares configurations side by side (Figures 9–11).  This
module turns warning streams and run results into those breakdowns as
:class:`~repro.utils.tables.TableResult` objects.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.alerts import FailureWarning
from repro.evaluation.matching import match_warnings
from repro.evaluation.timeline import mean_accuracy
from repro.utils.tables import TableResult


def learner_breakdown(
    warnings: Sequence[FailureWarning],
    fatal_times: np.ndarray,
    fatal_codes: Sequence[str] | None = None,
    title: str = "Per-learner accuracy",
) -> TableResult:
    """Accuracy of each expert's warnings, matched independently.

    Precision follows the paper (matched warnings over warnings); the
    coverage column is the fraction of all failures the expert's warnings
    anticipated — the quantity behind the Figure 8 Venn shares.
    """
    times = np.asarray(fatal_times, dtype=np.float64)
    by_learner: dict[str, list[FailureWarning]] = {}
    for w in warnings:
        by_learner.setdefault(w.learner, []).append(w)

    table = TableResult(
        title=title,
        columns=["learner", "warnings", "precision", "coverage"],
        meta={"n_fatal": len(times)},
    )
    for learner in sorted(by_learner):
        result = match_warnings(by_learner[learner], times, fatal_codes)
        coverage = (
            result.covered_failures / len(times) if len(times) else 0.0
        )
        table.add_row(
            learner=learner,
            warnings=len(by_learner[learner]),
            precision=round(result.precision, 3),
            coverage=round(coverage, 3),
        )
    total = match_warnings(list(warnings), times, fatal_codes)
    table.add_row(
        learner="ALL",
        warnings=len(warnings),
        precision=round(total.precision, 3),
        coverage=round(
            total.covered_failures / len(times) if len(times) else 0.0, 3
        ),
    )
    return table


def compare_runs(
    results: dict[str, "object"],
    title: str = "Run comparison",
    late_fraction: float = 0.5,
) -> TableResult:
    """Side-by-side overall and late-period accuracy of several runs.

    ``results`` maps a label to a
    :class:`~repro.core.framework.RunResult`-like object with a ``weekly``
    attribute.  The late-period columns expose decay: a configuration that
    only looks good early (the static policy) separates from one that
    holds up.
    """
    if not results:
        raise ValueError("need at least one run to compare")
    if not 0.0 < late_fraction < 1.0:
        raise ValueError("late_fraction must lie in (0, 1)")
    table = TableResult(
        title=title,
        columns=[
            "run",
            "precision",
            "recall",
            "late_precision",
            "late_recall",
            "warnings",
        ],
    )
    for label, result in results.items():
        weekly = result.weekly
        p, r = mean_accuracy(weekly)
        cut = int(len(weekly) * (1.0 - late_fraction))
        lp, lr = mean_accuracy(weekly[cut:])
        table.add_row(
            run=label,
            precision=round(p, 3),
            recall=round(r, 3),
            late_precision=round(lp, 3),
            late_recall=round(lr, 3),
            warnings=sum(w.n_warnings for w in weekly),
        )
    return table
