"""Operation-overhead measurement (Table 5).

Times the two halves of the paper's cost model separately: *rule
generation* (per base learner, plus ensemble & revise) and *rule matching*
(the event-driven predictor replaying a stream).  The paper's Observation
#8: matching is trivial (dozens of seconds on 2008 hardware) while
generation grows with the training-set size — and can run in parallel
with production operation, so it is not part of the online overhead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.learners.base import BaseLearner
from repro.raslog.catalog import EventCatalog, default_catalog
from repro.raslog.store import EventLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


@dataclass
class OverheadRecord:
    """Wall-clock seconds for one training-size point of Table 5."""

    training_weeks: int
    n_training_events: int
    #: learner name -> rule-generation seconds
    generation: dict[str, float] = field(default_factory=dict)
    ensemble_and_revise: float = 0.0
    rule_matching: float = 0.0
    n_rules: int = 0
    n_matched_events: int = 0

    @property
    def total_generation(self) -> float:
        return sum(self.generation.values()) + self.ensemble_and_revise


def measure_overhead(
    learners: list[BaseLearner],
    training_log: EventLog,
    matching_log: EventLog,
    window: float,
    training_weeks: int,
    catalog: EventCatalog | None = None,
    min_roc: float = 0.7,
    tick: float | None = 60.0,
) -> OverheadRecord:
    """Time generation on ``training_log`` and matching on ``matching_log``."""
    # Imported here to keep the evaluation package importable from within
    # repro.core (the reviser consumes repro.evaluation.matching).
    from repro.core.knowledge import RuleRecord  # noqa: PLC0415
    from repro.core.predictor import Predictor  # noqa: PLC0415
    from repro.core.reviser import Reviser  # noqa: PLC0415

    catalog = catalog or default_catalog()
    record = OverheadRecord(
        training_weeks=training_weeks, n_training_events=len(training_log)
    )

    rules_by_learner: dict[str, list] = {}
    for learner in learners:
        t0 = time.perf_counter()
        rules_by_learner[learner.name] = learner.train(training_log, window)
        record.generation[learner.name] = time.perf_counter() - t0

    records: list[RuleRecord] = []
    seen = set()
    for name, rules in rules_by_learner.items():
        for rule in rules:
            if rule.key not in seen:
                seen.add(rule.key)
                records.append(
                    RuleRecord(rule=rule, learner=name, trained_at_week=0)
                )

    t0 = time.perf_counter()
    reviser = Reviser(min_roc=min_roc, catalog=catalog, tick=tick)
    revision = reviser.revise(records, training_log, window)
    record.ensemble_and_revise = time.perf_counter() - t0
    record.n_rules = len(revision.kept)

    predictor = Predictor(
        [r.rule for r in revision.kept],
        window=window,
        catalog=catalog,
    )  # default horizon cap; overhead depends only on rule volume
    if len(matching_log):
        predictor.state.clock = float(matching_log.timestamps[0])
    t0 = time.perf_counter()
    predictor.replay(matching_log, tick=tick)
    record.rule_matching = time.perf_counter() - t0
    record.n_matched_events = len(matching_log)
    return record
