"""Alignment of warnings with actual failures.

Implements the accounting behind the paper's metrics (Section 5.1):

* a warning is a **true positive** when a fatal event occurs within its
  prediction window ``(t, t + Wp]`` (and, for type-specific rules, the
  fatal event has the predicted type);
* a fatal event is **covered** (counted toward recall) when at least one
  warning was raised within ``Wp`` before it;
* uncovered fatal events are **false negatives**, unmatched warnings are
  **false positives**.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.alerts import FailureWarning
from repro.learners.rules import ANY_FAILURE
from repro.raslog.catalog import EventCatalog
from repro.raslog.store import EventLog


@dataclass
class MatchResult:
    """Outcome of matching a batch of warnings against the failure record."""

    n_warnings: int
    n_fatal: int
    #: per-warning hit flags, aligned with the input order
    matched: np.ndarray
    #: per-fatal coverage flags, aligned with ``fatal_times``
    covered: np.ndarray
    fatal_times: np.ndarray

    @property
    def true_positives(self) -> int:
        return int(self.matched.sum())

    @property
    def false_positives(self) -> int:
        return self.n_warnings - self.true_positives

    @property
    def covered_failures(self) -> int:
        return int(self.covered.sum())

    @property
    def false_negatives(self) -> int:
        return self.n_fatal - self.covered_failures

    @property
    def precision(self) -> float:
        """Correct predictions over all predictions made."""
        if self.n_warnings == 0:
            return 0.0
        return self.true_positives / self.n_warnings

    @property
    def recall(self) -> float:
        """Covered failures over all failures."""
        if self.n_fatal == 0:
            return 0.0
        return self.covered_failures / self.n_fatal


def extract_failures(
    log: EventLog, catalog: EventCatalog
) -> tuple[np.ndarray, list[str]]:
    """(times, codes) of the catalog-fatal events of a categorized log."""
    fatal = log.fatal(catalog)
    return fatal.timestamps, [e.entry_data for e in fatal]


def match_warnings(
    warnings: Sequence[FailureWarning],
    fatal_times: np.ndarray,
    fatal_codes: Sequence[str] | None = None,
) -> MatchResult:
    """Match warnings against the (sorted) fatal-event record.

    ``fatal_codes`` enables type-aware matching for warnings that predict
    a specific fatal type; when omitted, any failure inside the window
    satisfies any warning.
    """
    times = np.asarray(fatal_times, dtype=np.float64)
    if len(times) > 1 and np.any(np.diff(times) < 0):
        raise ValueError("fatal_times must be sorted ascending")
    if fatal_codes is not None and len(fatal_codes) != len(times):
        raise ValueError(
            f"fatal_codes length {len(fatal_codes)} != times length {len(times)}"
        )

    matched = np.zeros(len(warnings), dtype=bool)
    covered = np.zeros(len(times), dtype=bool)

    for i, w in enumerate(warnings):
        lo = int(np.searchsorted(times, w.time, side="right"))
        hi = int(np.searchsorted(times, w.deadline, side="right"))
        if hi <= lo:
            continue
        if w.predicted == ANY_FAILURE or fatal_codes is None:
            matched[i] = True
            covered[lo:hi] = True
        else:
            hit = False
            for j in range(lo, hi):
                if fatal_codes[j] == w.predicted:
                    covered[j] = True
                    hit = True
            matched[i] = hit

    return MatchResult(
        n_warnings=len(warnings),
        n_fatal=len(times),
        matched=matched,
        covered=covered,
        fatal_times=times,
    )


@dataclass
class RuleScore:
    """Per-rule confusion counts, the reviser's input (Algorithm 1).

    Following the paper's metric definitions, the precision term counts
    *predictions* (warnings) while the recall term counts *failures*:
    ``tp``/``fp`` are matched/unmatched warnings, ``covered`` is the number
    of target failures the rule anticipated, and ``fn`` the target
    failures it missed (targets are the rule's predicted fatal type, or
    every failure for untyped rules).
    """

    tp: int = 0
    fp: int = 0
    covered: int = 0
    fn: int = 0

    @property
    def m1(self) -> float:
        """Precision term of Algorithm 1: TP / (TP + FP) over warnings."""
        return self.tp / (self.tp + self.fp) if (self.tp + self.fp) else 0.0

    @property
    def m2(self) -> float:
        """Recall term of Algorithm 1: covered / (covered + FN) failures."""
        denom = self.covered + self.fn
        return self.covered / denom if denom else 0.0

    @property
    def roc(self) -> float:
        """``sqrt(m1² + m2²)`` — distance from the ROC-space origin."""
        return float(np.hypot(self.m1, self.m2))


def score_rules(
    warnings: Sequence[FailureWarning],
    fatal_times: np.ndarray,
    fatal_codes: Sequence[str],
) -> dict[tuple, RuleScore]:
    """Split a union-mode warning stream into per-rule confusion counts.

    Warnings are grouped by ``rule_key``; each group is matched
    independently, and a rule's false negatives are the failures *of the
    type it predicts* (all failures, for ``ANY_FAILURE`` rules) that its
    own warnings did not cover.
    """
    by_rule: dict[tuple, list[FailureWarning]] = {}
    for w in warnings:
        by_rule.setdefault(w.rule_key, []).append(w)

    times = np.asarray(fatal_times, dtype=np.float64)
    codes = list(fatal_codes)
    scores: dict[tuple, RuleScore] = {}
    for key, group in by_rule.items():
        result = match_warnings(group, times, codes)
        predicted = group[0].predicted
        if predicted == ANY_FAILURE:
            n_target = len(times)
            covered = result.covered_failures
        else:
            target = np.fromiter(
                (c == predicted for c in codes), dtype=bool, count=len(codes)
            )
            n_target = int(target.sum())
            covered = int((result.covered & target).sum())
        scores[key] = RuleScore(
            tp=result.true_positives,
            fp=result.false_positives,
            covered=covered,
            fn=n_target - covered,
        )
    return scores
