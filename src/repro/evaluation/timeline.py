"""Weekly accuracy series and smoothing (the x-axes of Figures 7–11)."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.evaluation.metrics import PrecisionRecall


@dataclass
class WeeklyMetrics:
    """Prediction accuracy of one test week."""

    week: int
    counts: PrecisionRecall
    n_warnings: int
    n_fatal: int

    @property
    def precision(self) -> float:
        return self.counts.precision

    @property
    def recall(self) -> float:
        return self.counts.recall


def rolling_metrics(
    weekly: Sequence[WeeklyMetrics], span: int = 4
) -> list[WeeklyMetrics]:
    """Micro-averaged trailing window over weekly metrics.

    Failure prediction weeks are noisy (some test weeks contain very few
    failures); the paper's figures effectively show multi-week behaviour,
    so experiments aggregate each point over the trailing ``span`` weeks.
    """
    if span < 1:
        raise ValueError(f"span must be >= 1, got {span}")
    out: list[WeeklyMetrics] = []
    for i, wm in enumerate(weekly):
        window = weekly[max(0, i - span + 1) : i + 1]
        counts = PrecisionRecall(
            tp=sum(w.counts.tp for w in window),
            fp=sum(w.counts.fp for w in window),
            fn=sum(w.counts.fn for w in window),
        )
        out.append(
            WeeklyMetrics(
                week=wm.week,
                counts=counts,
                n_warnings=sum(w.n_warnings for w in window),
                n_fatal=sum(w.n_fatal for w in window),
            )
        )
    return out


def series_arrays(
    weekly: Sequence[WeeklyMetrics],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(weeks, precision, recall) as NumPy arrays."""
    weeks = np.fromiter((w.week for w in weekly), dtype=np.int64, count=len(weekly))
    precision = np.fromiter(
        (w.precision for w in weekly), dtype=np.float64, count=len(weekly)
    )
    recall = np.fromiter(
        (w.recall for w in weekly), dtype=np.float64, count=len(weekly)
    )
    return weeks, precision, recall


def mean_accuracy(weekly: Sequence[WeeklyMetrics]) -> tuple[float, float]:
    """Micro-averaged (precision, recall) over the whole series."""
    total = PrecisionRecall(
        tp=sum(w.counts.tp for w in weekly),
        fp=sum(w.counts.fp for w in weekly),
        fn=sum(w.counts.fn for w in weekly),
    )
    return total.precision, total.recall


def trend_slope(values: Sequence[float]) -> float:
    """Least-squares slope per week — negative means decaying accuracy.

    Used to verify the paper's observation that *static* training decays
    monotonically while dynamic training stays flat.
    """
    y = np.asarray(values, dtype=np.float64)
    if len(y) < 2:
        return 0.0
    x = np.arange(len(y), dtype=np.float64)
    x = x - x.mean()
    denom = float((x * x).sum())
    if denom == 0.0:
        return 0.0
    return float((x * (y - y.mean())).sum() / denom)
