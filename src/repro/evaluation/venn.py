"""Venn-diagram coverage analysis of the base learners (Figure 8).

For a span of test weeks, each base learner runs standalone and the set
of fatal events it captures is recorded; the seven-region Venn counts
show how complementary the learners are (the paper's Observation #1: no
single method captures all failures).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.alerts import FailureWarning
from repro.evaluation.matching import match_warnings


@dataclass
class VennResult:
    """Region counts over named coverage sets."""

    names: tuple[str, ...]
    n_fatal: int
    #: frozenset of learner names -> number of fatals captured by exactly
    #: that set of learners (and no others)
    regions: dict[frozenset, int] = field(default_factory=dict)
    covered_by: dict[str, int] = field(default_factory=dict)

    @property
    def uncaptured(self) -> int:
        return self.n_fatal - sum(self.regions.values())

    @property
    def multi_captured(self) -> int:
        """Fatals captured by more than one learner."""
        return sum(n for s, n in self.regions.items() if len(s) > 1)

    def region(self, *names: str) -> int:
        """Count of fatals captured by exactly this learner combination."""
        return self.regions.get(frozenset(names), 0)

    def coverage_fraction(self, name: str) -> float:
        if self.n_fatal == 0:
            return 0.0
        return self.covered_by.get(name, 0) / self.n_fatal


def venn_coverage(
    warnings_by_learner: dict[str, Sequence[FailureWarning]],
    fatal_times: np.ndarray,
    fatal_codes: Sequence[str],
) -> VennResult:
    """Compute Venn regions from per-learner warning streams."""
    names = tuple(sorted(warnings_by_learner))
    if not names:
        raise ValueError("need at least one learner's warnings")
    covered_sets: dict[str, np.ndarray] = {}
    for name in names:
        result = match_warnings(
            list(warnings_by_learner[name]), fatal_times, fatal_codes
        )
        covered_sets[name] = result.covered

    n_fatal = len(np.asarray(fatal_times))
    venn = VennResult(names=names, n_fatal=n_fatal)
    venn.covered_by = {
        name: int(covered.sum()) for name, covered in covered_sets.items()
    }

    # Exact-region partition: for each fatal event, the set of learners
    # that captured it.
    for subset_size in range(1, len(names) + 1):
        for combo in combinations(names, subset_size):
            inside = np.ones(n_fatal, dtype=bool)
            for name in combo:
                inside &= covered_sets[name]
            for name in names:
                if name not in combo:
                    inside &= ~covered_sets[name]
            count = int(inside.sum())
            if count:
                venn.regions[frozenset(combo)] = count
    return venn
