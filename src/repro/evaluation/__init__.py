"""Evaluation: metrics, warning/failure matching, timelines, Venn
coverage and overhead measurement (Section 5)."""

from repro.evaluation.matching import (
    MatchResult,
    RuleScore,
    extract_failures,
    match_warnings,
    score_rules,
)
from repro.evaluation.metrics import PrecisionRecall, combine
from repro.evaluation.overhead import OverheadRecord, measure_overhead
from repro.evaluation.reporting import compare_runs, learner_breakdown
from repro.evaluation.timeline import (
    mean_accuracy,
    rolling_metrics,
    series_arrays,
    trend_slope,
)
from repro.evaluation.venn import VennResult, venn_coverage

__all__ = [
    "MatchResult",
    "OverheadRecord",
    "PrecisionRecall",
    "RuleScore",
    "VennResult",
    "combine",
    "compare_runs",
    "extract_failures",
    "learner_breakdown",
    "match_warnings",
    "match_warnings",
    "mean_accuracy",
    "measure_overhead",
    "rolling_metrics",
    "score_rules",
    "series_arrays",
    "trend_slope",
    "venn_coverage",
]
