"""repro — dynamic meta-learning for failure prediction in large-scale systems.

A full reproduction of Gu, Zheng, Lan, White, Hocks & Park, *Dynamic
Meta-Learning for Failure Prediction in Large-Scale Systems: A Case
Study* (ICPP 2008), including every substrate the paper depends on:

* :mod:`repro.raslog` — Blue Gene/L RAS event model, the Table 3 event
  catalog, an in-memory event store, a LogHub-format parser, and a
  synthetic workload generator calibrated to the paper's ANL and SDSC
  systems (with pattern drift and the case-study anomalies);
* :mod:`repro.preprocess` — event categorization and temporal/spatial
  filtering (Section 3);
* :mod:`repro.learners` — the three base predictive methods: association
  rules (Apriori from scratch), statistical burst rules, and MLE-fitted
  inter-arrival distributions (Section 4.1);
* :mod:`repro.core` — the meta-learner (mixture of experts), the
  ROC-based reviser (Algorithm 1), the event-driven predictor
  (Algorithm 2), the knowledge repository with churn tracking, and the
  dynamic retraining framework;
* :mod:`repro.evaluation` — precision/recall accounting, weekly
  timelines, Venn coverage and overhead measurement (Section 5);
* :mod:`repro.experiments` — one driver per paper table and figure.

Quickstart::

    from repro import (
        DynamicMetaLearningFramework, FrameworkConfig,
        GeneratorConfig, SDSC_PROFILE, generate_log,
    )

    trace = generate_log(SDSC_PROFILE, GeneratorConfig(weeks=60, seed=1,
                                                       duplicates=False))
    framework = DynamicMetaLearningFramework(FrameworkConfig())
    result = framework.run(trace.clean)
    print(result.overall.precision, result.overall.recall)
"""

from repro import observe
from repro.alerts import FailureWarning
from repro.core import (
    DynamicMetaLearningFramework,
    FrameworkConfig,
    KnowledgeRepository,
    MetaLearner,
    Predictor,
    Reviser,
    RunResult,
    TrainingPolicy,
    dynamic_months,
    dynamic_whole,
    static_initial,
)
from repro.learners import (
    AssociationRuleLearner,
    BaseLearner,
    DistributionLearner,
    StatisticalRuleLearner,
    register_learner,
)
from repro.observe import MetricsRegistry
from repro.preprocess import PreprocessingPipeline
from repro.raslog import (
    ANL_PROFILE,
    SDSC_PROFILE,
    EventCatalog,
    EventLog,
    GeneratorConfig,
    RASEvent,
    SyntheticLog,
    default_catalog,
    generate_log,
    get_profile,
    load_log,
)

__version__ = "1.0.0"

__all__ = [
    "ANL_PROFILE",
    "SDSC_PROFILE",
    "AssociationRuleLearner",
    "BaseLearner",
    "DistributionLearner",
    "DynamicMetaLearningFramework",
    "EventCatalog",
    "EventLog",
    "FailureWarning",
    "FrameworkConfig",
    "GeneratorConfig",
    "KnowledgeRepository",
    "MetaLearner",
    "MetricsRegistry",
    "Predictor",
    "PreprocessingPipeline",
    "RASEvent",
    "Reviser",
    "RunResult",
    "StatisticalRuleLearner",
    "SyntheticLog",
    "TrainingPolicy",
    "__version__",
    "default_catalog",
    "dynamic_months",
    "dynamic_whole",
    "generate_log",
    "get_profile",
    "load_log",
    "observe",
    "register_learner",
    "static_initial",
]
