"""Wire protocol of the serving front-end: newline-delimited JSON frames.

One frame is one JSON object on one line, terminated by ``\\n`` — the
format cluster log shippers (syslog relays, LogMaster-style collector
agents) already speak, so any language with a socket and a JSON encoder
can produce events.  The full frame reference with examples lives in
``docs/protocol.md``; this module is the single source of truth for
frame *shapes* shared by the server and both clients.

Request frames (client -> server), all carrying a client-chosen ``seq``
echoed back on the response::

    {"type": "ingest",    "seq": 7, "event": {...RASEvent.as_dict()...}}
    {"type": "advance",   "seq": 8, "now": 12345.0}
    {"type": "flush",     "seq": 9}
    {"type": "subscribe", "seq": 0}
    {"type": "metrics",   "seq": 1}
    {"type": "health",    "seq": 2}
    {"type": "fleet",     "seq": 3, "action": "status"}
    {"type": "fleet",     "seq": 4, "action": "split", "shard": "...", "parts": 2}
    {"type": "fleet",     "seq": 5, "action": "merge", "shards": [...]}
    {"type": "fleet",     "seq": 6, "action": "restart"}
    {"type": "fleet",     "seq": 7, "action": "release", "shard": "..."}

Response frames (server -> client)::

    {"type": "ack", "seq": 7}                      # ingest: durably accepted
    {"type": "ack", "seq": 8, "warnings": [...]}   # advance/flush/subscribe
    {"type": "overloaded", "seq": 7, "scope": "shard", "detail": "..."}
    {"type": "error", "seq": 7, "code": "bad-event", "error": "..."}
    {"type": "warning", "warning": {...}}          # pushed to subscribers
    {"type": "metrics", "seq": 1, "metrics": {...observe snapshot...}}
    {"type": "health", "seq": 2, "status": "ok", ...}
    {"type": "bye", "reason": "draining"}          # server is shutting down

An ``ack`` for an ``ingest`` frame means the event was *accepted*: it
reached its shard's session (and, with a fleet directory, its
write-ahead journal) as part of a committed micro-batch.  Events whose
frames were answered with ``overloaded``/``error`` — or never answered
at all, because the connection died or the server drained first — were
never accepted and must be re-sent by the producer.  That unacknowledged
tail is exactly what a producer replays after a crash.
"""

from __future__ import annotations

import json
from typing import Any

#: Largest accepted frame, bytes (sans newline).  An event record is a
#: few hundred bytes; anything near this bound is garbage or abuse.
MAX_FRAME_BYTES = 256 * 1024

#: Request frame types the server understands.
REQUEST_TYPES = frozenset(
    {"ingest", "advance", "flush", "subscribe", "metrics", "health", "fleet"}
)

#: Control-plane actions a ``fleet`` frame may carry.
FLEET_ACTIONS = frozenset(
    {"status", "split", "merge", "restart", "release"}
)

# Typed error codes carried by ``error`` responses.
ERR_BAD_FRAME = "bad-frame"  # not JSON / not an object / unknown type
ERR_BAD_REQUEST = "bad-request"  # well-formed frame, invalid fields
ERR_BAD_EVENT = "bad-event"  # event rejected by validation
ERR_FRAME_TOO_LARGE = "frame-too-large"
ERR_SHARD_DOWN = "shard-down"
ERR_DRAINING = "draining"  # server is shutting down; replay elsewhere
ERR_RESHARD = "reshard"  # a fleet split/merge/restart that cannot run
ERR_INTERNAL = "internal"


class ProtocolError(Exception):
    """A frame the server (or a client) refuses, with its typed code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def encode_frame(obj: dict[str, Any]) -> bytes:
    """Serialize one frame: compact JSON plus the line terminator."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> dict[str, Any]:
    """Parse one line into a frame object.

    Raises :class:`ProtocolError` (``bad-frame``) on malformed JSON or a
    non-object payload — garbage input must produce a typed error
    response, never tear down the connection.
    """
    try:
        obj = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(ERR_BAD_FRAME, f"not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            ERR_BAD_FRAME, f"frame must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def parse_request(obj: dict[str, Any]) -> tuple[str, int]:
    """Validate a request frame's envelope; returns ``(type, seq)``.

    Field payloads (``event``, ``now``) are validated by their handlers;
    this checks only what every request must carry.
    """
    kind = obj.get("type")
    if kind not in REQUEST_TYPES:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"unknown frame type {kind!r}; expected one of "
            f"{sorted(REQUEST_TYPES)}",
        )
    seq = obj.get("seq", 0)
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise ProtocolError(
            ERR_BAD_REQUEST, f"seq must be a non-negative integer, got {seq!r}"
        )
    return kind, seq


def event_from_request(obj: dict[str, Any]):
    """Decode the ``event`` payload of an ``ingest`` frame to a RASEvent.

    Raises :class:`ProtocolError` (``bad-event``) on a missing, untyped
    or unconstructible payload, so a producer bug is answered with a
    typed error while the connection keeps serving.
    """
    from repro.raslog.events import RASEvent

    payload = obj.get("event")
    if not isinstance(payload, dict):
        raise ProtocolError(
            ERR_BAD_EVENT, "ingest frame carries no event object"
        )
    try:
        return RASEvent.from_dict(payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(ERR_BAD_EVENT, f"bad event: {exc}") from exc


class FrameBuffer:
    """Incremental newline splitter with an oversized-frame firebreak.

    Feed raw socket chunks in; complete frames come out.  A frame longer
    than ``max_frame_bytes`` is discarded *without buffering it* (the
    partial bytes are dropped as they stream in) and surfaces as a
    ``None`` entry once its terminating newline arrives, so the
    connection survives and the server can answer ``frame-too-large`` in
    the right position of the response stream.  Empty lines are ignored
    (producers may use them as keepalives).
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buf = bytearray()
        self._discarding = False

    def feed(self, data: bytes) -> list[bytes | None]:
        """Append ``data``; returns completed frames (``None`` = oversized)."""
        self._buf += data
        out: list[bytes | None] = []
        while True:
            newline = self._buf.find(b"\n")
            if newline < 0:
                if self._discarding:
                    self._buf.clear()
                elif len(self._buf) > self.max_frame_bytes:
                    self._discarding = True
                    self._buf.clear()
                break
            line = bytes(self._buf[:newline])
            del self._buf[: newline + 1]
            if self._discarding:
                # Tail of a frame whose head was already dropped.
                self._discarding = False
                out.append(None)
            elif len(line) > self.max_frame_bytes:
                out.append(None)
            elif line:
                out.append(line)
        return out

    @property
    def pending_bytes(self) -> int:
        """Bytes of the (incomplete) frame currently buffered."""
        return len(self._buf)


__all__ = [
    "ERR_BAD_EVENT",
    "ERR_BAD_FRAME",
    "ERR_BAD_REQUEST",
    "ERR_DRAINING",
    "ERR_FRAME_TOO_LARGE",
    "ERR_INTERNAL",
    "ERR_RESHARD",
    "ERR_SHARD_DOWN",
    "FLEET_ACTIONS",
    "FrameBuffer",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "REQUEST_TYPES",
    "decode_frame",
    "encode_frame",
    "event_from_request",
    "parse_request",
]
