"""Asyncio serving front-end: micro-batching, backpressure, graceful drain.

:class:`PredictionServer` puts a TCP surface (newline-delimited JSON,
:mod:`repro.net.protocol`) in front of a
:class:`~repro.service.PredictionService`, turning the in-process fleet
into something real log shippers can stream to.  The design splits work
across two threads:

* the **event loop** owns all sockets, parses frames, runs the
  micro-batcher and enforces backpressure — it never touches the
  prediction engine directly;
* a single-worker **engine executor** owns the ``PredictionService``.
  Every service call is submitted to it, so the engine is strictly
  single-threaded (FIFO submission order *is* engine order) and a
  multi-second retraining never stalls accepts, health checks or
  subscriber fan-out.

**Micro-batching.**  ``ingest`` frames are routed to their shard (the
router is pure, so routing is safe on the loop thread) and appended to a
per-shard pending batch.  A batch commits when it reaches
``batch_size`` events or its oldest event has waited ``max_linger``
seconds, whichever is first, through
:meth:`PredictionService.ingest_batch` — one engine round-trip and, with
a fleet directory, one group-commit journal fsync for the whole batch.
Acks are sent only after the commit returns, so an acked event is a
durable event.  A per-shard asyncio lock serializes commits in arrival
order, preserving per-shard event order end to end.

**Backpressure.**  Two bounds, both answered with an explicit
``overloaded`` frame instead of unbounded buffering: a per-connection
cap on unacknowledged ingests (``max_unacked``) and a per-shard cap on
events pending or mid-commit (``max_pending``).  Slow ``subscribe``
consumers get a bounded fan-out queue; when it fills, warnings for that
subscriber are dropped and counted (``net.subscriber_dropped``) — a slow
dashboard must never stall ingest.

**Graceful drain.**  ``request_shutdown()`` (wired to SIGTERM/SIGINT by
``repro serve``) stops accepting connections, answers new ingests with
``error/draining``, commits every pending micro-batch, checkpoints every
shard (when the service has a fleet directory), closes the service and
says ``bye`` to every connection.  Events acked before the drain are on
disk; events never acked were never accepted, and producers re-send them
after ``repro recover`` — the lossless handoff the end-to-end test pins.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro import faults, observe
from repro.core.serialization import warning_to_dict
from repro.net import protocol
from repro.net.protocol import FrameBuffer, ProtocolError
from repro.raslog.events import RASEvent
from repro.service import (
    PredictionService,
    ReshardError,
    ShardDown,
    ShardSupervisor,
)

#: Default micro-batch bounds: flush at this many events...
DEFAULT_BATCH_SIZE = 64
#: ...or once the oldest pending event has waited this long (seconds).
DEFAULT_MAX_LINGER = 0.02
#: Per-shard bound on events pending or mid-commit.
DEFAULT_MAX_PENDING = 1024
#: Per-connection bound on unacknowledged ingest frames.
DEFAULT_MAX_UNACKED = 1024
#: Per-subscriber bound on undelivered warning frames.
DEFAULT_SUBSCRIBER_QUEUE = 256
#: How often the shard supervisor polls, seconds.
DEFAULT_SUPERVISE_INTERVAL = 0.05


class _PendingEvent:
    """One accepted-but-uncommitted ingest: event plus its ack route."""

    __slots__ = ("event", "conn", "seq", "enqueued_at")

    def __init__(
        self, event: RASEvent, conn: "_Connection", seq: int, enqueued_at: float
    ) -> None:
        self.event = event
        self.conn = conn
        self.seq = seq
        self.enqueued_at = enqueued_at


class _Connection:
    """Loop-thread state for one client connection."""

    def __init__(
        self, server: "PredictionServer", conn_id: int,
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
    ) -> None:
        self.server = server
        self.id = conn_id
        self.reader = reader
        self.writer = writer
        self.frames = 0
        self.unacked = 0
        self.closed = False
        self.subscription: asyncio.Queue | None = None
        self._pump: asyncio.Task | None = None
        self._write_lock = asyncio.Lock()

    async def send(self, frame: dict[str, Any]) -> None:
        """Write one frame; a dead peer silently ends delivery."""
        if self.closed:
            return
        try:
            async with self._write_lock:
                self.writer.write(protocol.encode_frame(frame))
                await self.writer.drain()
        except (ConnectionError, RuntimeError):
            self.close()

    def subscribe(self, maxsize: int) -> None:
        if self.subscription is not None:
            return
        self.subscription = asyncio.Queue(maxsize=maxsize)
        self._pump = asyncio.get_running_loop().create_task(self._pump_warnings())
        self.server._subscribers.add(self)
        observe.gauge("net.subscribers").set(len(self.server._subscribers))

    async def _pump_warnings(self) -> None:
        assert self.subscription is not None
        while not self.closed:
            frame = await self.subscription.get()
            if frame is None:  # close sentinel
                break
            await self.send(frame)

    def close(self) -> None:
        """Tear down loop-side state; safe to call more than once."""
        if self.closed:
            return
        self.closed = True
        self.server._subscribers.discard(self)
        observe.gauge("net.subscribers").set(len(self.server._subscribers))
        if self.subscription is not None:
            # Wake the pump so it observes ``closed`` and exits.
            try:
                self.subscription.put_nowait(None)
            except asyncio.QueueFull:
                pass
        if self._pump is not None:
            self._pump.cancel()
        try:
            self.writer.close()
        except RuntimeError:
            pass


class _ShardQueue:
    """Pending micro-batch and commit bookkeeping for one shard key."""

    __slots__ = ("items", "timer", "inflight", "lock")

    def __init__(self) -> None:
        self.items: list[_PendingEvent] = []
        self.timer: asyncio.TimerHandle | None = None
        #: events pending in ``items`` plus events inside a running commit
        self.inflight = 0
        #: serializes commits for this shard, in batch arrival order
        self.lock = asyncio.Lock()


class PredictionServer:
    """Serve a :class:`PredictionService` over TCP (see module docs).

    The server takes ownership of ``service``: :meth:`shutdown` drains,
    checkpoints (when durable) and closes it.
    """

    def __init__(
        self,
        service: PredictionService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        batch_size: int = DEFAULT_BATCH_SIZE,
        max_linger: float = DEFAULT_MAX_LINGER,
        max_pending: int = DEFAULT_MAX_PENDING,
        max_unacked: int = DEFAULT_MAX_UNACKED,
        subscriber_queue: int = DEFAULT_SUBSCRIBER_QUEUE,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        checkpoint_every: int | None = None,
        supervisor: ShardSupervisor | None = None,
        supervise: bool = True,
        supervise_interval: float = DEFAULT_SUPERVISE_INTERVAL,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if max_linger < 0:
            raise ValueError(f"max_linger must be >= 0, got {max_linger}")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if checkpoint_every is not None and service.fleet_dir is None:
            raise ValueError(
                "checkpoint_every needs a service with a fleet directory"
            )
        self.service = service
        self.host = host
        self.port = port
        self.batch_size = batch_size
        self.max_linger = max_linger
        self.max_pending = max_pending
        self.max_unacked = max_unacked
        self.subscriber_queue = subscriber_queue
        self.max_frame_bytes = max_frame_bytes
        self.checkpoint_every = checkpoint_every
        # The control plane: restores crashed shards automatically and
        # quarantines flappers.  Needs a fleet directory (restore_shard
        # recovers from checkpoint + journal); memory-only services run
        # unsupervised.
        if supervisor is None and supervise and service.fleet_dir is not None:
            supervisor = ShardSupervisor(service)
        self.supervisor = supervisor
        self.supervise_interval = supervise_interval
        self._supervise_task: asyncio.Task | None = None

        #: counters reported by :meth:`serve` after the drain
        self.stats: dict[str, int] = {
            "accepted": 0, "shed": 0, "errors": 0, "connections": 0,
        }
        self.draining = False
        self._server: asyncio.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._engine = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-engine"
        )
        self._engine_open = True
        self._shards: dict[str, _ShardQueue] = {}
        self._conns: set[_Connection] = set()
        self._subscribers: set[_Connection] = set()
        self._tasks: set[asyncio.Task] = set()
        self._next_conn_id = 0
        self._since_checkpoint = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; resolves the actual port for port 0."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.supervisor is not None:
            self._supervise_task = self._loop.create_task(
                self._supervise_loop()
            )

    async def serve(
        self,
        ready: Callable[[], None] | None = None,
        install_signal_handlers: bool = False,
    ) -> dict[str, int]:
        """Run until :meth:`request_shutdown`, then drain; returns stats."""
        await self.start()
        if install_signal_handlers:
            import signal

            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, self.request_shutdown)
        if ready is not None:
            ready()
        assert self._shutdown_event is not None
        await self._shutdown_event.wait()
        await self.shutdown()
        return dict(self.stats)

    def request_shutdown(self) -> None:
        """Begin a graceful drain; safe from signal handlers and threads.

        Idempotent even after the loop has exited, so callers may race a
        shutdown that is already complete.
        """
        loop, event = self._loop, self._shutdown_event
        if loop is None or event is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:  # loop closed between the check and the call
            pass

    async def shutdown(self) -> None:
        """Stop accepting, drain batches, checkpoint, close everything."""
        if self.draining:
            return
        self.draining = True
        observe.counter("net.drains").inc()
        if self._supervise_task is not None:
            self._supervise_task.cancel()
            try:
                await self._supervise_task
            except asyncio.CancelledError:
                pass
            self._supervise_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Commit every pending micro-batch (their producers get acks).
        await self._quiesce()
        if self.service.fleet_dir is not None:
            await self._run_engine(self.service.checkpoint)
        await self._run_engine(self.service.close)
        self._engine_open = False
        self._engine.shutdown(wait=True)
        for conn in list(self._conns):
            await conn.send({"type": "bye", "reason": "draining"})
            conn.close()
        self._conns.clear()

    # -- engine ------------------------------------------------------------

    async def _run_engine(self, fn: Callable, *args: Any) -> Any:
        """Run a service call on the single-threaded engine executor."""
        assert self._loop is not None
        return await self._loop.run_in_executor(self._engine, lambda: fn(*args))

    async def _supervise_loop(self) -> None:
        """Poll the shard supervisor on the engine thread until drain.

        Every poll is one engine round-trip, so supervision interleaves
        with micro-batch commits in FIFO order and never races the
        service from a second thread.
        """
        assert self.supervisor is not None
        while not self.draining:
            await asyncio.sleep(self.supervise_interval)
            if self.draining:
                return
            restored = await self._run_engine(self.supervisor.poll)
            for key in restored:
                observe.counter("net.shard_restores", shard=key).inc()

    async def _quiesce(self) -> None:
        """Commit all pending batches and wait for in-flight commits."""
        while True:
            for key in list(self._shards):
                self._flush_shard(key)
            tasks = [t for t in self._tasks if not t.done()]
            if not tasks:
                break
            await asyncio.gather(*tasks, return_exceptions=True)

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(self, self._next_conn_id, reader, writer)
        self._next_conn_id += 1
        self._conns.add(conn)
        self.stats["connections"] += 1
        observe.counter("net.connections").inc()
        try:
            await self._read_loop(conn)
        except ConnectionError:
            pass
        except faults.FaultInjected:
            # Chaos: drop this connection abruptly (RST, no bye frame).
            observe.counter("net.dropped_connections").inc()
            transport = writer.transport
            if transport is not None:
                transport.abort()
        finally:
            self._conns.discard(conn)
            conn.close()

    async def _read_loop(self, conn: _Connection) -> None:
        buffer = FrameBuffer(self.max_frame_bytes)
        while not conn.closed:
            data = await conn.reader.read(65536)
            if not data:
                # EOF: any half-received frame still in the buffer was
                # never complete, so it is dropped unacknowledged — the
                # producer's replay contract covers it.
                break
            for line in buffer.feed(data):
                conn.frames += 1
                observe.counter("net.frames").inc()
                plan = faults.active()
                if plan is not None:
                    plan.on_net_frame(conn.id, conn.frames)
                if line is None:
                    await self._send_error(
                        conn, None, protocol.ERR_FRAME_TOO_LARGE,
                        f"frame exceeds {self.max_frame_bytes} bytes",
                    )
                    continue
                await self._dispatch(conn, line)

    async def _dispatch(self, conn: _Connection, line: bytes) -> None:
        try:
            frame = protocol.decode_frame(line)
            kind, seq = protocol.parse_request(frame)
        except ProtocolError as exc:
            await self._send_error(conn, None, exc.code, str(exc))
            return
        try:
            if kind == "ingest":
                await self._handle_ingest(conn, seq, frame)
            elif kind == "advance":
                await self._handle_advance(conn, seq, frame)
            elif kind == "flush":
                await self._handle_flush(conn, seq)
            elif kind == "subscribe":
                conn.subscribe(self.subscriber_queue)
                await conn.send({"type": "ack", "seq": seq})
            elif kind == "metrics":
                await self._handle_metrics(conn, seq)
            elif kind == "health":
                await self._handle_health(conn, seq)
            elif kind == "fleet":
                await self._handle_fleet(conn, seq, frame)
        except ProtocolError as exc:
            await self._send_error(conn, seq, exc.code, str(exc))

    async def _send_error(
        self, conn: _Connection, seq: int | None, code: str, message: str
    ) -> None:
        self.stats["errors"] += 1
        observe.counter("net.errors", code=code).inc()
        await conn.send(
            {"type": "error", "seq": seq, "code": code, "error": message}
        )

    # -- ingest / micro-batching -------------------------------------------

    async def _handle_ingest(
        self, conn: _Connection, seq: int, frame: dict[str, Any]
    ) -> None:
        if self.draining:
            raise ProtocolError(
                protocol.ERR_DRAINING, "server is draining; re-send after recovery"
            )
        event = protocol.event_from_request(frame)
        key = self.service.router.key(event)
        shard = self._shards.get(key)
        if shard is None:
            shard = self._shards[key] = _ShardQueue()
        if conn.unacked >= self.max_unacked:
            await self._shed(conn, seq, "connection", conn.unacked)
            return
        if shard.inflight >= self.max_pending:
            await self._shed(conn, seq, "shard", shard.inflight, key)
            return
        assert self._loop is not None
        conn.unacked += 1
        shard.inflight += 1
        observe.gauge("net.queue_depth", shard=key).set(shard.inflight)
        shard.items.append(
            _PendingEvent(event, conn, seq, self._loop.time())
        )
        if len(shard.items) >= self.batch_size:
            self._flush_shard(key)
        elif shard.timer is None:
            shard.timer = self._loop.call_later(
                self.max_linger, self._flush_shard, key
            )

    async def _shed(
        self, conn: _Connection, seq: int, scope: str, depth: int,
        key: str | None = None,
    ) -> None:
        self.stats["shed"] += 1
        observe.counter("net.shed", scope=scope).inc()
        frame: dict[str, Any] = {
            "type": "overloaded", "seq": seq, "scope": scope,
            "detail": f"{depth} events already pending",
        }
        if key is not None:
            frame["shard"] = key
        await conn.send(frame)

    def _flush_shard(self, key: str) -> None:
        """Move the shard's pending batch into a commit task."""
        shard = self._shards.get(key)
        if shard is None or not shard.items:
            return
        if shard.timer is not None:
            shard.timer.cancel()
            shard.timer = None
        items, shard.items = shard.items, []
        assert self._loop is not None
        task = self._loop.create_task(self._commit(key, shard, items))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _commit(
        self, key: str, shard: _ShardQueue, items: list[_PendingEvent]
    ) -> None:
        # The per-shard lock is granted in acquisition order, and commit
        # tasks are created in batch arrival order, so shard event order
        # survives concurrent commits.
        async with shard.lock:
            try:
                warnings = await self._run_engine(
                    self.service.ingest_batch, [it.event for it in items]
                )
            except (ValueError, ShardDown, faults.FaultInjected, RuntimeError):
                # The batch was rejected atomically; retry per event so
                # one bad producer frame cannot damn its batchmates.
                warnings = []
                await self._commit_singly(items)
            else:
                await self._acknowledge(items)
            finally:
                shard.inflight -= len(items)
                observe.gauge("net.queue_depth", shard=key).set(shard.inflight)
        observe.counter("net.batches").inc()
        observe.histogram("net.batch_size").observe(float(len(items)))
        if warnings:
            self._publish(warnings)
        await self._maybe_checkpoint(len(items))

    async def _commit_singly(self, items: list[_PendingEvent]) -> None:
        for item in items:
            try:
                warnings = await self._run_engine(
                    self.service.ingest, item.event
                )
            except ValueError as exc:
                await self._send_error(
                    item.conn, item.seq, protocol.ERR_BAD_EVENT, str(exc)
                )
                item.conn.unacked -= 1
            except (ShardDown, faults.FaultInjected) as exc:
                await self._send_error(
                    item.conn, item.seq, protocol.ERR_SHARD_DOWN, str(exc)
                )
                item.conn.unacked -= 1
            except Exception as exc:  # keep serving on engine bugs
                await self._send_error(
                    item.conn, item.seq, protocol.ERR_INTERNAL, str(exc)
                )
                item.conn.unacked -= 1
            else:
                await self._acknowledge([item])
                if warnings:
                    self._publish(warnings)

    async def _acknowledge(self, items: list[_PendingEvent]) -> None:
        assert self._loop is not None
        now = self._loop.time()
        latency = observe.histogram("net.ingest_latency")
        events = observe.counter("net.events")
        for item in items:
            self.stats["accepted"] += 1
            events.inc()
            latency.observe(now - item.enqueued_at)
            item.conn.unacked -= 1
            await item.conn.send({"type": "ack", "seq": item.seq})

    async def _maybe_checkpoint(self, accepted: int) -> None:
        every = self.checkpoint_every
        if every is None:
            return
        self._since_checkpoint += accepted
        if self._since_checkpoint >= every:
            self._since_checkpoint = 0
            await self._run_engine(self.service.checkpoint)

    # -- subscriber fan-out --------------------------------------------------

    def _publish(self, warnings: list) -> None:
        if not self._subscribers:
            return
        frames = [
            {"type": "warning", "warning": warning_to_dict(w)}
            for w in warnings
        ]
        observe.counter("net.warnings_published").inc(len(frames))
        for conn in list(self._subscribers):
            for frame in frames:
                assert conn.subscription is not None
                try:
                    conn.subscription.put_nowait(frame)
                except asyncio.QueueFull:
                    # A slow dashboard loses warnings, never stalls ingest.
                    observe.counter("net.subscriber_dropped").inc()

    # -- control-plane frames ------------------------------------------------

    async def _handle_advance(
        self, conn: _Connection, seq: int, frame: dict[str, Any]
    ) -> None:
        if self.draining:
            raise ProtocolError(protocol.ERR_DRAINING, "server is draining")
        now = frame.get("now")
        if not isinstance(now, (int, float)) or isinstance(now, bool):
            raise ProtocolError(
                protocol.ERR_BAD_REQUEST, "advance frame needs a numeric 'now'"
            )
        # Barrier: everything enqueued before this frame commits first.
        await self._quiesce()
        try:
            warnings = await self._run_engine(self.service.advance, float(now))
        except ValueError as exc:
            raise ProtocolError(protocol.ERR_BAD_REQUEST, str(exc)) from exc
        self._publish(warnings)
        await conn.send(
            {
                "type": "ack", "seq": seq,
                "warnings": [warning_to_dict(w) for w in warnings],
            }
        )

    async def _handle_flush(self, conn: _Connection, seq: int) -> None:
        if self.draining:
            raise ProtocolError(protocol.ERR_DRAINING, "server is draining")
        await self._quiesce()
        warnings = await self._run_engine(self.service.flush)
        self._publish(warnings)
        await conn.send(
            {
                "type": "ack", "seq": seq,
                "warnings": [warning_to_dict(w) for w in warnings],
            }
        )

    async def _handle_metrics(self, conn: _Connection, seq: int) -> None:
        # merged_metrics() folds worker-process series into the parent
        # registry's view; inproc it degrades to a plain snapshot.
        snapshot = await self._run_engine(self.service.merged_metrics)
        await conn.send({"type": "metrics", "seq": seq, "metrics": snapshot})

    def _shard_status(self) -> dict[str, dict[str, Any]]:
        """Per-shard up/down/quarantined view, supervisor-enriched.

        Every entry carries the shard's worker ``pid`` (None inproc) so
        operators can correlate a shard with its OS process."""
        pids = self.service.shard_pids()
        if self.supervisor is not None:
            return {
                key: {
                    "state": health.state,
                    "restarts": health.restarts,
                    "last_restart": health.last_restart,
                    "last_error": health.last_error,
                    "pid": pids.get(key),
                }
                for key, health in self.supervisor.status().items()
            }
        down = self.service.down_shards
        return {
            key: {
                "state": "down" if key in down else "up",
                "restarts": 0,
                "last_restart": None,
                "last_error": None,
                "pid": pids.get(key),
            }
            for key in self.service.shard_keys
        }

    async def _handle_health(self, conn: _Connection, seq: int) -> None:
        pending = sum(s.inflight for s in self._shards.values())
        payload = {
            "type": "health",
            "seq": seq,
            "status": "draining" if self.draining else "ok",
            "backend": self.service.backend.name,
            "shards": len(self.service.shard_keys),
            "down_shards": sorted(self.service.down_shards),
            "shard_status": self._shard_status(),
            "accepted": self.stats["accepted"],
            "pending": pending,
            "subscribers": len(self._subscribers),
            "connections": len(self._conns),
            "retrain_trigger": self.service.config.retrain_trigger,
        }
        if self.service.adaptive:
            payload["drift"] = self.service.drift_status()
        await conn.send(payload)

    async def _handle_fleet(
        self, conn: _Connection, seq: int, frame: dict[str, Any]
    ) -> None:
        """Control plane: fleet status, live resharding, rolling restart.

        Mutating actions run on the engine executor, so they serialize
        with micro-batch commits; a rolling restart issues one engine
        call *per shard*, letting queued batches for other shards commit
        between restarts — the fleet keeps acking throughout.
        """
        action = frame.get("action")
        if action not in protocol.FLEET_ACTIONS:
            raise ProtocolError(
                protocol.ERR_BAD_REQUEST,
                f"unknown fleet action {action!r}; expected one of "
                f"{sorted(protocol.FLEET_ACTIONS)}",
            )
        if action == "status":
            payload = {
                "type": "fleet",
                "seq": seq,
                "epoch": self.service.epoch,
                "migration": self.service.migration,
                "backend": self.service.backend.name,
                "shards": self._shard_status(),
                "retrain_trigger": self.service.config.retrain_trigger,
            }
            if self.service.adaptive:
                payload["drift"] = self.service.drift_status()
            await conn.send(payload)
            return
        if self.draining:
            raise ProtocolError(protocol.ERR_DRAINING, "server is draining")
        try:
            if action == "split":
                shard = frame.get("shard")
                parts = frame.get("parts", 2)
                if not isinstance(shard, str) or not isinstance(parts, int):
                    raise ProtocolError(
                        protocol.ERR_BAD_REQUEST,
                        "fleet split needs a 'shard' string and integer "
                        "'parts'",
                    )
                targets = await self._run_engine(
                    self.service.split_shard, shard, parts
                )
                result: dict[str, Any] = {"targets": targets}
            elif action == "merge":
                shards = frame.get("shards")
                if not isinstance(shards, list) or not all(
                    isinstance(k, str) for k in shards
                ):
                    raise ProtocolError(
                        protocol.ERR_BAD_REQUEST,
                        "fleet merge needs a 'shards' list of shard keys",
                    )
                target = await self._run_engine(
                    self.service.merge_shards,
                    shards,
                    frame.get("target"),
                )
                result = {"target": target}
            elif action == "restart":
                restarted = await self._rolling_restart()
                result = {"restarted": restarted}
            else:  # release
                shard = frame.get("shard")
                if not isinstance(shard, str):
                    raise ProtocolError(
                        protocol.ERR_BAD_REQUEST,
                        "fleet release needs a 'shard' string",
                    )
                if self.supervisor is None:
                    raise ProtocolError(
                        protocol.ERR_RESHARD, "this fleet is unsupervised"
                    )
                await self._run_engine(self.supervisor.release, shard)
                result = {"released": shard}
        except (ReshardError, ValueError, KeyError) as exc:
            raise ProtocolError(protocol.ERR_RESHARD, str(exc)) from exc
        result.update(
            {"type": "fleet", "seq": seq, "epoch": self.service.epoch}
        )
        await conn.send(result)

    async def _rolling_restart(self) -> list[str]:
        """Restart each up shard in its own engine call (traffic
        interleaves between shards)."""
        if self.supervisor is not None:
            plan = await self._run_engine(self.supervisor.restart_plan)
        else:
            down = self.service.down_shards
            plan = [
                k for k in self.service.shard_keys if k not in down
            ]
        restarted: list[str] = []
        for key in plan:
            await self._run_engine(self.service.restart_shard, key)
            restarted.append(key)
            observe.counter("net.rolling_restarts", shard=key).inc()
        return restarted


@contextmanager
def serve_in_thread(
    service: PredictionService, host: str = "127.0.0.1", port: int = 0,
    **kwargs: Any,
) -> Iterator[PredictionServer]:
    """Run a :class:`PredictionServer` on a background thread.

    The in-process harness used by tests and the load benchmark: yields
    the server once it is accepting (``server.port`` is resolved), and
    performs a full graceful drain — pending batches committed, shards
    checkpointed when durable, service closed — on exit.
    """
    server = PredictionServer(service, host=host, port=port, **kwargs)
    ready = threading.Event()
    failures: list[BaseException] = []

    def _run() -> None:
        try:
            asyncio.run(server.serve(ready=ready.set))
        except BaseException as exc:  # surface in the foreground thread
            failures.append(exc)
            ready.set()

    thread = threading.Thread(
        target=_run, name="repro-serve", daemon=True
    )
    thread.start()
    if not ready.wait(timeout=30):
        raise RuntimeError("server failed to start within 30s")
    if failures:
        raise failures[0]
    try:
        yield server
    finally:
        server.request_shutdown()
        thread.join(timeout=60)
        if failures:
            raise failures[0]


__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_MAX_LINGER",
    "DEFAULT_MAX_PENDING",
    "DEFAULT_MAX_UNACKED",
    "DEFAULT_SUBSCRIBER_QUEUE",
    "PredictionServer",
    "serve_in_thread",
]
