"""Network serving front-end for the prediction fleet.

The paper's framework is an online monitor; a deployment receives its
RAS stream from collector agents over the network, not from an
in-process loop.  This package is that surface:

* :mod:`repro.net.protocol` — the newline-delimited JSON wire format
  (``ingest`` / ``advance`` / ``flush`` / ``subscribe`` / ``metrics`` /
  ``health`` frames; see ``docs/protocol.md``);
* :mod:`repro.net.server` — :class:`PredictionServer`, the asyncio TCP
  front-end with per-shard micro-batching, bounded queues with explicit
  shed-load responses, warning fan-out to subscribers, and graceful
  drain-checkpoint-exit (behind ``repro serve``);
* :mod:`repro.net.client` — :class:`PredictionClient` (blocking) and
  :class:`AsyncPredictionClient` (asyncio), both tracking the
  unacknowledged tail a producer must replay after a failover, and both
  retrying transient rejections (``overloaded`` / ``shard-down``) with
  jittered exponential backoff (:class:`RetryPolicy`).
"""

from repro.net.client import (
    AsyncPredictionClient,
    PredictionClient,
    Rejected,
    RetryPolicy,
    ServerClosed,
)
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    FrameBuffer,
    ProtocolError,
    decode_frame,
    encode_frame,
)
from repro.net.server import PredictionServer, serve_in_thread

__all__ = [
    "AsyncPredictionClient",
    "FrameBuffer",
    "MAX_FRAME_BYTES",
    "PredictionClient",
    "PredictionServer",
    "ProtocolError",
    "Rejected",
    "RetryPolicy",
    "ServerClosed",
    "decode_frame",
    "encode_frame",
    "serve_in_thread",
]
