"""Client libraries for the serving front-end.

Two clients over the same ndjson protocol (:mod:`repro.net.protocol`):

* :class:`PredictionClient` — blocking sockets, for producer scripts,
  tests and the load benchmark.  Supports *pipelined* ingest: queue many
  events with :meth:`send_event` (bounded by ``window`` outstanding
  acks) and collect results with :meth:`wait_all`;
* :class:`AsyncPredictionClient` — the same surface on asyncio streams,
  for callers already living on an event loop.

Both track the **unacknowledged tail**: every sent-but-unanswered event
stays in an ordered map until its ack arrives.  If the connection dies —
the server crashed, drained, or dropped it — :attr:`unacked_events`
holds exactly the events the server never accepted, in send order.
Replaying that tail against a recovered server is the client half of the
lossless-handoff contract (the server half is ack-after-commit).

Responses other than ``ack`` surface as :class:`Rejected` entries
(``overloaded`` and typed ``error`` frames both land there), so a
producer can distinguish "re-send later" (overloaded, draining) from
"fix your event" (bad-event).

Transient rejections are retried automatically: ``overloaded`` (load
shedding) and ``shard-down`` (a crashed shard the supervisor is about to
restore) answers trigger a re-send with jittered exponential backoff,
up to :attr:`RetryPolicy.max_attempts` sends per event.  Pass
``retry=None`` to get the raw single-shot behaviour back.  ``draining``
is *not* retried — the server is going away; replay the unacked tail
against its successor instead.
"""

from __future__ import annotations

import asyncio
import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.core.serialization import warning_from_dict
from repro.net import protocol
from repro.net.protocol import FrameBuffer, ProtocolError
from repro.raslog.events import RASEvent

#: Default cap on pipelined, unacknowledged ingest frames.
DEFAULT_WINDOW = 128


class ServerClosed(ConnectionError):
    """The server ended the conversation (EOF or a ``bye`` frame)."""


@dataclass(frozen=True)
class Rejected:
    """One event the server answered with something other than ``ack``."""

    seq: int
    event: RASEvent
    frame: dict[str, Any]

    @property
    def overloaded(self) -> bool:
        """True when the rejection is load shedding — re-send later."""
        return self.frame.get("type") == "overloaded" or self.frame.get(
            "code"
        ) == protocol.ERR_DRAINING

    @property
    def transient(self) -> bool:
        """True when a retry against this same server could succeed:
        load shedding, or a shard crash the supervisor will repair."""
        return (
            self.frame.get("type") == "overloaded"
            or self.frame.get("code") == protocol.ERR_SHARD_DOWN
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for re-sending transiently rejected events.

    The k-th re-send of an event waits ``min(cap, base * 2**(k-1))``
    seconds, shaved by up to ``jitter`` (a fraction) at random so a
    window's worth of rejected events does not re-arrive as one
    synchronized thundering herd.  ``max_attempts`` counts total sends
    per event, the first included; events still rejected after the last
    attempt surface to the caller as usual.
    """

    max_attempts: int = 4
    base: float = 0.05
    cap: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base <= 0 or self.cap <= 0:
            raise ValueError("base and cap must be positive")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Seconds to wait before send number ``attempt + 1``."""
        raw = min(self.cap, self.base * (2 ** (attempt - 1)))
        return raw * (1 - self.jitter * rng.random())


class _ClientCore:
    """Protocol bookkeeping shared by the sync and async clients."""

    def __init__(self) -> None:
        self._seq = 0
        #: seq -> event, in send order: the unacknowledged tail
        self._unacked: dict[int, RASEvent] = {}
        #: events answered with overloaded/error since the last drain
        self.rejected: list[Rejected] = []
        #: warnings pushed by the server (subscription or op acks)
        self.warnings: list[dict[str, Any]] = []
        self.said_bye = False

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    @property
    def unacked_events(self) -> list[RASEvent]:
        """Events sent but never acknowledged, in send order."""
        return list(self._unacked.values())

    @property
    def n_unacked(self) -> int:
        return len(self._unacked)

    def note_response(self, frame: dict[str, Any]) -> dict[str, Any] | None:
        """Account one server frame; returns it unless it was a push."""
        kind = frame.get("type")
        if kind == "warning":
            self.warnings.append(frame["warning"])
            return None
        if kind == "bye":
            self.said_bye = True
            return None
        seq = frame.get("seq")
        if kind == "ack":
            if seq in self._unacked:
                del self._unacked[seq]
            self.warnings.extend(frame.get("warnings", ()))
        elif kind in ("overloaded", "error") and seq in self._unacked:
            self.rejected.append(
                Rejected(seq=seq, event=self._unacked.pop(seq), frame=frame)
            )
        return frame


class PredictionClient:
    """Blocking-socket client; usable as a context manager.

    ``timeout`` bounds every socket operation; a quiet server raises
    ``socket.timeout`` (a ``ConnectionError`` subclass it is not — treat
    timeouts as "still pending", not as rejection).
    """

    def __init__(
        self, host: str, port: int, timeout: float | None = 30.0,
        window: int = DEFAULT_WINDOW,
        retry: RetryPolicy | None = RetryPolicy(),
    ) -> None:
        self.window = window
        self.retry = retry
        self.core = _ClientCore()
        self._buffer = FrameBuffer()
        self._frames: list[dict[str, Any]] = []
        #: seq -> sends so far, for events that have been re-sent
        self._attempts: dict[int, int] = {}
        self._rng = random.Random()
        self._sleep: Callable[[float], None] = time.sleep
        self._sock = socket.create_connection((host, port), timeout=timeout)

    # -- plumbing ----------------------------------------------------------

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "PredictionClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _send(self, frame: dict[str, Any]) -> None:
        self._sock.sendall(protocol.encode_frame(frame))

    def _recv_frame(self) -> dict[str, Any]:
        """Next non-push frame from the server (pushes are stashed)."""
        while True:
            while self._frames:
                frame = self.core.note_response(self._frames.pop(0))
                if frame is not None:
                    return frame
            data = self._sock.recv(65536)
            if not data:
                raise ServerClosed("server closed the connection")
            for line in self._buffer.feed(data):
                if line is None:
                    raise ProtocolError(
                        protocol.ERR_FRAME_TOO_LARGE, "oversized server frame"
                    )
                self._frames.append(protocol.decode_frame(line))

    def _request(self, frame: dict[str, Any]) -> dict[str, Any]:
        """Send one frame and wait for its seq-matched response."""
        seq = frame["seq"]
        self._send(frame)
        while True:
            response = self._recv_frame()
            if response.get("seq") == seq:
                if response.get("type") == "error":
                    raise ProtocolError(
                        response.get("code", protocol.ERR_INTERNAL),
                        response.get("error", "server error"),
                    )
                return response

    # -- unacknowledged-tail accounting --------------------------------------

    @property
    def unacked_events(self) -> list[RASEvent]:
        return self.core.unacked_events

    @property
    def rejected(self) -> list[Rejected]:
        return self.core.rejected

    @property
    def warnings(self) -> list[dict[str, Any]]:
        return self.core.warnings

    # -- ingest ---------------------------------------------------------------

    def send_event(self, event: RASEvent) -> int:
        """Pipeline one ingest frame; returns its seq without waiting.

        Blocks (reading responses) only when ``window`` acks are already
        outstanding, so producer memory and server queues stay bounded.
        """
        while self.core.n_unacked >= self.window:
            self._pump_one()
        seq = self.core.next_seq()
        self.core._unacked[seq] = event
        self._send({"type": "ingest", "seq": seq, "event": event.as_dict()})
        return seq

    def _pump_one(self) -> None:
        before = self.core.n_unacked
        while self.core.n_unacked == before:
            self._recv_frame()

    def wait_all(self) -> list[Rejected]:
        """Read responses until no ingest is outstanding.

        Transient rejections (:attr:`Rejected.transient`) are re-sent
        with the client's :class:`RetryPolicy` backoff until they ack or
        run out of attempts.  Returns (and clears) the rejections that
        survived; everything else was acked.  On a dead connection the
        remaining :attr:`unacked_events` plus :attr:`rejected` are the
        replay tail — rejections classified but not yet returned go back
        on the ledger, so no event silently disappears.
        """
        final: list[Rejected] = []
        pending: list[tuple[Rejected, int]] = []
        try:
            while True:
                while self.core.n_unacked:
                    self._recv_frame()
                rejected, self.core.rejected = self.core.rejected, []
                for rej in rejected:
                    attempts = self._attempts.pop(rej.seq, 1)
                    if (
                        self.retry is not None
                        and rej.transient
                        and attempts < self.retry.max_attempts
                    ):
                        pending.append((rej, attempts))
                    else:
                        final.append(rej)
                # Everything left in the ledger was acked this drain.
                self._attempts.clear()
                if not pending:
                    return final
                self._sleep(
                    max(self.retry.delay(a, self._rng) for _, a in pending)
                )
                while pending:
                    rej, attempts = pending[0]
                    seq = self.send_event(rej.event)
                    pending.pop(0)
                    self._attempts[seq] = attempts + 1
        except BaseException:
            # A resent event may already sit in the unacked ledger (the
            # send died after registering it) — don't double-count it.
            inflight = {id(e) for e in self.core._unacked.values()}
            self.core.rejected[:0] = final + [
                rej for rej, _ in pending if id(rej.event) not in inflight
            ]
            raise

    def ingest(self, event: RASEvent) -> dict[str, Any]:
        """Unpipelined convenience: send one event, wait for its answer."""
        seq = self.send_event(event)
        while seq in self.core._unacked:
            self._recv_frame()
        for i, rej in enumerate(self.core.rejected):
            if rej.seq == seq:
                return self.core.rejected.pop(i).frame
        return {"type": "ack", "seq": seq}

    def stream(
        self, events: list[RASEvent],
        on_reject: "Callable[[Rejected], None] | None" = None,
    ) -> int:
        """Pipeline a whole list; returns the number of acked events."""
        for event in events:
            self.send_event(event)
        rejected = self.wait_all()
        if on_reject is not None:
            for rej in rejected:
                on_reject(rej)
        return len(events) - len(rejected)

    # -- control plane --------------------------------------------------------

    def advance(self, now: float) -> list[dict[str, Any]]:
        """Move the fleet clock; returns the warnings it released."""
        response = self._request(
            {"type": "advance", "seq": self.core.next_seq(), "now": now}
        )
        return response.get("warnings", [])

    def flush(self) -> list[dict[str, Any]]:
        """End-of-stream: drain reorder buffers across the fleet."""
        response = self._request(
            {"type": "flush", "seq": self.core.next_seq()}
        )
        return response.get("warnings", [])

    def metrics(self) -> dict[str, Any]:
        """The server's ``repro.observe`` snapshot."""
        return self._request(
            {"type": "metrics", "seq": self.core.next_seq()}
        )["metrics"]

    def health(self) -> dict[str, Any]:
        return self._request({"type": "health", "seq": self.core.next_seq()})

    # -- fleet control plane --------------------------------------------------

    def fleet_status(self) -> dict[str, Any]:
        """Per-shard supervision state, migration epoch, in-flight moves."""
        return self._request(
            {"type": "fleet", "seq": self.core.next_seq(), "action": "status"}
        )

    def split_shard(self, shard: str, parts: int = 2) -> dict[str, Any]:
        """Live-split a hot shard into ``parts`` children."""
        return self._request(
            {
                "type": "fleet",
                "seq": self.core.next_seq(),
                "action": "split",
                "shard": shard,
                "parts": parts,
            }
        )

    def merge_shards(
        self, shards: list[str], target: str | None = None
    ) -> dict[str, Any]:
        """Live-merge cold shards into one."""
        frame: dict[str, Any] = {
            "type": "fleet",
            "seq": self.core.next_seq(),
            "action": "merge",
            "shards": list(shards),
        }
        if target is not None:
            frame["target"] = target
        return self._request(frame)

    def rolling_restart(self) -> dict[str, Any]:
        """Drain/checkpoint/rejoin every up shard, one at a time."""
        return self._request(
            {"type": "fleet", "seq": self.core.next_seq(), "action": "restart"}
        )

    def release_shard(self, shard: str) -> dict[str, Any]:
        """Close a quarantined shard's circuit breaker."""
        return self._request(
            {
                "type": "fleet",
                "seq": self.core.next_seq(),
                "action": "release",
                "shard": shard,
            }
        )

    # -- subscription ---------------------------------------------------------

    def subscribe(self) -> None:
        """Ask the server to push every new warning to this connection."""
        self._request({"type": "subscribe", "seq": self.core.next_seq()})

    def iter_warnings(self) -> Iterator[dict[str, Any]]:
        """Yield pushed warning payloads until the server goes away."""
        while True:
            yield from self._drain_stashed()
            try:
                self._recv_frame()
            except ServerClosed:
                yield from self._drain_stashed()
                return

    def _drain_stashed(self) -> Iterator[dict[str, Any]]:
        while self.core.warnings:
            yield self.core.warnings.pop(0)

    def decoded_warnings(self) -> list:
        """Accumulated warnings as :class:`FailureWarning` objects."""
        return [warning_from_dict(d) for d in self.core.warnings]


class AsyncPredictionClient:
    """The same client surface on asyncio streams."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
        window: int = DEFAULT_WINDOW,
        retry: RetryPolicy | None = RetryPolicy(),
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.window = window
        self.retry = retry
        self.core = _ClientCore()
        self._buffer = FrameBuffer()
        self._frames: list[dict[str, Any]] = []
        self._attempts: dict[int, int] = {}
        self._rng = random.Random()

    @classmethod
    async def connect(
        cls, host: str, port: int, window: int = DEFAULT_WINDOW,
        retry: RetryPolicy | None = RetryPolicy(),
    ) -> "AsyncPredictionClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, window=window, retry=retry)

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncPredictionClient":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    async def _send(self, frame: dict[str, Any]) -> None:
        self.writer.write(protocol.encode_frame(frame))
        await self.writer.drain()

    async def _recv_frame(self) -> dict[str, Any]:
        while True:
            while self._frames:
                frame = self.core.note_response(self._frames.pop(0))
                if frame is not None:
                    return frame
            data = await self.reader.read(65536)
            if not data:
                raise ServerClosed("server closed the connection")
            for line in self._buffer.feed(data):
                if line is None:
                    raise ProtocolError(
                        protocol.ERR_FRAME_TOO_LARGE, "oversized server frame"
                    )
                self._frames.append(protocol.decode_frame(line))

    async def _request(self, frame: dict[str, Any]) -> dict[str, Any]:
        seq = frame["seq"]
        await self._send(frame)
        while True:
            response = await self._recv_frame()
            if response.get("seq") == seq:
                if response.get("type") == "error":
                    raise ProtocolError(
                        response.get("code", protocol.ERR_INTERNAL),
                        response.get("error", "server error"),
                    )
                return response

    @property
    def unacked_events(self) -> list[RASEvent]:
        return self.core.unacked_events

    @property
    def rejected(self) -> list[Rejected]:
        return self.core.rejected

    @property
    def warnings(self) -> list[dict[str, Any]]:
        return self.core.warnings

    async def send_event(self, event: RASEvent) -> int:
        while self.core.n_unacked >= self.window:
            await self._recv_frame()
        seq = self.core.next_seq()
        self.core._unacked[seq] = event
        await self._send(
            {"type": "ingest", "seq": seq, "event": event.as_dict()}
        )
        return seq

    async def wait_all(self) -> list[Rejected]:
        final: list[Rejected] = []
        pending: list[tuple[Rejected, int]] = []
        try:
            while True:
                while self.core.n_unacked:
                    await self._recv_frame()
                rejected, self.core.rejected = self.core.rejected, []
                for rej in rejected:
                    attempts = self._attempts.pop(rej.seq, 1)
                    if (
                        self.retry is not None
                        and rej.transient
                        and attempts < self.retry.max_attempts
                    ):
                        pending.append((rej, attempts))
                    else:
                        final.append(rej)
                self._attempts.clear()
                if not pending:
                    return final
                await asyncio.sleep(
                    max(self.retry.delay(a, self._rng) for _, a in pending)
                )
                while pending:
                    rej, attempts = pending[0]
                    seq = await self.send_event(rej.event)
                    pending.pop(0)
                    self._attempts[seq] = attempts + 1
        except BaseException:
            inflight = {id(e) for e in self.core._unacked.values()}
            self.core.rejected[:0] = final + [
                rej for rej, _ in pending if id(rej.event) not in inflight
            ]
            raise

    async def stream(self, events: list[RASEvent]) -> int:
        for event in events:
            await self.send_event(event)
        return len(events) - len(await self.wait_all())

    async def advance(self, now: float) -> list[dict[str, Any]]:
        response = await self._request(
            {"type": "advance", "seq": self.core.next_seq(), "now": now}
        )
        return response.get("warnings", [])

    async def flush(self) -> list[dict[str, Any]]:
        response = await self._request(
            {"type": "flush", "seq": self.core.next_seq()}
        )
        return response.get("warnings", [])

    async def metrics(self) -> dict[str, Any]:
        return (
            await self._request(
                {"type": "metrics", "seq": self.core.next_seq()}
            )
        )["metrics"]

    async def health(self) -> dict[str, Any]:
        return await self._request(
            {"type": "health", "seq": self.core.next_seq()}
        )

    async def fleet_status(self) -> dict[str, Any]:
        return await self._request(
            {"type": "fleet", "seq": self.core.next_seq(), "action": "status"}
        )

    async def subscribe(self) -> None:
        await self._request({"type": "subscribe", "seq": self.core.next_seq()})


__all__ = [
    "AsyncPredictionClient",
    "DEFAULT_WINDOW",
    "PredictionClient",
    "Rejected",
    "RetryPolicy",
    "ServerClosed",
]
