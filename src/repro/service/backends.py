"""Shard backends: who owns a shard's session stack, and where it runs.

:class:`~repro.service.service.PredictionService` routes events; a
**backend** decides what a shard *is*.  Every layer above — routing,
batch commit, checkpointing, supervision, resharding, serving — talks to
shards exclusively through :class:`ShardHandle`, so the fleet's topology
is a deployment choice, not an architectural one:

* :class:`InprocBackend` (default) — today's behavior, exactly: one
  :class:`~repro.core.online.OnlinePredictionSession` stack per shard in
  the service's own process, sharing the service executor.  Zero IPC
  cost; the GIL caps multi-shard throughput.
* :class:`SubprocessBackend` — one shared-nothing **worker process** per
  shard.  The worker owns its ``SessionCore`` plus journal/checkpoint
  wrappers and is driven over a length-prefixed pipe command channel
  (``ingest_batch``/``advance``/``flush``/``checkpoint``/
  ``drift_status``/``snapshot_metrics``/``seal`` — see
  :mod:`repro.service.worker`).  N shards then retrain and preprocess on
  N cores.  A worker death is detected at the next command (the pipe
  goes dead) and surfaces as the existing
  :class:`~repro.service.service.ShardDown`; restore is a process
  respawn that recovers from the shard's checkpoint + journal.

Handles expose a uniform surface: streaming (``ingest``/``ingest_batch``
/``advance``/``flush``), reads (``warnings``/``summary``/``retrains``/
``n_ingested``/``drift_status``), durability (``checkpoint``/``seal``)
and lifecycle (``kill``/``close``), plus ``pid`` for the control plane.
``handle.session`` is the read-only session view: the real session
object inproc, an RPC-backed :class:`WorkerSessionProxy` under the
subprocess backend — so test suites written against
``service.session(key)`` run unchanged under both.

Select a backend with ``PredictionService(..., backend="subprocess")``,
the ``--backend`` CLI flag, or the ``REPRO_SERVICE_BACKEND`` environment
variable (which the chaos CI job uses to re-run the kill suites under
both backends).
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import threading
import weakref
from multiprocessing.connection import Connection
from typing import TYPE_CHECKING, Any

from repro import faults, observe
from repro.alerts import FailureWarning
from repro.core.online import OnlinePredictionSession
from repro.core.session import SessionSummary
from repro.observe.wrappers import MeteredSession
from repro.raslog.events import RASEvent
from repro.resilience.journal import EventJournal, parse_fsync_policy

if TYPE_CHECKING:
    from repro.service.service import PredictionService

#: env var consulted when no backend is passed explicitly
BACKEND_ENV = "REPRO_SERVICE_BACKEND"
#: env var forcing a multiprocessing start method for worker processes
START_METHOD_ENV = "REPRO_MP_START_METHOD"

CHECKPOINT_NAME = "checkpoint.json"
JOURNAL_DIRNAME = "journal"


class WorkerCrashed(RuntimeError):
    """A shard's worker process died (or was killed) mid-conversation.

    Internal to the service layer: the streaming surface catches this,
    marks the shard down, and re-raises as the public ``ShardDown``.
    """

    def __init__(self, key: str, why: str = "worker process died") -> None:
        super().__init__(f"shard {key!r}: {why}")
        self.key = key


class ShardHandle(abc.ABC):
    """One shard as seen by the service: a session *somewhere*."""

    def __init__(self, key: str, index: int, directory) -> None:
        self.key = key
        self.index = index
        self.directory = directory
        #: events routed to this shard in this process (fault-hook ordinal)
        self.routed = 0
        self._pending_batch: "list[FailureWarning] | None" = None

    # -- identity ----------------------------------------------------------

    @property
    @abc.abstractmethod
    def pid(self) -> int | None:
        """Worker process id, or None when the shard runs in-process."""

    @property
    @abc.abstractmethod
    def alive(self) -> bool:
        """False once the shard's worker (or inproc stand-in) is dead."""

    @property
    @abc.abstractmethod
    def session(self):
        """Read-only session view (real session or RPC-backed proxy)."""

    # -- streaming ---------------------------------------------------------

    @abc.abstractmethod
    def ingest(self, event: RASEvent) -> list[FailureWarning]: ...

    @abc.abstractmethod
    def ingest_batch(
        self, events: list[RASEvent]
    ) -> list[FailureWarning]: ...

    def ingest_batch_begin(self, events: list[RASEvent]) -> None:
        """Start delivering a sub-batch (scatter half of a fleet batch).

        The default does the work inline — warnings are cached until
        :meth:`ingest_batch_finish` — so in-process shards keep their
        strictly sequential semantics.  The subprocess handle overrides
        the pair to *send now, reply later*: the service scatters every
        shard's sub-batch before awaiting the first reply, which is
        what lets N workers chew their sub-batches (and any retrains
        they trigger) concurrently.  No other command may be issued to
        the shard between ``begin`` and ``finish``; the service's lock
        guarantees that for all service-mediated traffic.
        """
        self._pending_batch = self.ingest_batch(events)

    def ingest_batch_finish(self) -> list[FailureWarning]:
        """Collect the warnings from the sub-batch begun last."""
        out = self._pending_batch
        self._pending_batch = None
        return out if out is not None else []

    @abc.abstractmethod
    def advance(self, now: float) -> list[FailureWarning]: ...

    @abc.abstractmethod
    def flush(self) -> list[FailureWarning]: ...

    # -- reads -------------------------------------------------------------

    @abc.abstractmethod
    def warnings(self) -> list[FailureWarning]: ...

    @abc.abstractmethod
    def summary(self) -> SessionSummary: ...

    @property
    @abc.abstractmethod
    def n_ingested(self) -> int: ...

    @abc.abstractmethod
    def drift_status(self) -> dict | None: ...

    @abc.abstractmethod
    def journal_start_position(self) -> int | None:
        """First retained journal record, or None without a journal."""

    @abc.abstractmethod
    def snapshot_metrics(self) -> list[dict]:
        """The shard's private metric series as a mergeable registry
        dump (empty inproc — those series already live in the parent
        registry)."""

    # -- durability and lifecycle ------------------------------------------

    @abc.abstractmethod
    def checkpoint(self) -> dict:
        """Write the shard's checkpoint file; returns its payload."""

    @abc.abstractmethod
    def seal(self) -> None:
        """Gracefully freeze the shard: close its journal (and, under
        the subprocess backend, let the worker exit cleanly).  The
        on-disk state becomes the frozen handoff/restore substrate.
        Idempotent, and tolerant of an already-dead worker."""

    @abc.abstractmethod
    def kill(self) -> None:
        """Hard-kill the shard's worker (``SIGKILL``), as a real crash
        would: nothing is flushed, the next delivery fails.  Inproc the
        handle is flagged dead and its journal dropped."""

    @abc.abstractmethod
    def finalize_build(self, journal_fsync: str | int) -> None:
        """Resharding build epilogue: fsync the replayed journal,
        restore the fleet fsync policy, checkpoint, enable metering."""

    def close(self) -> None:
        """Release the shard's resources (graceful); idempotent."""
        self.seal()


class ShardBackend(abc.ABC):
    """Creates and recovers :class:`ShardHandle`\\ s for one service."""

    name: str

    def __init__(self) -> None:
        self._service: "PredictionService | None" = None

    def attach(self, service: "PredictionService") -> None:
        if self._service is not None and self._service is not service:
            raise ValueError(
                f"this {type(self).__name__} already belongs to another "
                f"service; backends are single-service"
            )
        self._service = service

    @property
    def service(self) -> "PredictionService":
        assert self._service is not None, "backend used before attach()"
        return self._service

    @abc.abstractmethod
    def create_shard(
        self, key: str, index: int, directory, *, build: bool = False
    ) -> ShardHandle:
        """A fresh shard.  ``build=True`` is the resharding rebuild
        variant: journal fsync off (the source journals stay durable
        until cleanup) and metering disabled until
        :meth:`ShardHandle.finalize_build`."""

    @abc.abstractmethod
    def recover_shard(self, key: str, index: int, directory) -> ShardHandle:
        """A shard rebuilt from its checkpoint + journal on disk."""

    def close(self) -> None:
        """Release backend-level resources (idempotent)."""


# -- in-process (default) ----------------------------------------------------


class InprocShard(ShardHandle):
    """Today's shard: session + metering wrapper in the service process."""

    def __init__(
        self,
        key: str,
        index: int,
        directory,
        session: OnlinePredictionSession,
        metered: MeteredSession | None,
    ) -> None:
        super().__init__(key, index, directory)
        self._session = session
        self._metered = metered
        self._dead = False

    @property
    def pid(self) -> int | None:
        return None

    @property
    def alive(self) -> bool:
        return not self._dead

    @property
    def session(self) -> OnlinePredictionSession:
        return self._session

    def _target(self):
        if self._dead:
            raise WorkerCrashed(self.key, "shard was hard-killed")
        return self._metered if self._metered is not None else self._session

    def ingest(self, event: RASEvent) -> list[FailureWarning]:
        return self._target().ingest(event)

    def ingest_batch(self, events: list[RASEvent]) -> list[FailureWarning]:
        return self._target().ingest_batch(events)

    def advance(self, now: float) -> list[FailureWarning]:
        return self._target().advance(now)

    def flush(self) -> list[FailureWarning]:
        return self._target().flush()

    def warnings(self) -> list[FailureWarning]:
        return self._session.warnings

    def summary(self) -> SessionSummary:
        return self._session.summary()

    @property
    def n_ingested(self) -> int:
        return self._session.n_ingested

    def drift_status(self) -> dict | None:
        return self._session.drift_status()

    def journal_start_position(self) -> int | None:
        journal = self._session.journal
        return None if journal is None else journal.start_position

    def snapshot_metrics(self) -> list[dict]:
        return []

    def checkpoint(self) -> dict:
        assert self.directory is not None
        return self._session.checkpoint(self.directory / CHECKPOINT_NAME)

    def seal(self) -> None:
        journal = self._session.journal
        if journal is not None and not journal.closed:
            journal.close()

    def kill(self) -> None:
        self.seal()
        self._dead = True

    def finalize_build(self, journal_fsync: str | int) -> None:
        journal = self._session.journal
        assert journal is not None
        journal.sync()
        journal.fsync_policy = parse_fsync_policy(journal_fsync)
        assert self.directory is not None
        self._session.checkpoint(self.directory / CHECKPOINT_NAME)
        self._metered = MeteredSession(
            self._session,
            prefix="service",
            degraded_of=self._session,
            shard=self.key,
        )


class InprocBackend(ShardBackend):
    """All shards in the service's process, sharing its executor."""

    name = "inproc"

    def _journal(self, directory, *, build: bool) -> EventJournal | None:
        if directory is None:
            return None
        service = self.service
        return EventJournal(
            directory / JOURNAL_DIRNAME,
            fsync="never" if build else service.journal_fsync,
            retain=service.retain_journals,
        )

    def create_shard(
        self, key: str, index: int, directory, *, build: bool = False
    ) -> ShardHandle:
        service = self.service
        session = OnlinePredictionSession(
            service.config,
            catalog=service.catalog,
            executor=service._executor,
            origin=service.origin,
            journal=self._journal(directory, build=build),
        )
        metered = None
        if not build:
            metered = MeteredSession(
                session, prefix="service", degraded_of=session, shard=key
            )
        return InprocShard(key, index, directory, session, metered)

    def recover_shard(self, key: str, index: int, directory) -> ShardHandle:
        service = self.service
        session = OnlinePredictionSession.recover(
            directory / CHECKPOINT_NAME,
            EventJournal(
                directory / JOURNAL_DIRNAME,
                fsync=service.journal_fsync,
                retain=service.retain_journals,
            ),
            service.config,
            catalog=service.catalog,
            executor=service._executor,
            origin=service.origin,
        )
        metered = MeteredSession(
            session, prefix="service", degraded_of=session, shard=key
        )
        return InprocShard(key, index, directory, session, metered)


# -- shared-nothing worker processes -----------------------------------------


class WorkerSessionProxy:
    """RPC-backed read view of a worker-owned session.

    Exposes the introspection surface tests and tooling use through
    ``service.session(key)`` — warnings, retrains, accounting — each
    read a round trip on the worker's command channel.  Streaming goes
    through the service, never this proxy.
    """

    def __init__(self, shard: "SubprocessShard") -> None:
        self._shard = shard

    @property
    def warnings(self) -> list[FailureWarning]:
        return self._shard._read("warnings")

    @property
    def retrains(self):
        return self._shard._read("retrains")

    @property
    def retrain_failures(self):
        return self._shard._read("retrain_failures")

    @property
    def n_ingested(self) -> int:
        return self._shard.n_ingested

    @property
    def degraded(self) -> bool:
        return self._shard._read("state")["degraded"]

    @property
    def current_week(self) -> int:
        return self._shard._read("state")["current_week"]

    @property
    def n_quarantined(self) -> int:
        return self._shard._read("state")["n_quarantined"]

    @property
    def journal(self) -> None:
        """Workers own their journals; the parent never holds a handle."""
        return None

    def summary(self) -> SessionSummary:
        return self._shard._read("summary")

    def drift_status(self) -> dict | None:
        return self._shard._read("drift_status")


def _kill_process(proc: multiprocessing.process.BaseProcess) -> None:
    """SIGKILL + reap, tolerating an already-dead process."""
    try:
        proc.kill()
    except (ValueError, OSError):  # already closed/reaped
        return
    proc.join(timeout=10)


class SubprocessShard(ShardHandle):
    """Parent-side handle driving one shard worker over a pipe.

    The channel is a ``multiprocessing`` duplex pipe: each message is a
    length-prefixed pickled frame (``Connection`` frames every send with
    a 4-byte length header).  Commands are strictly request/reply under
    ``_lock``; a send/recv that fails means the worker died, which is
    recorded and surfaced as :class:`WorkerCrashed`.
    """

    def __init__(
        self,
        key: str,
        index: int,
        directory,
        proc: multiprocessing.process.BaseProcess,
        conn: Connection,
    ) -> None:
        super().__init__(key, index, directory)
        self._proc = proc
        self._conn = conn
        self._dead = False
        self._lock = threading.Lock()
        self._n_ingested = 0
        #: final read-state cached by a graceful seal (None after SIGKILL)
        self._final: dict | None = None
        # Safety net mirroring _PooledExecutor: a handle dropped without
        # close() (an abandoned service in a crash test) must not leak a
        # live worker past garbage collection.
        self._finalizer = weakref.finalize(self, _kill_process, proc)

    # -- channel -----------------------------------------------------------

    def _note_dead(self) -> None:
        self._dead = True
        self._finalizer.detach()
        _kill_process(self._proc)
        try:
            self._conn.close()
        except OSError:
            pass

    def _call(self, op: str, *args: Any) -> Any:
        with self._lock:
            if self._dead:
                raise WorkerCrashed(self.key)
            try:
                self._conn.send((op, args))
            except (EOFError, OSError) as exc:
                self._note_dead()
                raise WorkerCrashed(
                    self.key, f"worker died mid-command ({op}): {exc!r}"
                ) from exc
            return self._recv_reply(op)

    def _recv_reply(self, op: str) -> Any:
        """Read and unpack one reply frame; caller holds ``_lock``."""
        try:
            status, payload, n_ingested, injected = self._conn.recv()
        except (EOFError, OSError) as exc:
            self._note_dead()
            raise WorkerCrashed(
                self.key, f"worker died mid-command ({op}): {exc!r}"
            ) from exc
        self._n_ingested = n_ingested
        if injected:
            plan = faults.active()
            if plan is not None:
                plan.injected.extend(injected)
        if status == "error":
            raise payload
        return payload

    def _read(self, op: str) -> Any:
        """A read op, served from the seal snapshot once the worker is
        gone — so a gracefully-sealed shard stays inspectable exactly
        like a killed inproc shard's still-live session object.  A
        SIGKILLed worker has no snapshot; reads raise WorkerCrashed."""
        if self._dead:
            if self._final is not None:
                return self._final[op]
            raise WorkerCrashed(self.key, "worker was killed; no final state")
        return self._call(op)

    # -- identity ----------------------------------------------------------

    @property
    def pid(self) -> int | None:
        return self._proc.pid

    @property
    def alive(self) -> bool:
        return not self._dead and self._proc.is_alive()

    @property
    def session(self) -> WorkerSessionProxy:
        return WorkerSessionProxy(self)

    # -- streaming ---------------------------------------------------------

    def ingest(self, event: RASEvent) -> list[FailureWarning]:
        return self._call("ingest", event)

    def ingest_batch(self, events: list[RASEvent]) -> list[FailureWarning]:
        return self._call("ingest_batch", events)

    def ingest_batch_begin(self, events: list[RASEvent]) -> None:
        # Send-only: the reply is collected by ingest_batch_finish, so
        # sub-batches bound for other workers can be sent in between and
        # the fleet's workers process one batch wave concurrently.
        with self._lock:
            if self._dead:
                raise WorkerCrashed(self.key)
            try:
                self._conn.send(("ingest_batch", (events,)))
            except (EOFError, OSError) as exc:
                self._note_dead()
                raise WorkerCrashed(
                    self.key,
                    f"worker died mid-command (ingest_batch): {exc!r}",
                ) from exc

    def ingest_batch_finish(self) -> list[FailureWarning]:
        with self._lock:
            if self._dead:
                raise WorkerCrashed(self.key)
            return self._recv_reply("ingest_batch")

    def advance(self, now: float) -> list[FailureWarning]:
        return self._call("advance", now)

    def flush(self) -> list[FailureWarning]:
        return self._call("flush")

    # -- reads -------------------------------------------------------------

    def warnings(self) -> list[FailureWarning]:
        return self._read("warnings")

    def summary(self) -> SessionSummary:
        return self._read("summary")

    @property
    def n_ingested(self) -> int:
        """Accepted-event ledger; served from the piggybacked counter on
        the last reply when the worker is gone."""
        if self._dead:
            return self._n_ingested
        try:
            return self._call("state")["n_ingested"]
        except WorkerCrashed:
            return self._n_ingested

    def drift_status(self) -> dict | None:
        return self._read("drift_status")

    def journal_start_position(self) -> int | None:
        return self._read("journal_start")

    def snapshot_metrics(self) -> list[dict]:
        return self._read("snapshot_metrics")

    # -- durability and lifecycle ------------------------------------------

    def checkpoint(self) -> dict:
        return self._call("checkpoint")

    def seal(self) -> None:
        if self._dead:
            return
        try:
            self._final = self._call("seal")
        except WorkerCrashed:
            return
        with self._lock:
            self._dead = True
            self._finalizer.detach()
            self._proc.join(timeout=10)
            if self._proc.is_alive():  # wedged worker: stop waiting
                _kill_process(self._proc)
            try:
                self._conn.close()
            except OSError:
                pass

    def kill(self) -> None:
        with self._lock:
            if self._dead:
                return
            self._note_dead()

    def finalize_build(self, journal_fsync: str | int) -> None:
        self._call(
            "finalize_build",
            journal_fsync
            if isinstance(journal_fsync, int)
            else str(journal_fsync),
        )


class SubprocessBackend(ShardBackend):
    """One shared-nothing worker process per shard.

    ``start_method`` picks the :mod:`multiprocessing` start method
    (default: ``REPRO_MP_START_METHOD`` env var, else ``fork`` where
    available for its ~10ms worker starts, else ``spawn``).  The worker
    entry point and its spec are fully picklable, so every start method
    works — ``spawn`` simply pays a per-worker interpreter+import cost.

    ``executor`` is the *worker-local* executor kind.  ``"process"`` is
    coerced to ``"serial"``: the worker **is** the process-level
    parallelism, and a nested pool per shard would multiply processes
    for no additional cores (see the executor's ``ExecutorBroken``
    contract — a broken nested pool must degrade to serial, never
    respawn).
    """

    name = "subprocess"

    def __init__(
        self,
        *,
        start_method: str | None = None,
        executor: str = "serial",
    ) -> None:
        super().__init__()
        if start_method is None:
            start_method = os.environ.get(START_METHOD_ENV) or None
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.executor_kind = "serial" if executor == "process" else executor

    def _spawn(self, spec, directory) -> SubprocessShard:
        from repro.service.worker import worker_main

        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=worker_main,
            args=(spec, child_conn),
            name=f"repro-shard-{spec.index:03d}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        handle = SubprocessShard(
            spec.key, spec.index, directory, proc, parent_conn
        )
        try:
            status, payload, n_ingested, injected = parent_conn.recv()
        except (EOFError, OSError) as exc:
            handle._note_dead()
            raise WorkerCrashed(
                spec.key, f"worker died during startup: {exc!r}"
            ) from exc
        if injected:
            plan = faults.active()
            if plan is not None:
                plan.injected.extend(injected)
        if status == "error":
            handle._note_dead()
            raise payload
        handle._n_ingested = n_ingested
        observe.gauge("service.workers", shard=spec.key).set(proc.pid or 0)
        return handle

    def _spec(self, key, index, directory, mode, *, build=False):
        from repro.service.worker import WorkerSpec

        service = self.service
        plan = faults.active()
        return WorkerSpec(
            key=key,
            index=index,
            directory=None if directory is None else str(directory),
            mode=mode,
            config=service.config,
            catalog=service.catalog,
            origin=service.origin,
            journal_fsync="never" if build else service.journal_fsync,
            retain_journals=service.retain_journals,
            executor_kind=self.executor_kind,
            metered=not build,
            fault_plan=None if plan is None else plan.worker_plan(),
        )

    def create_shard(
        self, key: str, index: int, directory, *, build: bool = False
    ) -> ShardHandle:
        return self._spawn(
            self._spec(key, index, directory, "create", build=build),
            directory,
        )

    def recover_shard(self, key: str, index: int, directory) -> ShardHandle:
        return self._spawn(
            self._spec(key, index, directory, "recover"), directory
        )


def make_backend(spec: "str | ShardBackend | None") -> ShardBackend:
    """Resolve a backend: an instance, a name, or None.

    None consults ``REPRO_SERVICE_BACKEND`` and falls back to inproc —
    this is how the chaos CI job re-runs entire suites under the
    subprocess backend without touching a single test.
    """
    if isinstance(spec, ShardBackend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV) or "inproc"
    if spec == "inproc":
        return InprocBackend()
    if spec == "subprocess":
        return SubprocessBackend()
    raise ValueError(
        f"unknown shard backend {spec!r} (expected 'inproc' or 'subprocess')"
    )


__all__ = [
    "BACKEND_ENV",
    "InprocBackend",
    "InprocShard",
    "ShardBackend",
    "ShardHandle",
    "SubprocessBackend",
    "SubprocessShard",
    "WorkerCrashed",
    "WorkerSessionProxy",
    "make_backend",
    "START_METHOD_ENV",
]
