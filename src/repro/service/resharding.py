"""Live resharding: split a hot shard or merge cold ones, losslessly.

A shard's warnings are a function of its *combined* event stream — the
session core is location-agnostic, so the state of a split child cannot
be carved out of the parent's session state.  What CAN reproduce it is
the parent's write-ahead journal: every input the parent ever accepted,
in acceptance order, from record 0 (shard journals are never compacted
past what resharding needs — see :attr:`EventJournal.retain` and the
``start_position`` check below).  Resharding is therefore a
**checkpoint+journal handoff**: build the target shards by replaying the
source journals through the *new* routing, checkpoint them, then switch
the manifest atomically.

The handoff runs in five idempotent steps, each durable before the next
begins, so a process death at any boundary is rolled forward by
:meth:`PredictionService.recover`:

1. **begin** — the migration record (epoch, kind, sources, targets,
   target indices) is written into the manifest.  From here on, recovery
   knows a migration is in flight and will re-run it.
2. **seal** — source journals are closed and the sources marked down;
   their on-disk history is now the frozen handoff substrate.
3. **build** — each target gets a fresh directory (wiped first, so a
   half-built target from a previous attempt cannot leak state), a fresh
   session with its own journal, and the source records replayed through
   the new routing rule; born targets are checkpointed.  A target that
   receives no events is discarded — it will be created lazily at its
   first event, exactly like a shard in a fleet born with this topology.
4. **commit** — the manifest is rewritten atomically with the new epoch,
   the routing rule appended, sources delisted and targets listed.  This
   single ``os.replace`` is the commit point: a crash before it recovers
   the old topology and re-runs the handoff; a crash after it recovers
   the new topology.
5. **cleanup** — retired source directories are deleted (their history
   lives on in the target journals).  Recovery deletes any the crash
   left behind (epoch-gated directory scan).

Equivalence contract: after a split or merge, the fleet's warnings are
warning-for-warning identical to a fleet *born* with the final topology
and fed the same stream (pinned by the chaos suite, which also kills the
process at every step boundary via :class:`repro.faults.ReshardCrash`
and injects :class:`repro.faults.ShardKill` mid-replay).

Merging requires ``reorder_slack == 0``: the rebuild interleaves the
source journals by ``(timestamp, record_id)`` with each journal's own
record order preserved, which reconstructs the original arrival order
only when every source stream is time-ordered.  (Splitting has no such
constraint — one source journal, already in acceptance order.)
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro import faults, observe
from repro.raslog.events import RASEvent
from repro.resilience import checkpoint as ckpt
from repro.resilience.journal import EventJournal
from repro.service.backends import ShardHandle
from repro.service.partition import RoutingRule, as_fleet
from repro.service.service import JOURNAL_DIRNAME, SHARD_META_NAME

if TYPE_CHECKING:
    from repro.service.service import PredictionService


class ReshardError(RuntimeError):
    """A split/merge that cannot be planned or executed."""


def _step(step: str) -> None:
    """Chaos hook: a :class:`~repro.faults.ReshardCrash` naming this
    step simulates the process dying right after the step's effects hit
    disk."""
    plan = faults.active()
    if plan is not None:
        plan.on_reshard_step(step)


# -- planning ----------------------------------------------------------------


def _require_ready(service: "PredictionService") -> None:
    service._require_open()
    service._require_fleet_dir()
    if service.migration is not None:
        raise ReshardError(
            f"a migration to epoch {service.migration['epoch']} is already "
            f"in flight; recover or finish it first"
        )


def _require_full_journal(service: "PredictionService", key: str) -> None:
    start = service._shards[key].journal_start_position()
    if start is None:
        raise ReshardError(f"shard {key!r} has no journal to hand off")
    if start != 0:
        raise ReshardError(
            f"shard {key!r}'s journal starts at record {start}, not 0 — "
            f"its early history was compacted away; run the fleet with "
            f"retain_journals=True to keep shards splittable/mergeable"
        )


def split_shard(
    service: "PredictionService", key: str, parts: int
) -> list[str]:
    """Split shard ``key`` into ``parts`` children; returns child keys."""
    _require_ready(service)
    if parts < 2:
        raise ReshardError(f"a split needs >= 2 parts, got {parts}")
    if key not in service._shards:
        raise ReshardError(f"unknown shard {key!r}")
    _require_full_journal(service, key)
    targets = [f"{key}/{i}" for i in range(parts)]
    for child in targets:
        if child in service._shards:
            raise ReshardError(
                f"split target key {child!r} is already a shard"
            )
    migration = {
        "epoch": service.epoch + 1,
        "kind": "split",
        "sources": [key],
        "targets": targets,
        "indices": list(
            range(service._next_index, service._next_index + parts)
        ),
    }
    _execute(service, migration, begin=True)
    return targets


def merge_shards(
    service: "PredictionService",
    keys: list[str],
    target: str | None = None,
) -> str:
    """Merge shards ``keys`` into one; returns the merged shard's key."""
    _require_ready(service)
    if len(keys) < 2 or len(set(keys)) != len(keys):
        raise ReshardError(
            f"a merge needs >= 2 distinct source shards, got {keys!r}"
        )
    if service.config.reorder_slack > 0:
        raise ReshardError(
            "merging requires reorder_slack == 0: the rebuild interleaves "
            "source journals by event time, which is only the original "
            "arrival order when every source stream is time-ordered"
        )
    for key in keys:
        if key not in service._shards:
            raise ReshardError(f"unknown shard {key!r}")
        _require_full_journal(service, key)
    if target is None:
        target = f"merged-{service.epoch + 1:03d}"
    if target in service._shards or target in keys:
        raise ReshardError(f"merge target key {target!r} is already a shard")
    migration = {
        "epoch": service.epoch + 1,
        "kind": "merge",
        "sources": list(keys),
        "targets": [target],
        "indices": [service._next_index],
    }
    _execute(service, migration, begin=True)
    return target


def resume_migration(service: "PredictionService") -> None:
    """Roll an in-flight migration (found in the manifest) forward.

    Called by :meth:`PredictionService.recover` when the manifest holds
    a migration record: the process died somewhere after **begin**, and
    every later step is idempotent, so re-running them lands the fleet
    in the committed topology.
    """
    assert service.migration is not None
    _execute(service, service.migration, begin=False)


# -- execution ---------------------------------------------------------------


@dataclass
class _TargetBuild:
    """A target shard under construction during the build step."""

    key: str
    index: int
    directory: Path
    #: backend handle in build mode: journal fsync off, unmetered until
    #: :meth:`~repro.service.backends.ShardHandle.finalize_build`
    handle: ShardHandle
    #: True once the first event lands (unborn targets are discarded —
    #: a fleet born with this topology would create them lazily)
    born: bool = False
    #: replayed-event ordinal, for the ShardKill chaos hook
    routed: int = 0
    run: list[RASEvent] = field(default_factory=list)


def _execute(
    service: "PredictionService", migration: dict, *, begin: bool
) -> None:
    fleet_dir = service._require_fleet_dir()
    sources = list(migration["sources"])
    source_dirs = [service._shards[k].directory for k in sources]
    if any(d is None for d in source_dirs):
        raise ReshardError("resharding requires directory-backed shards")

    if begin:
        # Step 1: durably declare the migration so a crash anywhere past
        # this point is rolled forward, never half-abandoned.
        service.migration = migration
        service._write_manifest()
        _step("begin")

    # Step 2: freeze the handoff substrate.  Sealing closes each
    # source's journal (a subprocess worker drains and exits here — its
    # on-disk journal is what the build replays).  Sealed sources are
    # marked down — if the process lives through the handoff they are
    # replaced at commit; if it dies, recovery re-seals them.
    for key in sources:
        service._shards[key].seal()
        service._down.add(key)
    _step("seal")

    # Step 3: rebuild the targets from the sealed journals.
    targets = _build_targets(service, migration, source_dirs)
    _step("build")

    # Step 4: the atomic topology switch.
    rule = RoutingRule(
        kind=migration["kind"],
        sources=tuple(sources),
        targets=tuple(migration["targets"]),
    )
    service.router = as_fleet(service.router).with_rule(rule)
    for key in sources:
        service._shards.pop(key)
        service._down.discard(key)
    for build in targets:
        build.handle.routed = 0
        service._shards[build.key] = build.handle
    service.epoch = migration["epoch"]
    service.migration = None
    service._next_index = max(
        service._next_index, max(migration["indices"]) + 1
    )
    service._write_manifest()
    observe.counter(
        "service.reshards", kind=migration["kind"]
    ).inc()
    observe.gauge("service.shards").set(len(service._shards))
    _step("commit")

    # Step 5: the retired sources' history now lives in the target
    # journals; recovery deletes these directories if we die first.
    for directory in source_dirs:
        assert directory is not None
        if directory.exists():
            shutil.rmtree(directory)
    ckpt.fsync_directory(fleet_dir / "shards")
    _step("cleanup")


def _build_targets(
    service: "PredictionService",
    migration: dict,
    source_dirs: list[Path | None],
) -> list[_TargetBuild]:
    """Replay the sealed source journals into fresh target shards."""
    rule = RoutingRule(
        kind=migration["kind"],
        sources=tuple(migration["sources"]),
        targets=tuple(migration["targets"]),
    )
    builds: dict[str, _TargetBuild] = {}
    for key, index in zip(migration["targets"], migration["indices"]):
        directory = service._shard_dir(index, key)
        assert directory is not None
        if directory.exists():
            # A half-built target from an attempt the crash interrupted.
            shutil.rmtree(directory)
        directory.mkdir(parents=True)
        ckpt.atomic_write_json(
            directory / SHARD_META_NAME,
            {"key": key, "index": index, "epoch": migration["epoch"]},
        )
        # Build mode: replay with journal fsync off — every record is
        # still durable in the source journals until cleanup — and
        # metering disabled; finalize_build() below syncs once, restores
        # the fleet policy, and arms the meters before the target goes
        # live.
        handle = service._backend.create_shard(
            key, index, directory, build=True
        )
        builds[key] = _TargetBuild(
            key=key, index=index, directory=directory, handle=handle
        )

    plan = faults.active()

    def flush_run(build: _TargetBuild) -> None:
        if not build.run:
            return
        events, build.run = build.run, []
        if plan is not None:
            for _ in events:
                build.routed += 1
                plan.on_shard_event(build.key, build.routed)
        else:
            build.routed += len(events)
        build.handle.ingest_batch(events)
        build.born = True

    # Only one build ever holds a pending run: runs exist to group
    # *consecutive* same-target ingests into one group-commit batch.
    current: _TargetBuild | None = None
    for record in _source_records(migration, source_dirs):
        kind = record.get("kind")
        if kind == "ingest":
            event = RASEvent.from_dict(record["event"])
            key = rule.apply(rule.sources[0], event.location)
            build = builds[key]
            if current is not None and current is not build:
                flush_run(current)
            build.run.append(event)
            current = build
        elif kind == "advance":
            if current is not None:
                flush_run(current)
                current = None
            for build in builds.values():
                if build.born:
                    build.handle.advance(record["now"])
        elif kind == "flush":
            if current is not None:
                flush_run(current)
                current = None
            for build in builds.values():
                if build.born:
                    build.handle.flush()
        else:
            raise ReshardError(f"unknown journal record kind {kind!r}")
    if current is not None:
        flush_run(current)

    born: list[_TargetBuild] = []
    for build in builds.values():
        if not build.born:
            build.handle.seal()
            shutil.rmtree(build.directory)
            continue
        build.handle.finalize_build(service.journal_fsync)
        born.append(build)
    return born


def _source_records(
    migration: dict, source_dirs: list[Path | None]
) -> Iterator[dict]:
    """The sealed sources' records, in original global acceptance order.

    One source (split): its journal order IS the acceptance order.
    Several (merge): a cursor merge that never reorders records within a
    journal and interleaves across journals by ``(timestamp, record_id)``
    — sound because merge demands time-ordered sources.  ``advance``
    records are broadcast writes (every live shard journals the same
    clock move), so when one is delivered, the matching record is
    consumed from every cursor that is parked on it.
    """
    journals = []
    try:
        for directory in source_dirs:
            assert directory is not None
            journals.append(
                EventJournal(directory / JOURNAL_DIRNAME, fsync="never")
            )
        if len(journals) == 1:
            for _index, record in journals[0].replay(0):
                yield record
            return
        cursors = [_Cursor(j.replay(0)) for j in journals]
        while True:
            head_keys = [
                (c.sort_key(), i)
                for i, c in enumerate(cursors)
                if c.head is not None
            ]
            if not head_keys:
                return
            _, winner = min(head_keys)
            record = cursors[winner].pop()
            if record.get("kind") == "advance":
                for cursor in cursors:
                    head = cursor.head
                    if (
                        cursor is not cursors[winner]
                        and head is not None
                        and head.get("kind") == "advance"
                        and head["now"] == record["now"]
                    ):
                        cursor.pop()
            yield record
    finally:
        for journal in journals:
            journal.close()


class _Cursor:
    """One journal's replay iterator with a peekable head."""

    def __init__(self, records: Iterator[tuple[int, dict]]) -> None:
        self._records = records
        self.head: dict | None = None
        self._advance()

    def _advance(self) -> None:
        entry = next(self._records, None)
        self.head = None if entry is None else entry[1]

    def pop(self) -> dict:
        assert self.head is not None
        record, self.head = self.head, None
        self._advance()
        return record

    def sort_key(self) -> tuple[float, int, int]:
        record = self.head
        assert record is not None
        kind = record.get("kind")
        if kind == "ingest":
            event = record["event"]
            return (event["timestamp"], 0, event["record_id"])
        if kind == "advance":
            # After same-time ingests: an event at t journaled before
            # advance(t) sits earlier in its own journal and the cursor
            # discipline already orders them; across journals, ingests
            # at t that the original stream placed after advance(t) are
            # *behind* their journal's own advance(t) record, so they
            # cannot surface early.
            return (record["now"], 1, 0)
        raise ReshardError(
            f"cannot merge journals containing {kind!r} records"
        )


__all__ = [
    "ReshardError",
    "merge_shards",
    "resume_migration",
    "split_shard",
]
