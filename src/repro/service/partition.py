"""Partition keys: how the fleet routes one event stream to N shards.

The paper's framing is already per-stream — RAS events carry a
``location`` (Blue Gene midplane/node naming), spatial filtering is
per-location, and Algorithm 2 re-arms independently per stream — so the
natural fleet partition key is the event's location.  Two routers cover
the deployment shapes:

* :class:`LocationRouter` — one shard per distinct location, created
  lazily as locations appear (per-machine monitors, DC-Prophet style);
* :class:`HashRouter` — ``crc32(location) % n`` into a fixed shard
  count, for fleets with more locations than affordable sessions.

Routing must be a pure function of the event (no clock, no RNG, no
per-process salt), because the same log must shard identically across a
crash/recover boundary — :func:`HashRouter.key` therefore uses CRC32,
not Python's per-process-salted ``hash()``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.raslog.events import RASEvent


@dataclass(frozen=True, slots=True)
class LocationRouter:
    """One shard per distinct event location."""

    kind = "location"

    def key(self, event: RASEvent) -> str:
        return event.location

    def spec(self) -> dict:
        return {"shard_by": self.kind, "n_shards": None}


@dataclass(frozen=True, slots=True)
class HashRouter:
    """Deterministic ``crc32(location) % n_shards`` bucketing."""

    n_shards: int

    kind = "hash"

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(
                f"n_shards must be a positive integer, got {self.n_shards}"
            )

    def key(self, event: RASEvent) -> str:
        bucket = zlib.crc32(event.location.encode("utf-8")) % self.n_shards
        return f"shard-{bucket:03d}"

    def spec(self) -> dict:
        return {"shard_by": self.kind, "n_shards": self.n_shards}


Router = LocationRouter | HashRouter


def make_router(shard_by: str = "location", shards: int | None = None) -> Router:
    """Router factory mirroring the CLI surface.

    ``shards=N`` selects hash routing into N fixed buckets;
    ``shard_by="location"`` (the default) selects one shard per
    location.  The manifest stores :meth:`Router.spec` so recovery
    rebuilds the identical routing.
    """
    if shards is not None:
        return HashRouter(shards)
    if shard_by == "location":
        return LocationRouter()
    raise ValueError(f"unknown partition scheme {shard_by!r}")


def router_from_spec(spec: dict) -> Router:
    """Inverse of :meth:`Router.spec` (manifest round-trips)."""
    return make_router(spec["shard_by"], spec["n_shards"])


__all__ = [
    "HashRouter",
    "LocationRouter",
    "Router",
    "make_router",
    "router_from_spec",
]
