"""Partition keys: how the fleet routes one event stream to N shards.

The paper's framing is already per-stream — RAS events carry a
``location`` (Blue Gene midplane/node naming), spatial filtering is
per-location, and Algorithm 2 re-arms independently per stream — so the
natural fleet partition key is the event's location.  Two routers cover
the deployment shapes:

* :class:`LocationRouter` — one shard per distinct location, created
  lazily as locations appear (per-machine monitors, DC-Prophet style);
* :class:`HashRouter` — ``crc32(location) % n`` into a fixed shard
  count, for fleets with more locations than affordable sessions.

Routing must be a pure function of the event (no clock, no RNG, no
per-process salt), because the same log must shard identically across a
crash/recover boundary — :func:`HashRouter.key` therefore uses CRC32,
not Python's per-process-salted ``hash()``.

Live resharding (:mod:`repro.service.resharding`) rewrites the topology
without changing the base router: each committed split/merge appends a
:class:`RoutingRule` and :class:`FleetRouter` applies the rules in
commit order after the base routing.  Rules are pure too — a split
buckets by ``crc32(location + "@" + parent)`` (salted with the parent
key so child buckets do not degenerate against the base hash), a merge
is a plain key rewrite — so a recovered fleet routes identically to the
one that crashed.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.raslog.events import RASEvent


@dataclass(frozen=True, slots=True)
class LocationRouter:
    """One shard per distinct event location."""

    kind = "location"

    def key(self, event: RASEvent) -> str:
        return event.location

    def spec(self) -> dict:
        return {"shard_by": self.kind, "n_shards": None}


@dataclass(frozen=True, slots=True)
class HashRouter:
    """Deterministic ``crc32(location) % n_shards`` bucketing."""

    n_shards: int

    kind = "hash"

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(
                f"n_shards must be a positive integer, got {self.n_shards}"
            )

    def key(self, event: RASEvent) -> str:
        bucket = zlib.crc32(event.location.encode("utf-8")) % self.n_shards
        return f"shard-{bucket:03d}"

    def spec(self) -> dict:
        return {"shard_by": self.kind, "n_shards": self.n_shards}


@dataclass(frozen=True, slots=True)
class RoutingRule:
    """One committed topology rewrite: a shard split or a shard merge.

    ``("split", (parent,), (child0, ..., childN-1))`` — events the
    earlier routing stages send to ``parent`` are re-bucketed over the
    children by ``crc32(location + "@" + parent) % N``.  The hash is
    salted with the parent key so that splitting a shard that was itself
    produced by ``crc32(location) % n`` does not map every location to
    the same child.

    ``("merge", (k0, ..., kM-1), (target,))`` — events for any source
    key are rewritten to ``target``.

    Rules compose: a later rule sees the key the earlier rules produced,
    so a child shard can itself be split or merged.
    """

    kind: str
    sources: tuple[str, ...]
    targets: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("split", "merge"):
            raise ValueError(f"unknown routing rule kind {self.kind!r}")
        if self.kind == "split" and (
            len(self.sources) != 1 or len(self.targets) < 2
        ):
            raise ValueError(
                "a split rule takes exactly one source and >= 2 targets"
            )
        if self.kind == "merge" and (
            len(self.sources) < 2 or len(self.targets) != 1
        ):
            raise ValueError(
                "a merge rule takes >= 2 sources and exactly one target"
            )

    def apply(self, key: str, location: str) -> str:
        if self.kind == "split":
            if key != self.sources[0]:
                return key
            salted = f"{location}@{self.sources[0]}".encode("utf-8")
            return self.targets[zlib.crc32(salted) % len(self.targets)]
        if key in self.sources:
            return self.targets[0]
        return key

    def to_spec(self) -> dict:
        return {
            "kind": self.kind,
            "sources": list(self.sources),
            "targets": list(self.targets),
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "RoutingRule":
        return cls(
            kind=spec["kind"],
            sources=tuple(spec["sources"]),
            targets=tuple(spec["targets"]),
        )


@dataclass(frozen=True, slots=True)
class FleetRouter:
    """A base router plus the ordered resharding rules committed so far."""

    base: LocationRouter | HashRouter
    rules: tuple[RoutingRule, ...] = ()

    kind = "fleet"

    def key(self, event: RASEvent) -> str:
        key = self.base.key(event)
        for rule in self.rules:
            key = rule.apply(key, event.location)
        return key

    def spec(self) -> dict:
        spec = dict(self.base.spec())
        spec["rules"] = [rule.to_spec() for rule in self.rules]
        return spec

    def with_rule(self, rule: RoutingRule) -> "FleetRouter":
        return FleetRouter(self.base, self.rules + (rule,))


Router = LocationRouter | HashRouter | FleetRouter


def as_fleet(router: Router) -> FleetRouter:
    """Wrap a base router so resharding rules can be appended to it."""
    if isinstance(router, FleetRouter):
        return router
    return FleetRouter(router)


def make_router(shard_by: str = "location", shards: int | None = None) -> Router:
    """Router factory mirroring the CLI surface.

    ``shards=N`` selects hash routing into N fixed buckets;
    ``shard_by="location"`` (the default) selects one shard per
    location.  The manifest stores :meth:`Router.spec` so recovery
    rebuilds the identical routing.
    """
    if shards is not None:
        return HashRouter(shards)
    if shard_by == "location":
        return LocationRouter()
    raise ValueError(f"unknown partition scheme {shard_by!r}")


def router_from_spec(spec: dict) -> Router:
    """Inverse of :meth:`Router.spec` (manifest round-trips).

    A v1 manifest carries no ``rules`` key — the base router comes back
    bare.  Any committed resharding rules re-apply in their stored
    (commit) order.
    """
    base = make_router(spec["shard_by"], spec["n_shards"])
    rules = spec.get("rules")
    if not rules:
        return base
    return FleetRouter(
        base, tuple(RoutingRule.from_spec(r) for r in rules)
    )


__all__ = [
    "FleetRouter",
    "HashRouter",
    "LocationRouter",
    "Router",
    "RoutingRule",
    "as_fleet",
    "make_router",
    "router_from_spec",
]
