"""Multi-stream prediction service: N session cores behind one router.

The paper predicts failures for one Blue Gene/L system; a fleet runs one
prediction stream per machine/rack.  :class:`PredictionService` hosts N
:class:`~repro.core.online.OnlinePredictionSession` stacks, routes each
event to its shard by a partition key (default: the event's location),
and owns the fleet-level durability layout so the whole fleet
checkpoints and recovers as a unit:

* **routing** — a pure router (:mod:`repro.service.partition`) maps an
  event to a shard key; location routing creates shards lazily as new
  locations appear, hash routing folds locations into a fixed count;
* **pluggable shard placement** — the service speaks to shards only
  through :class:`~repro.service.backends.ShardHandle`.  The default
  :class:`~repro.service.backends.InprocBackend` hosts every stack in
  this process, sharing one retrain executor (so a 64-shard fleet does
  not spawn 64 process pools); the
  :class:`~repro.service.backends.SubprocessBackend` gives each shard a
  shared-nothing worker process with its own core, journal, and
  worker-local executor — N shards on N cores, no GIL contention;
* **fleet durability** — under ``fleet_dir`` each shard gets its own
  subdirectory (write-ahead journal + checkpoint file + a tiny
  ``shard.json`` identity record), and :meth:`checkpoint` finishes by
  writing an atomic service manifest.  :meth:`recover` rebuilds every
  shard crash-consistently — including shards created *after* the last
  manifest write, which are found by scanning the shard directory;
* **blast-radius isolation** — a chaos :class:`~repro.faults.ShardKill`
  (or a journal fault inside one shard) marks only that shard down;
  every other shard keeps serving, and :meth:`restore_shard` brings the
  victim back from its checkpoint + journal without touching the rest.

Per-shard throughput, latency and degraded-mode state are recorded as
labeled metrics (``service.events{shard="..."}``) through
:class:`~repro.observe.wrappers.MeteredSession`.

On-disk layout::

    fleet/
      manifest.json                  # atomic; written last on checkpoint
      shards/
        000-R01_M0_N04/
          shard.json                 # {"key": "R01-M0-N04"}
          checkpoint.json
          journal/journal-*.seg
"""

from __future__ import annotations

import json
import re
import shutil
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults, observe
from repro.alerts import FailureWarning
from repro.core.framework import FrameworkConfig
from repro.core.session import SessionSummary
from repro.parallel.executor import Executor
from repro.raslog.catalog import EventCatalog, default_catalog
from repro.raslog.events import RASEvent
from repro.resilience import checkpoint as ckpt
from repro.service.backends import (
    ShardBackend,
    ShardHandle,
    WorkerCrashed,
    make_backend,
)
from repro.service.partition import Router, make_router, router_from_spec

MANIFEST_FORMAT = "repro-service-manifest"
MANIFEST_VERSION = 2
#: manifest versions this build can recover from.  v1 (pre-resharding)
#: carries no ``epoch``/``migration``/``retain_journals`` keys and no
#: router rules; it reads as an epoch-0 fleet with no migration.
MANIFEST_READABLE_VERSIONS = (1, 2)
MANIFEST_NAME = "manifest.json"
SHARDS_DIRNAME = "shards"
SHARD_META_NAME = "shard.json"
CHECKPOINT_NAME = "checkpoint.json"
JOURNAL_DIRNAME = "journal"


class ShardDown(RuntimeError):
    """An event was routed to a shard that has been killed.

    The rest of the fleet is unaffected; bring the shard back with
    :meth:`PredictionService.restore_shard` (its accepted inputs are in
    its checkpoint + journal) and re-deliver the rejected event.
    """

    def __init__(self, key: str) -> None:
        super().__init__(
            f"shard {key!r} is down; restore_shard() to recover it"
        )
        self.key = key


def _read_json(path: Path, *, require_format: str | None = None) -> dict:
    """Load a fleet metadata document (manifest or ``shard.json``)."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ckpt.CheckpointError(
                f"{path}: not valid JSON: {exc}"
            ) from exc
    if not isinstance(payload, dict):
        raise ckpt.CheckpointError(f"{path}: expected a JSON object")
    if require_format is not None and payload.get("format") != require_format:
        raise ckpt.CheckpointError(f"{path}: not a {require_format} file")
    return payload


def _slug(key: str) -> str:
    """Filesystem-safe fragment of a shard key (uniqueness comes from
    the index prefix, so lossy sanitization is fine)."""
    cleaned = re.sub(r"[^A-Za-z0-9._-]+", "_", key).strip("._-")
    return cleaned[:48] or "shard"


@dataclass
class FleetSummary:
    """Per-shard accounting plus fleet-level aggregates.

    Aggregate precision/recall are computed from summed match counts
    (micro-averaged), not averaged per-shard ratios — a shard with no
    warnings must not drag the fleet average.
    """

    shards: dict[str, SessionSummary] = field(default_factory=dict)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_events(self) -> int:
        return sum(s.n_events for s in self.shards.values())

    @property
    def n_fatal(self) -> int:
        return sum(s.n_fatal for s in self.shards.values())

    @property
    def n_warnings(self) -> int:
        return sum(s.n_warnings for s in self.shards.values())

    @property
    def n_quarantined(self) -> int:
        return sum(s.n_quarantined for s in self.shards.values())

    @property
    def n_retrains(self) -> int:
        return sum(len(s.retrains) for s in self.shards.values())

    @property
    def n_retrain_failures(self) -> int:
        return sum(len(s.retrain_failures) for s in self.shards.values())

    @property
    def true_positives(self) -> int:
        return sum(s.matching.true_positives for s in self.shards.values())

    @property
    def false_positives(self) -> int:
        return sum(s.matching.false_positives for s in self.shards.values())

    @property
    def false_negatives(self) -> int:
        return sum(s.matching.false_negatives for s in self.shards.values())

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0


class PredictionService:
    """Route a fleet's event stream to N independent session cores.

    ``backend`` decides where shards live: ``"inproc"`` (default) or
    ``"subprocess"``, a :class:`~repro.service.backends.ShardBackend`
    instance, or None to consult the ``REPRO_SERVICE_BACKEND``
    environment variable.  Inproc, every shard session shares
    ``executor`` (pass ``own_executor=True`` to have the service close
    it); under the subprocess backend each worker builds its own and
    ``executor`` is ignored.  All shards share the service ``origin``,
    so shard week boundaries stay aligned with the global stream.  With
    ``fleet_dir`` set, each shard journals write-ahead and
    :meth:`checkpoint`/:meth:`recover` round-trip the whole fleet.
    """

    def __init__(
        self,
        config: FrameworkConfig | None = None,
        catalog: EventCatalog | None = None,
        *,
        shard_by: str = "location",
        shards: int | None = None,
        router: Router | None = None,
        executor: Executor | None = None,
        own_executor: bool = False,
        origin: float = 0.0,
        fleet_dir: str | Path | None = None,
        journal_fsync: str | int = "always",
        retain_journals: bool = False,
        backend: str | ShardBackend | None = None,
    ) -> None:
        self.config = config or FrameworkConfig()
        self.catalog = catalog or default_catalog()
        self.router = router or make_router(shard_by, shards)
        self.origin = float(origin)
        self.fleet_dir = Path(fleet_dir) if fleet_dir is not None else None
        self.journal_fsync = journal_fsync
        #: never compact shard journals — keeps full from-record-0
        #: history so live resharding can always rebuild from it
        self.retain_journals = retain_journals
        #: completed migrations so far; bumped atomically at each
        #: reshard commit (the manifest write IS the commit point)
        self.epoch = 0
        #: in-flight migration record, mirrored in the manifest so a
        #: crash mid-handoff is rolled forward by :meth:`recover`
        self.migration: dict | None = None
        self._next_index = 0
        self._executor = executor
        self._own_executor = own_executor and executor is not None
        self._backend = make_backend(backend)
        self._backend.attach(self)
        self._shards: dict[str, ShardHandle] = {}
        self._down: set[str] = set()
        self._closed = False
        # Serializes the streaming surface against close()/checkpoint()/
        # resharding, so a concurrent close never tears a half-applied
        # batch (callers get either the full effect or a clean
        # "service is closed" RuntimeError).  RLock: checkpoint and the
        # reshard engine call locked methods from locked sections.
        self._lock = threading.RLock()
        if self.fleet_dir is not None:
            (self.fleet_dir / SHARDS_DIRNAME).mkdir(
                parents=True, exist_ok=True
            )
            # The manifest is written eagerly (here and on every shard
            # birth), so the fleet is recoverable from its first event —
            # not just from its first checkpoint.
            self._write_manifest()

    # -- shard lifecycle ---------------------------------------------------

    @property
    def backend(self) -> ShardBackend:
        """The backend placing this fleet's shards."""
        return self._backend

    @property
    def shard_keys(self) -> list[str]:
        """Keys of all shards, in creation order."""
        return list(self._shards)

    @property
    def down_shards(self) -> set[str]:
        """Keys of shards currently marked down."""
        return set(self._down)

    @property
    def n_ingested(self) -> int:
        """Events accepted across the fleet (the resume/skip ledger)."""
        return sum(s.n_ingested for s in self._shards.values())

    def session(self, key: str):
        """The session view currently serving shard ``key``: the real
        :class:`~repro.core.online.OnlinePredictionSession` inproc, an
        RPC-backed read proxy under the subprocess backend."""
        return self._shards[key].session

    def shard_pids(self) -> dict[str, int | None]:
        """Worker pid per shard (None for in-process shards) — surfaced
        in ``health``/``fleet status`` so operators can correlate a
        shard with its OS process."""
        return {key: shard.pid for key, shard in self._shards.items()}

    def _shard_dir(self, index: int, key: str) -> Path | None:
        if self.fleet_dir is None:
            return None
        return self.fleet_dir / SHARDS_DIRNAME / f"{index:03d}-{_slug(key)}"

    def _make_shard(self, key: str) -> ShardHandle:
        index = self._next_index
        self._next_index += 1
        directory = self._shard_dir(index, key)
        if directory is not None:
            directory.mkdir(parents=True, exist_ok=True)
            ckpt.atomic_write_json(
                directory / SHARD_META_NAME,
                {"key": key, "index": index, "epoch": self.epoch},
            )
        shard = self._backend.create_shard(key, index, directory)
        self._shards[key] = shard
        if self.fleet_dir is not None:
            self._write_manifest()
        observe.gauge("service.shards").set(len(self._shards))
        return shard

    def _shard_for(self, event: RASEvent) -> ShardHandle:
        key = self.router.key(event)
        if key in self._down:
            raise ShardDown(key)
        shard = self._shards.get(key)
        if shard is None:
            shard = self._make_shard(key)
        return shard

    def _mark_down(self, shard: ShardHandle) -> None:
        """A shard died: seal what remains, keep serving the rest.

        Sealing closes the shard's journal (and lets a still-live
        subprocess worker exit cleanly); a worker that is already gone
        seals as a no-op.  Idempotent per shard — the kill counter
        records each death once."""
        if shard.key in self._down:
            return
        self._down.add(shard.key)
        shard.seal()
        observe.counter("service.shard_kills", shard=shard.key).inc()

    def reap_workers(self) -> list[str]:
        """Mark shards whose worker process has died down; returns them.

        Crash detection is otherwise lazy (the next delivery to a dead
        worker fails); the supervisor calls this at the top of each poll
        so silent worker deaths feed its circuit breaker without waiting
        for traffic.  In-process shards have no separate process to lose
        and are never reaped here."""
        with self._lock:
            reaped = []
            for key, shard in self._shards.items():
                if key in self._down or shard.pid is None or shard.alive:
                    continue
                self._mark_down(shard)
                reaped.append(key)
            return reaped

    # -- streaming surface -------------------------------------------------

    def ingest(self, event: RASEvent) -> list[FailureWarning]:
        """Route one event to its shard; returns that shard's warnings.

        A :class:`~repro.faults.FaultInjected` raised by the chaos hook
        (or from inside the shard's stack, e.g. a journal fault) marks
        the shard down and propagates; other shards keep serving.  A
        dead worker process (crashed, or SIGKILLed by a
        :class:`~repro.faults.WorkerKill`) is detected here — the failed
        delivery marks the shard down and raises :class:`ShardDown`.
        """
        with self._lock:
            self._require_open()
            shard = self._shard_for(event)
            shard.routed += 1
            plan = faults.active()
            try:
                if plan is not None:
                    plan.on_shard_event(shard.key, shard.routed)
                    if plan.take_worker_kill(shard.key, shard.routed):
                        shard.kill()
                return shard.ingest(event)
            except faults.FaultInjected:
                self._mark_down(shard)
                raise
            except WorkerCrashed:
                self._mark_down(shard)
                raise ShardDown(shard.key) from None

    def ingest_batch(self, events: list[RASEvent]) -> list[FailureWarning]:
        """Route a batch of events; returns all new warnings.

        Events are grouped by shard key with per-shard arrival order
        preserved, and each shard's sub-batch goes through its session's
        batched path (one group-commit journal fsync per shard instead
        of one per event) — this is what the serving front-end's
        micro-batcher calls.  Delivery is scatter/gather: every shard's
        sub-batch is begun before the first one's warnings are
        collected, so under the subprocess backend all workers process
        one batch wave — including any retrains it triggers —
        concurrently.

        Routing is validated atomically up front: if *any* event targets
        a shard currently marked down, :class:`ShardDown` is raised
        before anything is applied, mirroring the session layer's
        nothing-on-error batch contract.  Failure isolation past that
        point is per shard: a chaos fault killing one shard mid-batch
        propagates after marking only that shard down — sub-batches
        already delivered to *other* shards stay applied, because each
        shard is an independent stream.
        """
        with self._lock:
            self._require_open()
            if not events:
                return []
            groups: dict[str, list[RASEvent]] = {}
            for event in events:
                groups.setdefault(self.router.key(event), []).append(event)
            for key in groups:
                if key in self._down:
                    raise ShardDown(key)
            plan = faults.active()
            begun: list[ShardHandle] = []
            error: BaseException | None = None
            for key, batch in groups.items():
                shard = self._shards.get(key)
                if shard is None:
                    shard = self._make_shard(key)
                try:
                    if plan is not None:
                        for event in batch:
                            shard.routed += 1
                            plan.on_shard_event(key, shard.routed)
                            if plan.take_worker_kill(key, shard.routed):
                                shard.kill()
                    else:
                        shard.routed += len(batch)
                    shard.ingest_batch_begin(batch)
                except faults.FaultInjected as exc:
                    self._mark_down(shard)
                    error = exc
                    break
                except WorkerCrashed:
                    self._mark_down(shard)
                    error = ShardDown(key)
                    break
                begun.append(shard)
            # Gather every begun shard even on error: a pending reply
            # left in a surviving worker's pipe would desync its next
            # command.  The first error (scatter order, then gather
            # order) propagates after the drain.
            new: list[FailureWarning] = []
            for shard in begun:
                try:
                    new.extend(shard.ingest_batch_finish())
                except faults.FaultInjected as exc:
                    self._mark_down(shard)
                    error = error if error is not None else exc
                except WorkerCrashed:
                    self._mark_down(shard)
                    error = (
                        error if error is not None else ShardDown(shard.key)
                    )
            if error is not None:
                raise error
            return new

    def advance(self, now: float) -> list[FailureWarning]:
        """Move every live shard's clock (idle timer service).

        A worker found dead here is marked down and skipped; the fleet
        clock still advances everywhere else."""
        with self._lock:
            self._require_open()
            new: list[FailureWarning] = []
            for shard in list(self._shards.values()):
                if shard.key in self._down:
                    continue
                try:
                    new.extend(shard.advance(now))
                except WorkerCrashed:
                    self._mark_down(shard)
            return new

    def flush(self) -> list[FailureWarning]:
        """Drain every live shard's reorder buffer (end of stream)."""
        with self._lock:
            self._require_open()
            new: list[FailureWarning] = []
            for shard in list(self._shards.values()):
                if shard.key in self._down:
                    continue
                try:
                    new.extend(shard.flush())
                except WorkerCrashed:
                    self._mark_down(shard)
            return new

    def warnings(self, key: str) -> list[FailureWarning]:
        """Warnings accumulated by shard ``key``."""
        return self._shards[key].warnings()

    def summary(self) -> FleetSummary:
        """Per-shard summaries plus fleet aggregates, keyed by shard.

        A shard whose worker was hard-killed has no reachable state
        until :meth:`restore_shard` and is omitted (gracefully sealed
        shards still report their final snapshot)."""
        shards: dict[str, SessionSummary] = {}
        for key, shard in self._shards.items():
            try:
                shards[key] = shard.summary()
            except WorkerCrashed:
                continue
        return FleetSummary(shards=shards)

    @property
    def adaptive(self) -> bool:
        """Whether the fleet retrains on drift rather than a fixed cadence."""
        return self.config.retrain_trigger == "adaptive"

    def drift_status(self) -> dict[str, dict | None]:
        """Per-shard drift-detector/policy state, keyed by shard.

        Every value is None with the fixed trigger; with the adaptive
        trigger each shard evaluates its own stream, so shards can sit
        on different sides of a regime change at the same instant.
        """
        with self._lock:
            status: dict[str, dict | None] = {}
            for key, shard in self._shards.items():
                try:
                    status[key] = shard.drift_status()
                except WorkerCrashed:
                    status[key] = None
            return status

    def merged_metrics(self) -> dict[str, dict]:
        """Fleet-wide metrics view: the parent registry with every live
        worker's private series folded in (counters sum, histograms
        merge, gauges last-write).  A snapshot-shaped read-only view —
        the parent registry itself is never mutated, so repeated calls
        never double-count.  Inproc shards record directly into the
        parent registry and contribute no extra dump."""
        with self._lock:
            dumps = []
            for shard in self._shards.values():
                try:
                    dumps.append(shard.snapshot_metrics())
                except WorkerCrashed:
                    continue
            return observe.get_registry().merged_snapshot(dumps)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; streaming calls then raise."""
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "this PredictionService is closed; events offered after "
                "close() would be silently lost"
            )

    def close(self) -> None:
        """Seal every shard, then the backend and owned executor.

        Sealing closes each shard's journal (and, under the subprocess
        backend, drains and joins its worker process).  Idempotent: a
        second close (e.g. the serve drain path and a ``with`` block
        both reaching it) is a no-op, so shards are never double-closed
        and the shared executor is released exactly once.  Close takes
        the service lock, so it serializes against an in-flight
        ``ingest_batch`` from another thread: the batch either fully
        applies (and its journal fds are still open while it does) or
        the batch never started and raises the closed error.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for shard in self._shards.values():
                shard.close()
            self._backend.close()
            if self._own_executor:
                self._own_executor = False
                assert self._executor is not None
                self._executor.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- fleet durability --------------------------------------------------

    def _require_fleet_dir(self) -> Path:
        if self.fleet_dir is None:
            raise ValueError(
                "this service has no fleet directory; pass fleet_dir= to "
                "enable fleet checkpoint/recovery"
            )
        return self.fleet_dir

    def checkpoint(self) -> dict:
        """Checkpoint every live shard, then the manifest; returns it.

        Down shards are skipped — their last checkpoint plus their
        journal already cover everything they accepted.  The manifest is
        written last (atomically), so a crash mid-checkpoint leaves a
        manifest that only references shard snapshots that fully exist.
        """
        with self._lock:
            self._require_open()
            self._require_fleet_dir()
            for shard in self._shards.values():
                if shard.key in self._down:
                    continue
                shard.checkpoint()
            manifest = self._write_manifest()
            observe.counter("service.checkpoints").inc()
            return manifest

    def _write_manifest(self) -> dict:
        fleet_dir = self.fleet_dir
        assert fleet_dir is not None
        manifest = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "epoch": self.epoch,
            "migration": self.migration,
            "retain_journals": self.retain_journals,
            "router": self.router.spec(),
            "config_digest": ckpt.config_digest(self.config),
            "config": ckpt.config_to_dict(self.config),
            "origin": self.origin,
            "journal_fsync": (
                self.journal_fsync
                if isinstance(self.journal_fsync, int)
                else str(self.journal_fsync)
            ),
            "shards": [
                {
                    "key": shard.key,
                    "index": shard.index,
                    "dir": str(
                        shard.directory.relative_to(fleet_dir)
                        if shard.directory is not None
                        else ""
                    ),
                }
                for shard in sorted(
                    self._shards.values(), key=lambda s: s.index
                )
            ],
        }
        ckpt.atomic_write_json(fleet_dir / MANIFEST_NAME, manifest)
        return manifest

    def restore_shard(self, key: str):
        """Bring a down shard back from its checkpoint + journal.

        Under the subprocess backend this is a process respawn: the dead
        worker's SIGKILLed corpse is reaped and a fresh worker recovers
        from the shard directory.  Either way the restored session has
        seen exactly the inputs the dead one accepted (write-ahead
        journal replay past the checkpoint's recorded position); the
        event whose delivery killed the shard was never durable and must
        be re-delivered by the caller.  Returns the restored shard's
        session view.
        """
        with self._lock:
            self._require_fleet_dir()
            old = self._shards[key]
            if old.directory is None:
                raise ValueError(
                    f"shard {key!r} has no directory to restore from"
                )
            old.kill()
            shard = self._backend.recover_shard(key, old.index, old.directory)
            shard.routed = old.routed
            self._shards[key] = shard
            self._down.discard(key)
            observe.counter("service.shard_recoveries", shard=key).inc()
            return shard.session

    def restart_shard(self, key: str):
        """Drain one shard to disk and bring it back from its own state.

        The rolling-restart primitive: checkpoint the shard, seal it (a
        clean shutdown of just that shard — under the subprocess backend
        the worker process exits), then recover it through the same
        checkpoint+replay path a crash would use — so a rolling restart
        proves, shard by shard, that the fleet's durable state is
        sufficient to continue.  A shard already marked down skips the
        drain (there is nothing live to drain) and goes straight to
        recovery.  Returns the restarted shard's session view.
        """
        with self._lock:
            self._require_open()
            self._require_fleet_dir()
            shard = self._shards[key]
            if key not in self._down:
                shard.checkpoint()
                shard.seal()
                self._down.add(key)
            session = self.restore_shard(key)
            observe.counter("service.rolling_restarts", shard=key).inc()
            return session

    # -- live resharding ---------------------------------------------------

    def split_shard(self, key: str, parts: int) -> list[str]:
        """Split a hot shard into ``parts`` children; returns their keys.

        Checkpoint+journal handoff under a migration epoch — see
        :mod:`repro.service.resharding` for the step protocol and the
        crash-recovery contract.
        """
        from repro.service import resharding

        with self._lock:
            return resharding.split_shard(self, key, parts)

    def merge_shards(
        self, keys: list[str], target: str | None = None
    ) -> str:
        """Merge cold shards into one; returns the merged shard's key."""
        from repro.service import resharding

        with self._lock:
            return resharding.merge_shards(self, keys, target=target)

    @classmethod
    def recover(
        cls,
        fleet_dir: str | Path,
        config: FrameworkConfig | None = None,
        catalog: EventCatalog | None = None,
        *,
        executor: Executor | None = None,
        own_executor: bool = False,
        origin: float | None = None,
        journal_fsync: str | int | None = None,
        backend: "str | ShardBackend | None" = None,
    ) -> "PredictionService":
        """Crash-consistent recovery of the whole fleet.

        Reads the manifest (router spec, config, origin, migration
        epoch), then restores every shard found on disk — manifest-
        listed or not, because a shard created after the last manifest
        write still has its ``shard.json`` identity record and journal.
        Each shard resumes from its checkpoint (if one exists) and
        replays its journal past the recorded position; a shard killed
        before its first checkpoint replays its whole journal into a
        fresh session.

        Unlisted directories are epoch-gated: a directory whose
        ``shard.json`` epoch differs from the manifest's belongs to a
        migration — either a target half-built when the process died
        (newer epoch; the roll-forward below rebuilds it from scratch)
        or a retired source the cleanup step never reached (older
        epoch) — and is deleted, not resurrected.  If the manifest holds
        an in-flight migration record, recovery finishes the handoff
        (every step is idempotent), so the fleet always lands in the
        committed topology.

        ``config`` defaults to the manifest's; passing one asserts
        compatibility (digest mismatch raises
        :class:`~repro.resilience.CheckpointError`).
        """
        fleet_dir = Path(fleet_dir)
        manifest_path = fleet_dir / MANIFEST_NAME
        manifest = None
        if manifest_path.exists():
            manifest = _read_json(
                manifest_path, require_format=MANIFEST_FORMAT
            )
            if manifest.get("version") not in MANIFEST_READABLE_VERSIONS:
                raise ckpt.CheckpointError(
                    f"{manifest_path}: unsupported manifest version "
                    f"{manifest.get('version')!r} (this build reads "
                    f"versions "
                    f"{', '.join(map(str, MANIFEST_READABLE_VERSIONS))})"
                )
        router = None
        retain_journals = False
        epoch = 0
        migration = None
        if manifest is not None:
            router = router_from_spec(manifest["router"])
            if config is None:
                config = ckpt.config_from_dict(manifest["config"])
            elif ckpt.config_digest(config) != manifest["config_digest"]:
                raise ckpt.CheckpointError(
                    f"{manifest_path}: fleet manifest was written under a "
                    f"different configuration (digest mismatch)"
                )
            if origin is None:
                origin = manifest["origin"]
            if journal_fsync is None:
                journal_fsync = manifest["journal_fsync"]
            # v1 manifests predate resharding: epoch 0, no migration.
            retain_journals = manifest.get("retain_journals", False)
            epoch = manifest.get("epoch", 0)
            migration = manifest.get("migration")
        # Construct WITHOUT fleet_dir: the constructor's eager manifest
        # write would clobber the dead process's manifest — losing an
        # in-flight migration record before it can be rolled forward if
        # this recovery is itself killed.  The on-disk manifest stays
        # exactly as the crash left it until commit or checkpoint.
        service = cls(
            config,
            catalog=catalog,
            router=router,
            executor=executor,
            own_executor=own_executor,
            origin=origin if origin is not None else 0.0,
            journal_fsync=(
                journal_fsync if journal_fsync is not None else "always"
            ),
            retain_journals=retain_journals,
            backend=backend,
        )
        service.fleet_dir = fleet_dir
        (fleet_dir / SHARDS_DIRNAME).mkdir(parents=True, exist_ok=True)
        service.epoch = epoch
        service.migration = migration
        listed = (
            None
            if manifest is None
            else {entry["dir"] for entry in manifest["shards"]}
        )
        shards_root = fleet_dir / SHARDS_DIRNAME
        found: list[tuple[int, str, Path]] = []
        if shards_root.exists():
            for directory in sorted(shards_root.iterdir()):
                meta_path = directory / SHARD_META_NAME
                if not meta_path.exists():
                    continue
                meta = _read_json(meta_path)
                if listed is not None and (
                    str(directory.relative_to(fleet_dir)) not in listed
                ):
                    # Unlisted + wrong epoch = migration debris (see
                    # docstring); unlisted + current epoch = a shard
                    # born after the last manifest write, keep it.
                    if meta.get("epoch", epoch) != epoch:
                        shutil.rmtree(directory)
                        continue
                found.append((meta["index"], meta["key"], directory))
        found.sort()
        for index, key, directory in found:
            service._shards[key] = service._backend.recover_shard(
                key, index, directory
            )
        if found:
            service._next_index = max(index for index, _, _ in found) + 1
        observe.gauge("service.shards").set(len(service._shards))
        observe.counter("service.recoveries").inc()
        if service.migration is not None:
            # The process died mid-handoff: roll the migration forward
            # to its committed topology before serving anything.
            from repro.service import resharding

            resharding.resume_migration(service)
        return service


__all__ = [
    "CHECKPOINT_NAME",
    "FleetSummary",
    "JOURNAL_DIRNAME",
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "MANIFEST_READABLE_VERSIONS",
    "MANIFEST_VERSION",
    "PredictionService",
    "SHARDS_DIRNAME",
    "SHARD_META_NAME",
    "ShardDown",
    "_slug",
]

