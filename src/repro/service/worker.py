"""Shard worker: one shared-nothing process owning one session stack.

This is the child side of :class:`~repro.service.backends
.SubprocessBackend`.  The parent spawns one worker per shard with a
picklable :class:`WorkerSpec`; the worker builds (or recovers) its own
:class:`~repro.core.online.OnlinePredictionSession` — session core,
write-ahead journal, checkpoint wrapper, worker-local executor — and
then serves commands off a duplex pipe until told to ``seal``.

**Protocol.**  Requests are ``(op, args)`` tuples; every reply is
``(status, payload, n_ingested, injected)``:

* ``status`` — ``"ok"`` or ``"error"`` (payload is then the exception,
  re-raised parent-side so fault semantics match the inproc backend);
* ``n_ingested`` — the worker's accepted-event ledger, piggybacked on
  every reply so the parent's fleet accounting survives a later SIGKILL;
* ``injected`` — chaos-fault records added since the previous reply,
  folded into the parent's active plan so suites asserting on
  ``plan.injected`` see worker-side faults too.

**Process hygiene.**  The worker installs a fresh metrics registry
(shipped back via ``snapshot_metrics`` as a mergeable dump) and resets
the fault layer to the plan slice in its spec, so state inherited from a
forked parent never double-fires.  A broken pipe to the parent means the
parent is gone: the worker ``os._exit``\\ s *without* flushing — its
journal files may already have been reopened by a recovered service's
new worker, and flushing a stale buffered tail into them would corrupt
the very state recovery depends on.  The only clean exit is ``seal``,
which snapshots the session's final read-state for the parent, closes
the journal, and returns.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing.connection import Connection
from pathlib import Path
from typing import Any

from repro import faults, observe
from repro.core.framework import FrameworkConfig
from repro.core.online import OnlinePredictionSession
from repro.observe.wrappers import MeteredSession
from repro.parallel.executor import make_executor
from repro.raslog.catalog import EventCatalog
from repro.resilience.journal import EventJournal, parse_fsync_policy

CHECKPOINT_NAME = "checkpoint.json"
JOURNAL_DIRNAME = "journal"


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to own one shard — fully picklable,
    so every multiprocessing start method (fork/spawn/forkserver) works."""

    key: str
    index: int
    #: shard directory as a string (None = dirless: no journal/checkpoint)
    directory: str | None
    #: "create" for a fresh shard, "recover" for checkpoint+journal replay
    mode: str
    config: FrameworkConfig
    catalog: EventCatalog
    origin: float
    journal_fsync: str | int
    retain_journals: bool
    #: worker-local executor kind ("process" is coerced parent-side)
    executor_kind: str
    #: wrap the session in MeteredSession (off during resharding builds)
    metered: bool
    #: session-level chaos-fault slice (see FaultPlan.worker_plan)
    fault_plan: faults.FaultPlan | None


def _journal(spec: WorkerSpec) -> EventJournal | None:
    if spec.directory is None:
        return None
    return EventJournal(
        Path(spec.directory) / JOURNAL_DIRNAME,
        fsync=spec.journal_fsync,
        retain=spec.retain_journals,
    )


def _build_session(
    spec: WorkerSpec, executor
) -> OnlinePredictionSession:
    if spec.mode == "recover":
        assert spec.directory is not None, "cannot recover a dirless shard"
        return OnlinePredictionSession.recover(
            Path(spec.directory) / CHECKPOINT_NAME,
            _journal(spec),
            spec.config,
            catalog=spec.catalog,
            executor=executor,
            origin=spec.origin,
        )
    return OnlinePredictionSession(
        spec.config,
        catalog=spec.catalog,
        executor=executor,
        origin=spec.origin,
        journal=_journal(spec),
    )


class _Worker:
    """Per-process state + the op dispatch table."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.registry = observe.MetricsRegistry()
        observe.set_registry(self.registry)
        faults.reset(spec.fault_plan)
        self._injected_sent = 0
        self.executor = make_executor(spec.executor_kind)
        self.session = _build_session(spec, self.executor)
        self.metered: MeteredSession | None = None
        if spec.metered:
            self.metered = MeteredSession(
                self.session,
                prefix="service",
                degraded_of=self.session,
                shard=spec.key,
            )

    @property
    def target(self):
        return self.metered if self.metered is not None else self.session

    def injected_delta(self) -> list[str]:
        plan = faults.active()
        if plan is None:
            return []
        delta = plan.injected[self._injected_sent:]
        self._injected_sent = len(plan.injected)
        return list(delta)

    # -- ops ---------------------------------------------------------------

    def state(self) -> dict:
        session = self.session
        return {
            "n_ingested": session.n_ingested,
            "degraded": session.degraded,
            "current_week": session.current_week,
            "n_quarantined": session.n_quarantined,
        }

    def journal_start(self) -> int | None:
        journal = self.session.journal
        return None if journal is None else journal.start_position

    def checkpoint(self) -> dict:
        assert self.spec.directory is not None
        return self.session.checkpoint(
            Path(self.spec.directory) / CHECKPOINT_NAME
        )

    def finalize_build(self, journal_fsync: str | int) -> None:
        journal = self.session.journal
        assert journal is not None, "finalize_build on a dirless shard"
        journal.sync()
        journal.fsync_policy = parse_fsync_policy(journal_fsync)
        self.checkpoint()
        self.metered = MeteredSession(
            self.session,
            prefix="service",
            degraded_of=self.session,
            shard=self.spec.key,
        )

    def seal(self) -> dict:
        """Final read-state snapshot, then a clean shutdown.

        The parent caches this payload on the handle so reads on a
        sealed shard (warnings, summary, fleet accounting) keep working
        after the process is gone — matching the inproc backend, where
        the dead shard's session object remains inspectable.
        """
        session = self.session
        final = {
            "warnings": session.warnings,
            "summary": session.summary(),
            "retrains": session.retrains,
            "retrain_failures": session.retrain_failures,
            "drift_status": session.drift_status(),
            "state": self.state(),
            "journal_start": self.journal_start(),
            "snapshot_metrics": self.registry.dump(),
        }
        journal = session.journal
        if journal is not None and not journal.closed:
            journal.close()
        self.executor.close()
        return final

    def dispatch(self, op: str, args: tuple) -> Any:
        if op == "ingest":
            return self.target.ingest(args[0])
        if op == "ingest_batch":
            return self.target.ingest_batch(args[0])
        if op == "advance":
            return self.target.advance(args[0])
        if op == "flush":
            return self.target.flush()
        if op == "warnings":
            return self.session.warnings
        if op == "summary":
            return self.session.summary()
        if op == "retrains":
            return self.session.retrains
        if op == "retrain_failures":
            return self.session.retrain_failures
        if op == "drift_status":
            return self.session.drift_status()
        if op == "state":
            return self.state()
        if op == "journal_start":
            return self.journal_start()
        if op == "snapshot_metrics":
            return self.registry.dump()
        if op == "checkpoint":
            return self.checkpoint()
        if op == "finalize_build":
            return self.finalize_build(args[0])
        if op == "ping":
            return os.getpid()
        raise ValueError(f"unknown worker op {op!r}")


def _send(conn: Connection, status, payload, n_ingested, injected) -> bool:
    """Reply, downgrading unpicklable error payloads; False if the
    parent is gone."""
    try:
        conn.send((status, payload, n_ingested, injected))
        return True
    except (BrokenPipeError, OSError):
        return False
    except Exception:
        if status != "error":
            raise
        conn.send(
            (status, RuntimeError(repr(payload)), n_ingested, injected)
        )
        return True


def worker_main(spec: WorkerSpec, conn: Connection) -> None:
    """Child-process entry point: build the shard, serve the pipe."""
    try:
        worker = _Worker(spec)
    except BaseException as exc:  # startup failed: report, then die
        _send(conn, "error", exc, 0, [])
        os._exit(1)
    if not _send(
        conn, "ready", None, worker.session.n_ingested,
        worker.injected_delta(),
    ):
        os._exit(1)
    while True:
        try:
            op, args = conn.recv()
        except (EOFError, OSError):
            # Parent gone.  Exit WITHOUT flushing: a recovered service
            # may already own our journal files (see module docstring).
            os._exit(1)
        if op == "seal":
            try:
                final = worker.seal()
            except BaseException as exc:
                _send(
                    conn, "error", exc, worker.session.n_ingested,
                    worker.injected_delta(),
                )
                os._exit(1)
            _send(
                conn, "ok", final, worker.session.n_ingested,
                worker.injected_delta(),
            )
            break
        try:
            payload = worker.dispatch(op, args)
            status = "ok"
        except Exception as exc:
            payload, status = exc, "error"
        if not _send(
            conn, status, payload, worker.session.n_ingested,
            worker.injected_delta(),
        ):
            os._exit(1)
    conn.close()


__all__ = ["WorkerSpec", "worker_main"]
