"""Multi-stream prediction service: shard the online pipeline by location.

One process, N independent prediction streams.  The service routes each
RAS event to a shard by a partition key (:mod:`repro.service.partition`),
runs one layered session stack per shard over a shared executor pool, and
owns a fleet-level checkpoint/journal directory so the whole fleet
recovers crash-consistently (:mod:`repro.service.service`)::

    from repro.service import PredictionService

    with PredictionService(config, fleet_dir="fleet") as service:
        for event in log:
            warnings.extend(service.ingest(event))
        warnings.extend(service.flush())
        service.checkpoint()
    # later, after a crash:
    service = PredictionService.recover("fleet")
"""

from repro.service.partition import (
    FleetRouter,
    HashRouter,
    LocationRouter,
    Router,
    RoutingRule,
    make_router,
    router_from_spec,
)
from repro.service.resharding import ReshardError
from repro.service.service import (
    FleetSummary,
    PredictionService,
    ShardDown,
)
from repro.service.supervisor import ShardHealth, ShardSupervisor

__all__ = [
    "FleetRouter",
    "FleetSummary",
    "HashRouter",
    "LocationRouter",
    "PredictionService",
    "ReshardError",
    "Router",
    "RoutingRule",
    "ShardDown",
    "ShardHealth",
    "ShardSupervisor",
    "make_router",
    "router_from_spec",
]
