"""Multi-stream prediction service: shard the online pipeline by location.

N independent prediction streams behind one router.  The service routes
each RAS event to a shard by a partition key
(:mod:`repro.service.partition`), places each shard through a pluggable
:class:`~repro.service.backends.ShardBackend` — in-process session
stacks over a shared executor pool by default, or one shared-nothing
worker process per shard (``backend="subprocess"``) for true multi-core
fleets — and owns a fleet-level checkpoint/journal directory so the
whole fleet recovers crash-consistently (:mod:`repro.service.service`)::

    from repro.service import PredictionService

    with PredictionService(config, fleet_dir="fleet") as service:
        for event in log:
            warnings.extend(service.ingest(event))
        warnings.extend(service.flush())
        service.checkpoint()
    # later, after a crash:
    service = PredictionService.recover("fleet")
"""

from repro.service.backends import (
    InprocBackend,
    ShardBackend,
    ShardHandle,
    SubprocessBackend,
    make_backend,
)
from repro.service.partition import (
    FleetRouter,
    HashRouter,
    LocationRouter,
    Router,
    RoutingRule,
    make_router,
    router_from_spec,
)
from repro.service.resharding import ReshardError
from repro.service.service import (
    FleetSummary,
    PredictionService,
    ShardDown,
)
from repro.service.supervisor import ShardHealth, ShardSupervisor

__all__ = [
    "FleetRouter",
    "FleetSummary",
    "HashRouter",
    "InprocBackend",
    "LocationRouter",
    "PredictionService",
    "ReshardError",
    "Router",
    "RoutingRule",
    "ShardBackend",
    "ShardDown",
    "ShardHandle",
    "ShardHealth",
    "ShardSupervisor",
    "SubprocessBackend",
    "make_backend",
    "make_router",
    "router_from_spec",
]
