"""Shard supervision: automatic restore with backoff + a circuit breaker.

A dead shard in :class:`~repro.service.PredictionService` stays dead
until someone calls ``restore_shard()`` — fine in a test, not in a
served fleet whose whole purpose is riding out the failures it predicts.
:class:`ShardSupervisor` closes the loop:

* **detection** — :meth:`poll` compares ``service.down_shards`` against
  its ledger and schedules a restore for every newly-down shard;
* **capped exponential backoff** — the k-th *consecutive* crash (within
  ``crash_window`` seconds of the last restore) waits
  ``min(backoff_base * 2**(k-1), backoff_cap)`` before the next restore
  attempt, so a flapping shard does not hot-loop through recovery;
* **circuit breaker** — past ``max_restarts`` consecutive crashes the
  shard is parked ``quarantined``: no further automatic restores, events
  routed to it keep failing per-event (the serving layer answers
  ``shard_down`` for exactly those events while the rest of the batch
  commits), until an operator calls :meth:`release`;
* **rolling restart** — :meth:`rolling_restart` drains/checkpoints/
  rejoins the fleet's shards one at a time through
  :meth:`PredictionService.restart_shard`, proving each shard's durable
  state can carry it while the rest keep serving.

The supervisor is a *pull*-model control loop: it only acts inside
:meth:`poll`, and never spawns threads, so the serving layer can run it
on the same engine thread that owns the service (no new locking domain)
and tests can drive it with a fake clock.

Observability: ``fleet.shard_restarts{shard=...}`` counts automatic
restores, ``fleet.restore_failures{shard=...}`` counts restore attempts
that themselves crashed, ``fleet.quarantines{shard=...}`` counts circuit
openings, and the ``fleet.quarantined`` gauge is the current number of
parked shards.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro import observe

if TYPE_CHECKING:
    from repro.service.service import PredictionService

#: supervisor states a shard can be in
UP = "up"
DOWN = "down"
QUARANTINED = "quarantined"


@dataclass(frozen=True, slots=True)
class ShardHealth:
    """One shard's control-plane view, as reported by :meth:`status`."""

    key: str
    state: str
    #: successful automatic restores so far
    restarts: int
    #: consecutive crashes inside the current crash window
    crashes: int
    #: clock time of the last successful restore (None: never restored)
    last_restart: float | None
    #: clock time of the next scheduled restore attempt (None: none due)
    next_attempt: float | None
    #: message of the error that caused the last crash/failed restore
    last_error: str | None


@dataclass
class _Ledger:
    """Supervisor-private per-shard bookkeeping."""

    restarts: int = 0
    crashes: int = 0
    last_restart: float | None = None
    next_attempt: float | None = None
    quarantined: bool = False
    last_error: str | None = None
    pending: bool = field(default=False)


class ShardSupervisor:
    """Watch a service's shards; restore crashed ones, park flapping ones.

    ``clock`` defaults to :func:`time.monotonic`; tests inject a fake so
    backoff schedules are deterministic.  All methods must be called
    from the thread that owns the service (the supervisor adds no
    synchronization of its own beyond the service's internal lock).
    """

    def __init__(
        self,
        service: "PredictionService",
        *,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        max_restarts: int = 5,
        crash_window: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if backoff_base <= 0 or backoff_cap <= 0:
            raise ValueError("backoff_base and backoff_cap must be positive")
        if max_restarts < 1:
            raise ValueError(
                f"max_restarts must be >= 1, got {max_restarts}"
            )
        self.service = service
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_restarts = max_restarts
        self.crash_window = crash_window
        self._clock = clock
        self._ledger: dict[str, _Ledger] = {}

    # -- the control loop --------------------------------------------------

    def poll(self, now: float | None = None) -> list[str]:
        """One supervision tick; returns the keys restored this tick.

        Detects newly-down shards, schedules their restores with
        backoff, attempts the restores that have come due, and opens the
        circuit on shards that keep crashing.  Safe to call at any
        frequency — an early call just finds nothing due yet.
        """
        if now is None:
            now = self._clock()
        # Under the subprocess backend, a worker can die without any
        # traffic noticing; reap first so silent worker deaths enter the
        # same down → backoff → restore (→ quarantine) pipeline as
        # delivery-detected crashes.
        self.service.reap_workers()
        down = self.service.down_shards
        for key in sorted(down):
            entry = self._ledger.setdefault(key, _Ledger())
            if entry.pending or entry.quarantined:
                continue
            self._note_crash(entry, key, now, error=None)
        restored: list[str] = []
        for key, entry in self._ledger.items():
            if (
                not entry.pending
                or entry.quarantined
                or key not in down
                or entry.next_attempt is None
                or now < entry.next_attempt
            ):
                continue
            try:
                self.service.restore_shard(key)
            except Exception as exc:  # noqa: BLE001 — any restore crash
                observe.counter(
                    "fleet.restore_failures", shard=key
                ).inc()
                entry.pending = False
                self._note_crash(entry, key, now, error=str(exc))
            else:
                entry.pending = False
                entry.restarts += 1
                entry.last_restart = now
                entry.next_attempt = None
                restored.append(key)
                observe.counter("fleet.shard_restarts", shard=key).inc()
        self._update_gauge()
        return restored

    def _note_crash(
        self, entry: _Ledger, key: str, now: float, error: str | None
    ) -> None:
        """Record one observed crash; schedule a restore or open the
        circuit."""
        within_window = (
            entry.last_restart is not None
            and now - entry.last_restart <= self.crash_window
        )
        entry.crashes = entry.crashes + 1 if within_window or error else 1
        if error is not None:
            entry.last_error = error
        if entry.crashes > self.max_restarts:
            entry.quarantined = True
            entry.next_attempt = None
            entry.pending = False
            observe.counter("fleet.quarantines", shard=key).inc()
            return
        delay = min(
            self.backoff_cap,
            self.backoff_base * (2 ** (entry.crashes - 1)),
        )
        entry.next_attempt = now + delay
        entry.pending = True

    def _update_gauge(self) -> None:
        observe.gauge("fleet.quarantined").set(
            sum(1 for e in self._ledger.values() if e.quarantined)
        )

    # -- operator surface --------------------------------------------------

    def status(self) -> dict[str, ShardHealth]:
        """Every known shard's health, keyed by shard key."""
        report: dict[str, ShardHealth] = {}
        down = self.service.down_shards
        keys = list(self.service.shard_keys)
        keys.extend(k for k in self._ledger if k not in keys)
        for key in keys:
            entry = self._ledger.get(key, _Ledger())
            if entry.quarantined:
                state = QUARANTINED
            elif key in down:
                state = DOWN
            else:
                state = UP
            report[key] = ShardHealth(
                key=key,
                state=state,
                restarts=entry.restarts,
                crashes=entry.crashes,
                last_restart=entry.last_restart,
                next_attempt=entry.next_attempt,
                last_error=entry.last_error,
            )
        return report

    def quarantine(self, key: str) -> None:
        """Force a shard's circuit open: no automatic restores for it.

        Does not kill a live shard — it parks the *supervision* of a
        down or flapping one so an operator can investigate.
        """
        entry = self._ledger.setdefault(key, _Ledger())
        if not entry.quarantined:
            entry.quarantined = True
            entry.pending = False
            entry.next_attempt = None
            observe.counter("fleet.quarantines", shard=key).inc()
        self._update_gauge()

    def release(self, key: str) -> None:
        """Close a shard's circuit: reset its crash count and, if it is
        down, schedule an immediate restore attempt."""
        entry = self._ledger.setdefault(key, _Ledger())
        entry.quarantined = False
        entry.crashes = 0
        entry.last_error = None
        if key in self.service.down_shards:
            entry.next_attempt = self._clock()
            entry.pending = True
        self._update_gauge()

    def rolling_restart(self) -> list[str]:
        """Restart every up shard, one at a time; returns the keys done.

        Down and quarantined shards are skipped — a rolling restart
        proves the *healthy* fleet's durable state, it is not a recovery
        tool.  The serving layer interleaves these per-shard calls with
        live traffic, so the fleet keeps accepting throughout.
        """
        restarted: list[str] = []
        for key in self.restart_plan():
            self.service.restart_shard(key)
            restarted.append(key)
            observe.counter("fleet.rolling_restarts", shard=key).inc()
        return restarted

    def restart_plan(self) -> list[str]:
        """The shards :meth:`rolling_restart` would touch, in order."""
        down = self.service.down_shards
        return [
            key
            for key in self.service.shard_keys
            if key not in down
            and not self._ledger.get(key, _Ledger()).quarantined
        ]


__all__ = ["ShardHealth", "ShardSupervisor", "DOWN", "QUARANTINED", "UP"]
