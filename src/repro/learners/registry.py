"""Base-learner registry.

Maps learner names to factories so framework configuration (and user
extensions) can refer to learners by name.  Registering a new method is
the paper's extension point: "other predictive methods can be easily
incorporated into our framework".
"""

from __future__ import annotations

from collections.abc import Callable

from repro.learners.association import AssociationRuleLearner
from repro.learners.base import BaseLearner
from repro.learners.counting import CountThresholdLearner
from repro.learners.distribution import DistributionLearner
from repro.learners.statistical import StatisticalRuleLearner
from repro.raslog.catalog import EventCatalog

LearnerFactory = Callable[..., BaseLearner]

_REGISTRY: dict[str, LearnerFactory] = {}


def register_learner(
    name: str, factory: LearnerFactory, overwrite: bool = False
) -> None:
    """Add a learner factory under ``name``."""
    if not name:
        raise ValueError("learner name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"learner {name!r} is already registered")
    _REGISTRY[name] = factory


def create_learner(
    name: str, catalog: EventCatalog | None = None, **kwargs
) -> BaseLearner:
    """Instantiate a registered learner."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown learner {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None
    return factory(catalog=catalog, **kwargs)


def available_learners() -> list[str]:
    return sorted(_REGISTRY)


#: The paper's mixture-of-experts consultation order (Section 4.1):
#: association rules first, then statistical rules, then the distribution.
DEFAULT_LEARNERS: tuple[str, ...] = ("association", "statistical", "distribution")

register_learner("association", AssociationRuleLearner)
register_learner("statistical", StatisticalRuleLearner)
register_learner("distribution", DistributionLearner)
#: Extension learner (not part of the paper's default ensemble).
register_learner("count", CountThresholdLearner)
