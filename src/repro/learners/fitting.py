"""Maximum-likelihood fitting of inter-arrival distributions (Figure 5).

Implements the three candidate families the paper examines — Weibull,
exponential and log-normal — with closed-form MLEs where they exist and a
Newton iteration on the Weibull shape profile equation otherwise.  Model
selection uses log-likelihood (the families share a two-parameter budget,
except the exponential which is nested in the Weibull), with the
Kolmogorov–Smirnov statistic reported for diagnostics.

The paper's SDSC example fit is ``F(t) = 1 - exp(-(t/19984.8)^0.507936)``
— a Weibull with shape ≈ 0.508, i.e. strongly clustered failures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class FittedDistribution:
    """A fitted CDF with the interface the distribution learner needs."""

    name: str
    params: tuple[float, ...]
    loglik: float
    ks_statistic: float
    n: int

    def cdf(self, t: "np.ndarray | float") -> "np.ndarray | float":
        t = np.asarray(t, dtype=np.float64)
        if self.name == "weibull":
            shape, scale = self.params
            out = 1.0 - np.exp(-np.power(np.maximum(t, 0.0) / scale, shape))
        elif self.name == "exponential":
            (rate,) = self.params
            out = 1.0 - np.exp(-rate * np.maximum(t, 0.0))
        elif self.name == "lognormal":
            mu, sigma = self.params
            safe = np.maximum(t, np.finfo(np.float64).tiny)
            z = (np.log(safe) - mu) / sigma
            out = 0.5 * (1.0 + _erf_vec(z / math.sqrt(2.0)))
            out = np.where(t <= 0.0, 0.0, out)
        else:  # pragma: no cover - constructor-controlled
            raise ValueError(f"unknown distribution {self.name!r}")
        return out if out.ndim else float(out)

    def quantile(self, q: float) -> float:
        """Inverse CDF, ``F⁻¹(q)``."""
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile level must lie in (0, 1), got {q}")
        if self.name == "weibull":
            shape, scale = self.params
            return scale * (-math.log1p(-q)) ** (1.0 / shape)
        if self.name == "exponential":
            (rate,) = self.params
            return -math.log1p(-q) / rate
        if self.name == "lognormal":
            mu, sigma = self.params
            return math.exp(mu + sigma * _norm_ppf(q))
        raise ValueError(f"unknown distribution {self.name!r}")  # pragma: no cover


def _erf_vec(x: np.ndarray) -> np.ndarray:
    # numpy has no erf; use scipy's if importable, else math.erf elementwise.
    try:
        from scipy.special import erf  # noqa: PLC0415

        return erf(x)
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return np.vectorize(math.erf)(x)


def _norm_ppf(q: float) -> float:
    from scipy.special import ndtri  # noqa: PLC0415

    return float(ndtri(q))


def _validate_sample(data: np.ndarray) -> np.ndarray:
    x = np.asarray(data, dtype=np.float64)
    x = x[x > 0.0]
    if len(x) < 3:
        raise ValueError(
            f"need at least 3 positive inter-arrival samples, got {len(x)}"
        )
    return x


def _ks(x: np.ndarray, cdf_values: np.ndarray) -> float:
    """Two-sided KS statistic of sorted sample ``x`` against fitted CDF."""
    n = len(x)
    ecdf_hi = np.arange(1, n + 1) / n
    ecdf_lo = np.arange(0, n) / n
    return float(
        max(np.abs(ecdf_hi - cdf_values).max(), np.abs(cdf_values - ecdf_lo).max())
    )


def fit_exponential(data: np.ndarray) -> FittedDistribution:
    """Closed-form MLE: rate = 1 / mean."""
    x = _validate_sample(data)
    rate = 1.0 / float(x.mean())
    loglik = float(len(x) * math.log(rate) - rate * x.sum())
    xs = np.sort(x)
    ks = _ks(xs, 1.0 - np.exp(-rate * xs))
    return FittedDistribution("exponential", (rate,), loglik, ks, len(x))


def fit_lognormal(data: np.ndarray) -> FittedDistribution:
    """Closed-form MLE on the log sample."""
    x = _validate_sample(data)
    logs = np.log(x)
    mu = float(logs.mean())
    sigma = float(logs.std())
    if sigma <= 0:
        raise ValueError("degenerate sample: zero variance in log space")
    n = len(x)
    loglik = float(
        -n * math.log(sigma)
        - n * 0.5 * math.log(2.0 * math.pi)
        - logs.sum()
        - ((logs - mu) ** 2).sum() / (2.0 * sigma**2)
    )
    fitted = FittedDistribution("lognormal", (mu, sigma), loglik, 0.0, n)
    xs = np.sort(x)
    ks = _ks(xs, np.asarray(fitted.cdf(xs)))
    return FittedDistribution("lognormal", (mu, sigma), loglik, ks, n)


def _weibull_shape_equation(k: float, x: np.ndarray, logs: np.ndarray) -> tuple[float, float]:
    """Profile-likelihood shape equation g(k) and its derivative g'(k).

    g(k) = Σ x^k ln x / Σ x^k − 1/k − mean(ln x) = 0 at the MLE.
    """
    xk = np.power(x, k)
    s0 = xk.sum()
    s1 = float((xk * logs).sum())
    s2 = float((xk * logs * logs).sum())
    g = s1 / s0 - 1.0 / k - float(logs.mean())
    gprime = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k)
    return g, gprime


def fit_weibull(
    data: np.ndarray, tol: float = 1e-10, max_iter: int = 200
) -> FittedDistribution:
    """Newton–Raphson MLE for the two-parameter Weibull."""
    x = _validate_sample(data)
    logs = np.log(x)
    if float(logs.std()) == 0.0:
        raise ValueError("degenerate sample: all inter-arrivals identical")
    # Method-of-moments-flavoured starting point (Menon's estimator).
    k = 1.2 / float(logs.std()) * (math.pi / math.sqrt(6.0)) / 1.2
    k = min(max(k, 0.05), 20.0)
    with np.errstate(all="ignore"):
        for _ in range(max_iter):
            g, gprime = _weibull_shape_equation(k, x, logs)
            if not (math.isfinite(g) and math.isfinite(gprime)) or gprime == 0.0:
                raise ValueError(
                    "Weibull MLE diverged on a near-degenerate sample"
                )
            step = g / gprime
            k_new = k - step
            if k_new <= 0:
                k_new = k / 2.0
            k_new = min(k_new, 200.0)
            if abs(k_new - k) < tol * max(1.0, k):
                k = k_new
                break
            k = k_new
    shape = float(k)
    scale = float(np.power(np.power(x, shape).mean(), 1.0 / shape))
    n = len(x)
    loglik = float(
        n * math.log(shape)
        - n * shape * math.log(scale)
        + (shape - 1.0) * logs.sum()
        - np.power(x / scale, shape).sum()
    )
    if not (math.isfinite(shape) and math.isfinite(scale) and math.isfinite(loglik)):
        raise ValueError(
            f"Weibull MLE diverged on a near-degenerate sample "
            f"(shape={shape}, scale={scale})"
        )
    fitted = FittedDistribution("weibull", (shape, scale), loglik, 0.0, n)
    xs = np.sort(x)
    ks = _ks(xs, np.asarray(fitted.cdf(xs)))
    return FittedDistribution("weibull", (shape, scale), loglik, ks, n)


_FITTERS = {
    "weibull": fit_weibull,
    "exponential": fit_exponential,
    "lognormal": fit_lognormal,
}

DISTRIBUTION_FAMILIES = tuple(_FITTERS)


def fit_family(name: str, data: np.ndarray) -> FittedDistribution:
    try:
        fitter = _FITTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown family {name!r}; choose from {sorted(_FITTERS)}"
        ) from None
    return fitter(data)


def fit_best(
    data: np.ndarray,
    families: tuple[str, ...] = DISTRIBUTION_FAMILIES,
) -> FittedDistribution:
    """Fit all requested families and return the max-log-likelihood one."""
    if not families:
        raise ValueError("need at least one family")
    fits: list[FittedDistribution] = []
    errors: list[str] = []
    for fam in families:
        try:
            fitted = fit_family(fam, data)
        except (ValueError, FloatingPointError) as exc:
            errors.append(f"{fam}: {exc}")
            continue
        if not math.isfinite(fitted.loglik):
            errors.append(f"{fam}: non-finite log-likelihood")
            continue
        fits.append(fitted)
    if not fits:
        raise ValueError("no family could be fitted: " + "; ".join(errors))
    return max(fits, key=lambda f: f.loglik)
