"""Probability-distribution base learner (Section 4.1, third base method).

Unlike the other two methods, which exploit *short-term* correlations, this
learner targets failures with no nearby precursor at all: it fits the
long-term distribution of inter-arrival times between adjacent fatal
events (Weibull / exponential / log-normal, chosen by maximum likelihood)
and warns whenever the elapsed time since the last failure makes the
fitted CDF exceed a threshold — the paper's example: with
``F(t) = 1 - exp(-(t/19984.8)^0.508)`` and threshold 0.6, a warning fires
once 20 000 s have passed since the last failure (F = 0.63).
"""

from __future__ import annotations

from repro.learners.base import BaseLearner
from repro.learners.fitting import (
    DISTRIBUTION_FAMILIES,
    FittedDistribution,
    fit_best,
)
from repro.learners.rules import DistributionRule, Rule
from repro.raslog.catalog import EventCatalog
from repro.raslog.store import EventLog


class DistributionLearner(BaseLearner):
    """Fits failure inter-arrivals and emits one threshold-crossing rule."""

    name = "distribution"

    def __init__(
        self,
        catalog: EventCatalog | None = None,
        threshold: float = 0.6,
        families: tuple[str, ...] = DISTRIBUTION_FAMILIES,
        min_samples: int = 10,
    ) -> None:
        super().__init__(catalog)
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must lie in (0, 1), got {threshold}")
        if min_samples < 3:
            raise ValueError(f"min_samples must be >= 3, got {min_samples}")
        self.threshold = threshold
        self.families = families
        self.min_samples = min_samples
        #: Last fit, kept for inspection (Figure 5 reporting).
        self.last_fit: FittedDistribution | None = None

    def fit(self, log: EventLog, censor_below: float = 0.0) -> FittedDistribution:
        """Fit the inter-arrival distribution of the log's fatal events.

        ``censor_below`` drops gaps shorter than the given duration before
        fitting.  The learner's role in the ensemble is *long-term*
        behaviour — failures with no short-term precursor — and the
        sub-window gaps inside failure bursts are already the statistical
        learner's territory; censoring them keeps the two experts
        complementary.  Falls back to the uncensored sample when censoring
        leaves too few gaps.
        """
        fatal = log.fatal(self.catalog)
        gaps = fatal.interarrivals()
        gaps = gaps[gaps > 0.0]
        censored = gaps[gaps > censor_below] if censor_below > 0.0 else gaps
        if len(censored) >= self.min_samples:
            gaps = censored
        if len(gaps) < self.min_samples:
            raise ValueError(
                f"not enough failure inter-arrivals to fit: {len(gaps)} "
                f"< {self.min_samples}"
            )
        fitted = fit_best(gaps, self.families)
        self.last_fit = fitted
        return fitted

    def train(self, log: EventLog, window: float) -> list[Rule]:
        try:
            fitted = self.fit(log, censor_below=window)
        except ValueError:
            return []
        return [
            DistributionRule(
                distribution=fitted.name,
                params=tuple(round(p, 6) for p in fitted.params),
                threshold=self.threshold,
                quantile_time=fitted.quantile(self.threshold),
            )
        ]
