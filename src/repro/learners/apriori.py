"""Level-wise Apriori frequent-itemset mining.

A from-scratch implementation of the classic algorithm (Agrawal & Srikant)
used by the association-rule learner.  Items are arbitrary hashables;
internally transactions are interned to dense integer ids and stored as
frozensets, and candidate counting uses the standard subset-prune: a
(k+1)-candidate survives only if all of its k-subsets were frequent.

Failure prediction mines *rare* patterns, so ``min_support`` is typically
very low (the paper uses 0.01) and the practical guard is ``max_len`` on
itemset size rather than support pruning alone.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass
from itertools import combinations


@dataclass(frozen=True, slots=True)
class ItemsetCounts:
    """Frequent itemsets with absolute counts over ``n_transactions``."""

    counts: dict[frozenset, int]
    n_transactions: int

    def support(self, itemset: Iterable[Hashable]) -> float:
        key = frozenset(itemset)
        if self.n_transactions == 0:
            return 0.0
        return self.counts.get(key, 0) / self.n_transactions

    def __len__(self) -> int:
        return len(self.counts)

    def __contains__(self, itemset: Iterable[Hashable]) -> bool:
        return frozenset(itemset) in self.counts


def _candidates(
    frequent_k: list[frozenset], frequent_set: set[frozenset], k: int
) -> list[frozenset]:
    """Join step + prune step: (k+1)-candidates from frequent k-itemsets."""
    # Canonical sorted-tuple form for prefix joining.
    sorted_items = sorted(tuple(sorted(s)) for s in frequent_k)
    out: list[frozenset] = []
    n = len(sorted_items)
    for i in range(n):
        a = sorted_items[i]
        for j in range(i + 1, n):
            b = sorted_items[j]
            if a[: k - 1] != b[: k - 1]:
                break  # sorted order: no further shared prefix
            candidate = frozenset(a) | frozenset(b)
            # Prune: every k-subset must be frequent.
            if all(
                frozenset(sub) in frequent_set
                for sub in combinations(sorted(candidate), k)
            ):
                out.append(candidate)
    return out


def apriori(
    transactions: Sequence[Iterable[Hashable]],
    min_support: float,
    max_len: int | None = None,
) -> ItemsetCounts:
    """All itemsets with support ≥ ``min_support`` (and size ≤ ``max_len``).

    Support is the fraction of transactions containing the itemset.
    """
    if not 0.0 < min_support <= 1.0:
        raise ValueError(f"min_support must lie in (0, 1], got {min_support}")
    if max_len is not None and max_len < 1:
        raise ValueError(f"max_len must be >= 1, got {max_len}")

    tx = [frozenset(t) for t in transactions]
    n = len(tx)
    result: dict[frozenset, int] = {}
    if n == 0:
        return ItemsetCounts(counts=result, n_transactions=0)
    min_count = min_support * n

    # L1
    item_counts: dict[Hashable, int] = defaultdict(int)
    for t in tx:
        for item in t:
            item_counts[item] += 1
    frequent = [
        frozenset((item,)) for item, c in item_counts.items() if c >= min_count
    ]
    for s in frequent:
        (item,) = s
        result[s] = item_counts[item]

    k = 1
    while frequent and (max_len is None or k < max_len):
        candidates = _candidates(frequent, set(frequent), k)
        if not candidates:
            break
        counts: dict[frozenset, int] = defaultdict(int)
        for t in tx:
            if len(t) <= k:
                continue
            for c in candidates:
                if c <= t:
                    counts[c] += 1
        frequent = [c for c in candidates if counts[c] >= min_count]
        for c in frequent:
            result[c] = counts[c]
        k += 1

    return ItemsetCounts(counts=result, n_transactions=n)


def association_rules_from(
    itemsets: ItemsetCounts,
    consequents: Iterable[Hashable],
    min_confidence: float,
) -> list[tuple[frozenset, Hashable, float, float]]:
    """Rules ``antecedent → consequent`` targeted at given consequents.

    Returns ``(antecedent, consequent, support, confidence)`` tuples for
    every frequent itemset containing exactly one consequent item, where
    ``confidence = support(itemset) / support(antecedent)``.  Antecedent
    supports of frequent itemsets are always available by the Apriori
    downward-closure property.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ValueError(
            f"min_confidence must lie in (0, 1], got {min_confidence}"
        )
    targets = set(consequents)
    out: list[tuple[frozenset, Hashable, float, float]] = []
    for itemset, count in itemsets.counts.items():
        inside = itemset & targets
        if len(inside) != 1:
            continue
        (consequent,) = inside
        antecedent = itemset - {consequent}
        if not antecedent:
            continue
        ante_count = itemsets.counts.get(antecedent)
        if ante_count is None:  # pragma: no cover - guaranteed by closure
            continue
        confidence = count / ante_count
        if confidence >= min_confidence:
            support = count / itemsets.n_transactions
            out.append((antecedent, consequent, support, confidence))
    return out
