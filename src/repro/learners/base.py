"""Base-learner protocol.

A base learner turns a training :class:`~repro.raslog.store.EventLog` into
a list of :class:`~repro.learners.rules.Rule`.  The meta-learner treats
learners uniformly through this interface, which is what makes the
framework extensible ("other predictive methods can be easily
incorporated" — Section 4.1): implement ``train`` and register a factory.
"""

from __future__ import annotations

import abc

from repro.learners.rules import Rule
from repro.raslog.catalog import EventCatalog, default_catalog
from repro.raslog.store import EventLog


class BaseLearner(abc.ABC):
    """Interface shared by all base predictive methods."""

    #: Short identifier used in rule provenance, ensemble ordering and
    #: experiment output ("association", "statistical", "distribution", ...).
    name: str = "base"

    def __init__(self, catalog: EventCatalog | None = None) -> None:
        self.catalog = catalog or default_catalog()

    @abc.abstractmethod
    def train(self, log: EventLog, window: float) -> list[Rule]:
        """Learn failure-pattern rules from a (categorized) training log.

        ``window`` is the rule-generation window ``Wp`` in seconds — the
        same duration later used as the prediction window.
        """

    # -- shared helpers ---------------------------------------------------

    def fatal_mask(self, log: EventLog) -> list[bool]:
        """Catalog-level fatality per event of the log."""
        catalog = self.catalog
        return [
            e.entry_data in catalog and catalog.is_fatal_code(e.entry_data)
            for e in log
        ]

    def split_fatal(self, log: EventLog) -> tuple[EventLog, EventLog]:
        """(fatal, non-fatal) views of the log."""
        return log.fatal(self.catalog), log.nonfatal(self.catalog)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
