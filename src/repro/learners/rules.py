"""Failure-pattern rules produced by the base learners.

Three rule species mirror the paper's three base methods:

* :class:`AssociationRule` — ``{non-fatal precursors} → fatal`` with
  support and confidence (association-rule learner);
* :class:`StatisticalRule` — "k failures within the window ⇒ another
  failure with probability p" (statistical-rule learner);
* :class:`DistributionRule` — "elapsed time since the last failure exceeds
  the fitted CDF's q-quantile ⇒ failure imminent" (probability-distribution
  learner).

Every rule has a stable ``key`` (used by the knowledge repository for churn
accounting, Figure 12) and a ``predicted`` target: a concrete fatal code,
or :data:`ANY_FAILURE` when the rule forecasts *some* failure rather than a
specific type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

#: Wildcard target for rules that predict "a failure" without naming a type.
ANY_FAILURE = "*"

RuleKey = tuple


@dataclass(frozen=True, slots=True)
class AssociationRule:
    """``antecedent → consequent`` with the mined support/confidence."""

    antecedent: frozenset[str]
    consequent: str
    support: float
    confidence: float

    def __post_init__(self) -> None:
        if not self.antecedent:
            raise ValueError("association rule needs a non-empty antecedent")
        if self.consequent in self.antecedent:
            raise ValueError(
                f"consequent {self.consequent!r} appears in its own antecedent"
            )
        if not 0.0 < self.support <= 1.0:
            raise ValueError(f"support must lie in (0, 1], got {self.support}")
        if not 0.0 < self.confidence <= 1.0:
            raise ValueError(f"confidence must lie in (0, 1], got {self.confidence}")

    @property
    def kind(self) -> str:
        return "association"

    @property
    def predicted(self) -> str:
        return self.consequent

    @property
    def key(self) -> RuleKey:
        return ("assoc", self.consequent, tuple(sorted(self.antecedent)))

    def describe(self) -> str:
        body = ", ".join(sorted(self.antecedent))
        return f"{{{body}}} -> {self.consequent}: {self.confidence:.2f}"


@dataclass(frozen=True, slots=True)
class StatisticalRule:
    """``k`` failures inside ``window`` seconds ⇒ another failure."""

    k: int
    window: float
    probability: float

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must lie in (0, 1], got {self.probability}"
            )

    @property
    def kind(self) -> str:
        return "statistical"

    @property
    def predicted(self) -> str:
        return ANY_FAILURE

    @property
    def key(self) -> RuleKey:
        return ("stat", self.k, round(self.window, 3))

    def describe(self) -> str:
        return (
            f"{self.k} failures within {self.window:.0f}s "
            f"=> another failure: {self.probability:.2f}"
        )


@dataclass(frozen=True, slots=True)
class DistributionRule:
    """Elapsed time since the last failure ≥ ``quantile_time`` ⇒ warn.

    ``quantile_time`` is ``F⁻¹(threshold)`` of the fitted inter-arrival
    distribution (e.g. F(20000 s) = 0.63 > 0.6 in the paper's SDSC
    example).
    """

    distribution: str
    params: tuple[float, ...]
    threshold: float
    quantile_time: float

    def __post_init__(self) -> None:
        import math

        if not 0.0 < self.threshold < 1.0:
            raise ValueError(f"threshold must lie in (0, 1), got {self.threshold}")
        if not math.isfinite(self.quantile_time) or self.quantile_time <= 0:
            raise ValueError(
                f"quantile_time must be positive and finite, "
                f"got {self.quantile_time}"
            )

    @property
    def kind(self) -> str:
        return "distribution"

    @property
    def predicted(self) -> str:
        return ANY_FAILURE

    @property
    def key(self) -> RuleKey:
        # Bucket the learned quantile so a retrain that barely moves the
        # fit counts as the "same" rule, while a real distribution shift
        # registers as churn.
        bucket = round(self.quantile_time / 300.0)
        return ("dist", self.distribution, self.threshold, bucket)

    def describe(self) -> str:
        return (
            f"{self.distribution}{self.params} elapsed >= "
            f"{self.quantile_time:.0f}s (F >= {self.threshold:.2f}) => failure"
        )


@dataclass(frozen=True, slots=True)
class CountRule:
    """``count`` occurrences of ``code`` inside the window ⇒ ``consequent``.

    The count-threshold learner's rule species: unlike association rules,
    which key on the *presence* of a set of distinct precursors, a count
    rule keys on the *volume* of a single non-fatal type (e.g. a flood of
    correctable-ECC warnings heralding an uncorrectable failure).
    """

    code: str
    count: int
    window: float
    consequent: str
    support: float
    confidence: float

    def __post_init__(self) -> None:
        if self.count < 2:
            raise ValueError(f"count must be >= 2, got {self.count}")
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if self.code == self.consequent:
            raise ValueError(f"count rule on {self.code} predicts itself")
        if not 0.0 < self.support <= 1.0:
            raise ValueError(f"support must lie in (0, 1], got {self.support}")
        if not 0.0 < self.confidence <= 1.0:
            raise ValueError(
                f"confidence must lie in (0, 1], got {self.confidence}"
            )

    @property
    def kind(self) -> str:
        return "count"

    @property
    def predicted(self) -> str:
        return self.consequent

    @property
    def key(self) -> RuleKey:
        return ("count", self.code, self.count, self.consequent)

    def describe(self) -> str:
        return (
            f"{self.count}x {self.code} within {self.window:.0f}s -> "
            f"{self.consequent}: {self.confidence:.2f}"
        )


Rule = Union[AssociationRule, StatisticalRule, DistributionRule, CountRule]


def rule_sort_key(rule: Rule) -> tuple:
    """Deterministic ordering for reporting and stable iteration."""
    return (rule.kind, rule.key)
