"""Count-threshold base learner (a Section 7 "popularize the base
learners" extension).

The association learner keys on the *presence* of distinct precursor
types; this learner keys on the *volume* of a single type: a flood of the
same warning (correctable ECC, network retransmits) often precedes the
corresponding failure.  On the training set it builds, for each fatal
event, the multiset of non-fatal codes inside the rule-generation window,
and emits ``CountRule(code, n) → fatal`` for every (code, n) whose
support and confidence clear the thresholds — the same permissive-mine /
revise-later contract as the paper's own learners.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.learners.base import BaseLearner
from repro.learners.rules import CountRule, Rule
from repro.raslog.catalog import EventCatalog
from repro.raslog.store import EventLog


class CountThresholdLearner(BaseLearner):
    """Mines ``n× code within Wp → fatal`` volume rules."""

    name = "count"

    def __init__(
        self,
        catalog: EventCatalog | None = None,
        min_support: float = 0.01,
        min_confidence: float = 0.2,
        min_count: int = 2,
        max_count: int = 32,
    ) -> None:
        super().__init__(catalog)
        if not 0.0 < min_support <= 1.0:
            raise ValueError(f"min_support must lie in (0, 1], got {min_support}")
        if not 0.0 < min_confidence <= 1.0:
            raise ValueError(
                f"min_confidence must lie in (0, 1], got {min_confidence}"
            )
        if min_count < 2:
            raise ValueError(f"min_count must be >= 2, got {min_count}")
        if max_count < min_count:
            raise ValueError("max_count must be >= min_count")
        self.min_support = min_support
        self.min_confidence = min_confidence
        self.min_count = min_count
        self.max_count = max_count

    def window_counts(
        self, log: EventLog, window: float
    ) -> list[tuple[str, Counter]]:
        """Per fatal event: (fatal code, multiset of preceding non-fatals)."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        fatal = log.fatal(self.catalog)
        nonfatal = log.nonfatal(self.catalog)
        nf_times = nonfatal.timestamps
        out: list[tuple[str, Counter]] = []
        for event in fatal:
            lo = int(np.searchsorted(nf_times, event.timestamp - window, "left"))
            hi = int(np.searchsorted(nf_times, event.timestamp, "left"))
            counts = Counter(nonfatal[i].entry_data for i in range(lo, hi))
            out.append((event.entry_data, counts))
        return out

    def train(self, log: EventLog, window: float) -> list[Rule]:
        transactions = self.window_counts(log, window)
        n_tx = len(transactions)
        if n_tx == 0:
            return []

        # support count of (code, n, fatal): windows before `fatal` where
        # `code` appeared at least n times; and of (code, n) regardless of
        # the fatal type, for the confidence denominator.
        joint: Counter = Counter()
        marginal: Counter = Counter()
        for fatal_code, counts in transactions:
            for code, c in counts.items():
                top = min(c, self.max_count)
                for n in range(self.min_count, top + 1):
                    joint[(code, n, fatal_code)] += 1
                    marginal[(code, n)] += 1

        min_count_abs = self.min_support * n_tx
        rules: list[Rule] = []
        best_per_pair: dict[tuple[str, str], CountRule] = {}
        for (code, n, fatal_code), cnt in joint.items():
            if cnt < min_count_abs:
                continue
            confidence = cnt / marginal[(code, n)]
            if confidence < self.min_confidence:
                continue
            rule = CountRule(
                code=code,
                count=n,
                window=window,
                consequent=fatal_code,
                support=cnt / n_tx,
                confidence=confidence,
            )
            # Keep only the most specific useful threshold per
            # (code, fatal) pair: the largest n at maximal confidence —
            # lower thresholds fire strictly more often with no better
            # confidence, and the reviser scores one rule per key.
            prev = best_per_pair.get((code, fatal_code))
            if (
                prev is None
                or confidence > prev.confidence
                or (confidence == prev.confidence and n < prev.count)
            ):
                best_per_pair[(code, fatal_code)] = rule
        rules = sorted(
            best_per_pair.values(),
            key=lambda r: (-r.confidence, -r.support, r.key),
        )
        return rules
