"""Base predictive methods and their rule model (Section 4.1)."""

from repro.learners.apriori import (
    ItemsetCounts,
    apriori,
    association_rules_from,
)
from repro.learners.association import AssociationRuleLearner
from repro.learners.base import BaseLearner
from repro.learners.counting import CountThresholdLearner
from repro.learners.distribution import DistributionLearner
from repro.learners.fitting import (
    DISTRIBUTION_FAMILIES,
    FittedDistribution,
    fit_best,
    fit_exponential,
    fit_family,
    fit_lognormal,
    fit_weibull,
)
from repro.learners.registry import (
    DEFAULT_LEARNERS,
    available_learners,
    create_learner,
    register_learner,
)
from repro.learners.rules import (
    ANY_FAILURE,
    AssociationRule,
    CountRule,
    DistributionRule,
    Rule,
    RuleKey,
    StatisticalRule,
    rule_sort_key,
)
from repro.learners.statistical import StatisticalRuleLearner

__all__ = [
    "ANY_FAILURE",
    "DEFAULT_LEARNERS",
    "DISTRIBUTION_FAMILIES",
    "AssociationRule",
    "AssociationRuleLearner",
    "BaseLearner",
    "CountRule",
    "CountThresholdLearner",
    "DistributionLearner",
    "DistributionRule",
    "FittedDistribution",
    "ItemsetCounts",
    "Rule",
    "RuleKey",
    "StatisticalRule",
    "StatisticalRuleLearner",
    "apriori",
    "association_rules_from",
    "available_learners",
    "create_learner",
    "fit_best",
    "fit_exponential",
    "fit_family",
    "fit_lognormal",
    "fit_weibull",
    "register_learner",
    "rule_sort_key",
]
