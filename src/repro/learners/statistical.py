"""Statistical-rule base learner (Section 4.1, second base method).

Exploits temporal correlation among fatal events: a significant share of
failures happen in close proximity (Figure 4), so the occurrence of several
failures inside the window is itself a predictor.  On the training set the
learner estimates, for each burst size ``k``::

    p(k) = P( another failure within Wp  |  k failures observed within Wp )

and emits a :class:`~repro.learners.rules.StatisticalRule` for every ``k``
whose probability clears the threshold (the paper's example: four failures
within 300 s ⇒ another failure with probability 0.99; default threshold
0.8).
"""

from __future__ import annotations

import numpy as np

from repro.learners.base import BaseLearner
from repro.learners.rules import Rule, StatisticalRule
from repro.raslog.catalog import EventCatalog
from repro.raslog.store import EventLog


class StatisticalRuleLearner(BaseLearner):
    """Learns burst-size rules over the fatal-event point process."""

    name = "statistical"

    def __init__(
        self,
        catalog: EventCatalog | None = None,
        threshold: float = 0.8,
        max_k: int = 8,
        min_samples: int = 5,
    ) -> None:
        super().__init__(catalog)
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must lie in (0, 1], got {threshold}")
        if max_k < 1:
            raise ValueError(f"max_k must be >= 1, got {max_k}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.threshold = threshold
        self.max_k = max_k
        self.min_samples = min_samples

    def burst_statistics(
        self, fatal_times: np.ndarray, window: float
    ) -> dict[int, tuple[int, int]]:
        """``k → (observations, followed)`` over the training fatals.

        For each fatal event at ``t`` let ``k`` be the number of fatals in
        ``(t - window, t]`` (including itself); the event counts toward
        every burst size ``1..k`` ("at least k failures inside the
        window"), and "followed" means another fatal occurred in
        ``(t, t + window]``.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        t = np.asarray(fatal_times, dtype=np.float64)
        stats: dict[int, tuple[int, int]] = {}
        if len(t) == 0:
            return stats
        lo = np.searchsorted(t, t - window, side="right")
        counts = np.arange(1, len(t) + 1) - lo  # fatals in (t-window, t]
        hi = np.searchsorted(t, t + window, side="right")
        followed = hi > np.arange(1, len(t) + 1)
        for k in range(1, self.max_k + 1):
            mask = counts >= k
            n = int(mask.sum())
            if n == 0:
                break
            stats[k] = (n, int(followed[mask].sum()))
        return stats

    def train(self, log: EventLog, window: float) -> list[Rule]:
        fatal = log.fatal(self.catalog)
        stats = self.burst_statistics(fatal.timestamps, window)
        rules: list[Rule] = []
        for k, (n, followed) in sorted(stats.items()):
            if n < self.min_samples:
                continue
            p = followed / n
            if p >= self.threshold:
                rules.append(
                    StatisticalRule(k=k, window=window, probability=p)
                )
        return rules
