"""Association-rule base learner (Section 4.1, first base method).

For every fatal event in the training set, the non-fatal events preceding
it within the rule-generation window ``Wp`` form an *event set* (a
transaction, together with the fatal event itself).  Standard Apriori
mining over these transactions, with deliberately low support/confidence
thresholds to capture rare failure patterns, yields rules of the form::

    {networkWarningInterrupt, networkError} -> socketReadFailure: 1.00

The reviser later discards rules that turn out ineffective — the paper's
justification for mining permissively here.
"""

from __future__ import annotations

import numpy as np

from repro.learners.apriori import apriori, association_rules_from
from repro.learners.base import BaseLearner
from repro.learners.rules import AssociationRule, Rule
from repro.raslog.catalog import EventCatalog
from repro.raslog.store import EventLog


class AssociationRuleLearner(BaseLearner):
    """Mines ``{non-fatal precursors} → fatal`` rules with Apriori."""

    name = "association"

    def __init__(
        self,
        catalog: EventCatalog | None = None,
        min_support: float = 0.01,
        min_confidence: float = 0.1,
        max_antecedent: int = 3,
    ) -> None:
        super().__init__(catalog)
        if not 0.0 < min_support <= 1.0:
            raise ValueError(f"min_support must lie in (0, 1], got {min_support}")
        if not 0.0 < min_confidence <= 1.0:
            raise ValueError(
                f"min_confidence must lie in (0, 1], got {min_confidence}"
            )
        if max_antecedent < 1:
            raise ValueError(f"max_antecedent must be >= 1, got {max_antecedent}")
        self.min_support = min_support
        self.min_confidence = min_confidence
        self.max_antecedent = max_antecedent

    def transactions(
        self, log: EventLog, window: float
    ) -> list[frozenset[str]]:
        """One event set per fatal event that has ≥ 1 precursor in ``Wp``.

        Each transaction holds the distinct non-fatal codes observed in
        ``[t_fatal - Wp, t_fatal)`` plus the fatal code itself.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        fatal = log.fatal(self.catalog)
        nonfatal = log.nonfatal(self.catalog)
        nf_times = nonfatal.timestamps
        out: list[frozenset[str]] = []
        for event in fatal:
            lo = int(np.searchsorted(nf_times, event.timestamp - window, "left"))
            hi = int(np.searchsorted(nf_times, event.timestamp, "left"))
            if hi <= lo:
                continue
            items = {nonfatal[i].entry_data for i in range(lo, hi)}
            items.add(event.entry_data)
            out.append(frozenset(items))
        return out

    def train(self, log: EventLog, window: float) -> list[Rule]:
        tx = self.transactions(log, window)
        if not tx:
            return []
        itemsets = apriori(
            tx, self.min_support, max_len=self.max_antecedent + 1
        )
        fatal_codes = {t.code for t in self.catalog.fatal_types()}
        raw = association_rules_from(itemsets, fatal_codes, self.min_confidence)
        rules: list[Rule] = []
        for antecedent, consequent, support, confidence in raw:
            # Antecedents that themselves contain fatal codes are possible
            # when a failure precedes another; the paper's association
            # method correlates *non-fatal* precursors with fatals, so
            # restrict accordingly.
            if antecedent & fatal_codes:
                continue
            rules.append(
                AssociationRule(
                    antecedent=frozenset(antecedent),
                    consequent=str(consequent),
                    support=support,
                    confidence=confidence,
                )
            )
        rules.sort(key=lambda r: (-r.confidence, -r.support, r.key))
        return rules
