"""BENCH_<topic>.json artifact format and trajectory persistence.

One file per *topic* (``BENCH_service_throughput.json``,
``BENCH_predictor_feed.json``, ...), holding an append-only trajectory::

    {
      "schema": 1,
      "topic": "predictor_feed",
      "runs": [
        {
          "timestamp": "2026-08-08T12:00:00+00:00",
          "machine": {"fingerprint": "a1b2...", "python": "3.11.7", ...},
          "params": {"scale": 0.5, "smoke": false, ...},
          "params_digest": "9c41...",
          "metrics": {
            "events_per_sec_compiled":
              {"value": 52100.0, "unit": "events/s", "higher_is_better": true},
            ...
          }
        },
        ...
      ]
    }

Runs are appended, never rewritten, so the committed file *is* the
perf history of the branch.  Two fingerprints make runs comparable:

* ``machine`` identifies the hardware/interpreter — absolute numbers
  from different machines are not comparable, only dimensionless
  ``"ratio"`` metrics are (the regression gate enforces exactly that);
* ``params_digest`` identifies the workload — the gate only compares
  runs measuring the same thing (e.g. smoke runs against smoke runs).

Writes are atomic (temp file + ``os.replace``) so a crashed bench run
can corrupt, at worst, nothing.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping

#: Bump when the run shape changes incompatibly; the regression gate
#: refuses to compare across schema versions.
BENCH_SCHEMA_VERSION = 1

#: Dimensionless metrics stay comparable across machines.
RATIO_UNIT = "ratio"


@dataclass(frozen=True)
class Metric:
    """One measured number with enough metadata to gate regressions on."""

    value: float
    unit: str
    #: direction of "better": True for throughput/speedups, False for
    #: latencies/durations.
    higher_is_better: bool = False

    def as_dict(self) -> dict[str, Any]:
        return {
            "value": self.value,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Metric":
        return Metric(
            value=float(data["value"]),
            unit=str(data["unit"]),
            higher_is_better=bool(data.get("higher_is_better", False)),
        )


def machine_fingerprint() -> dict[str, Any]:
    """Hardware/interpreter identity attached to every run.

    ``fingerprint`` digests the identifying fields so consumers compare
    one short string; the readable fields ride along for humans.
    """
    info = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "cpu_count": os.cpu_count() or 1,
    }
    digest = hashlib.sha256(
        json.dumps(info, sort_keys=True).encode()
    ).hexdigest()[:16]
    return {"fingerprint": digest, **info}


def params_digest(params: Mapping[str, Any]) -> str:
    """Stable short digest of a run's workload parameters."""
    return hashlib.sha256(
        json.dumps(params, sort_keys=True, default=str).encode()
    ).hexdigest()[:16]


def bench_path(topic: str, directory: "str | Path" = ".") -> Path:
    if not topic or any(c in topic for c in "/\\ "):
        raise ValueError(f"invalid bench topic {topic!r}")
    return Path(directory) / f"BENCH_{topic}.json"


def load_trajectory(path: "str | Path") -> dict[str, Any]:
    """Read and validate one BENCH_* file."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(
            f"{path}: top-level JSON must be an object, "
            f"got {type(data).__name__}"
        )
    if data.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema {data.get('schema')!r}, "
            f"expected {BENCH_SCHEMA_VERSION}"
        )
    if not isinstance(data.get("runs"), list):
        raise ValueError(f"{path}: missing 'runs' list")
    return data


def record_run(
    topic: str,
    metrics: Mapping[str, "Metric | Mapping[str, Any]"],
    params: Mapping[str, Any],
    directory: "str | Path" = ".",
    timestamp: "str | None" = None,
) -> Path:
    """Append one run to ``BENCH_<topic>.json``, creating it if missing.

    Returns the artifact path.  ``timestamp`` defaults to now (UTC,
    ISO-8601); tests pass a fixed one for reproducible files.
    """
    path = bench_path(topic, directory)
    if path.exists():
        data = load_trajectory(path)
        if data["topic"] != topic:
            raise ValueError(
                f"{path}: holds topic {data['topic']!r}, not {topic!r}"
            )
    else:
        data = {"schema": BENCH_SCHEMA_VERSION, "topic": topic, "runs": []}

    rendered: dict[str, Any] = {}
    for name, metric in metrics.items():
        if not isinstance(metric, Metric):
            metric = Metric.from_dict(metric)
        rendered[name] = metric.as_dict()
    run = {
        "timestamp": timestamp
        or datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": machine_fingerprint(),
        "params": dict(params),
        "params_digest": params_digest(params),
        "metrics": rendered,
    }
    data["runs"].append(run)

    tmp = path.with_suffix(".json.tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def quantile_us(latencies_s: "list[float]", q: float) -> float:
    """Nearest-rank ``q``-quantile of a latency sample, in microseconds."""
    if not latencies_s:
        return 0.0
    ordered = sorted(latencies_s)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index] * 1e6


def _main() -> int:  # pragma: no cover - convenience entry
    for arg in sys.argv[1:]:
        data = load_trajectory(arg)
        print(f"{arg}: topic={data['topic']} runs={len(data['runs'])}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main())
