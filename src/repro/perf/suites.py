"""Runnable bench suites behind ``repro bench``.

Each suite builds a deterministic synthetic workload, measures one slice
of the online path, and returns ``(metrics, params)`` for
:func:`repro.perf.harness.record_run`.  Where a suite covers an
optimised path, it measures the *pre-optimisation* implementation on
the same workload in the same run — so every BENCH_* entry carries its
own before/after pair and the speedup is a recorded number, not a
claim:

* ``predictor_feed`` — per-event matcher latency/throughput, legacy
  ``"scan"`` matching vs the compiled hash-joined indices (asserting
  warning-for-warning equivalence while it measures);
* ``service_throughput`` — end-to-end streaming events/sec, one session
  vs a sharded fleet, plus retrain latency and ingest p50/p99;
* ``journal_append`` — WAL appends/sec, per-record fsync vs batched
  group commit, plus crash-recovery replay time;
* ``preprocess_filter`` — rows/sec through dedup + compression,
  vectorized vs the python-loop reference (asserting identical output);
* ``serve_ingest`` — events/sec through the ``repro serve`` TCP
  front-end from concurrent producers plus ack p50/p99, with the
  batching contrast — per-event commits vs ``ingest_batch`` group
  commits — measured in-process on the same durable workload
  (asserting warning-for-warning equivalence across all three runs).

``smoke=True`` shrinks every workload to CI scale; smoke and full runs
carry different ``params_digest`` values so the regression gate never
compares one against the other.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

from repro.perf.harness import Metric, quantile_us, record_run

#: Same seed as benchmarks/conftest.py, so suites and pytest benches
#: describe the same traces.
SUITE_SEED = 2008

#: Records per append_batch group commit in the journal suite.
JOURNAL_BATCH = 64

#: Micro-batch size for the serving suite's batched run (the
#: ``repro serve`` default).
DEFAULT_SERVE_BATCH = 64

#: Batch size for the service suite's backend contrast.  Larger than
#: the serve default: each fleet batch is one scatter/gather wave, and
#: the wave must be wide enough that every worker gets a sub-batch
#: worth more than a pipe round-trip.
BACKEND_BATCH = 256


def _timed(fn: Callable[[], Any]) -> tuple[Any, float]:
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


# -- predictor_feed ----------------------------------------------------


def _mined_predictor_inputs(
    scale: float, train_weeks: int, feed_weeks: int, density: float
):
    from dataclasses import replace

    from repro.core.knowledge import RuleRecord
    from repro.core.reviser import Reviser
    from repro.experiments.config import make_log
    from repro.learners.registry import DEFAULT_LEARNERS, create_learner
    from repro.raslog.store import EventLog
    from repro.utils.timeutil import WEEK_SECONDS

    window = 300.0
    syn = make_log(
        "SDSC", scale=scale, weeks=train_weeks + feed_weeks, seed=SUITE_SEED
    )
    log, catalog = syn.clean, syn.catalog
    training = log.between(0.0, train_weeks * WEEK_SECONDS)
    feed = log.between(
        train_weeks * WEEK_SECONDS, (train_weeks + feed_weeks) * WEEK_SECONDS
    )
    if density > 1.0 and len(feed):
        # Compress inter-arrivals by ``density``: the matcher's cost is
        # proportional to window occupancy, and the quiet synthetic
        # average (~0.1 events per 300 s window) measures nothing.  A
        # compressed stream reproduces the event-storm regime — the load
        # a deployed predictor must actually keep up with.  Both
        # indexing modes see the identical compressed stream, so the
        # before/after comparison stays apples-to-apples.
        t0 = float(feed.timestamps[0])
        feed = EventLog(
            tuple(
                replace(e, timestamp=t0 + (e.timestamp - t0) / density)
                for e in feed
            ),
            origin=feed.origin,
            _presorted=True,
        )

    records, seen = [], set()
    for name in DEFAULT_LEARNERS:
        learner = create_learner(name, catalog=catalog)
        for rule in learner.train(training, window):
            if rule.key not in seen:
                seen.add(rule.key)
                records.append(
                    RuleRecord(rule=rule, learner=name, trained_at_week=0)
                )
    revision = Reviser(min_roc=0.7, catalog=catalog, tick=60.0).revise(
        records, training, window
    )
    rules = [r.rule for r in revision.kept]
    return rules, catalog, feed, window


def suite_predictor_feed(smoke: bool = False) -> tuple[dict, dict]:
    """Matcher hot path: scan (pre-PR) vs compiled indices, same stream."""
    from repro.core.predictor import Predictor

    scale, train_weeks, feed_weeks, density = (
        (1.0, 2, 1, 1000.0) if smoke else (1.0, 8, 4, 5000.0)
    )
    rules, catalog, feed, window = _mined_predictor_inputs(
        scale, train_weeks, feed_weeks, density
    )

    results: dict[str, tuple[float, list[float], list]] = {}
    for mode in ("scan", "compiled"):
        predictor = Predictor(
            rules, window=window, catalog=catalog, indexing=mode
        )
        if len(feed):
            predictor.state.clock = float(feed.timestamps[0])
        latencies: list[float] = []
        warnings: list = []
        start = time.perf_counter()
        for event in feed:
            t0 = time.perf_counter()
            new = predictor.observe(event)
            latencies.append(time.perf_counter() - t0)
            warnings.extend(new)
        elapsed = time.perf_counter() - start
        results[mode] = (elapsed, latencies, warnings)

    t_scan, _, w_scan = results["scan"]
    t_compiled, lat, w_compiled = results["compiled"]
    # The indices are a pure speed knob: any divergence here means the
    # compiled matcher changed semantics, which is a bug, not a result.
    assert w_compiled == w_scan, (
        f"scan/compiled warning divergence: "
        f"{len(w_scan)} vs {len(w_compiled)} warnings"
    )

    n = max(len(feed), 1)
    metrics = {
        "events_per_sec_scan": Metric(n / t_scan, "events/s", True),
        "events_per_sec_compiled": Metric(n / t_compiled, "events/s", True),
        "speedup_compiled_vs_scan": Metric(t_scan / t_compiled, "ratio", True),
        "feed_p50_us": Metric(quantile_us(lat, 0.50), "us"),
        "feed_p99_us": Metric(quantile_us(lat, 0.99), "us"),
        "n_events": Metric(float(len(feed)), "count"),
        "n_warnings": Metric(float(len(w_compiled)), "count"),
        "n_rules": Metric(float(len(rules)), "count"),
    }
    params = {
        "suite": "predictor_feed",
        "smoke": smoke,
        "scale": scale,
        "train_weeks": train_weeks,
        "feed_weeks": feed_weeks,
        "density": density,
        "seed": SUITE_SEED,
    }
    return metrics, params


# -- service_throughput ------------------------------------------------


def suite_service_throughput(smoke: bool = False) -> tuple[dict, dict]:
    """End-to-end streaming: one session vs a sharded fleet."""
    from repro.core.framework import FrameworkConfig
    from repro.core.online import OnlinePredictionSession
    from repro.observe import MetricsRegistry, use_registry
    from repro.preprocess.pipeline import PreprocessingPipeline
    from repro.raslog.generator import GeneratorConfig, generate_log
    from repro.raslog.profiles import SDSC_PROFILE
    from repro.service import PredictionService

    scale, weeks, train_weeks, retrain_weeks, n_shards = (
        (0.5, 8, 2, 2, 2) if smoke else (0.5, 16, 4, 4, 4)
    )
    trace = generate_log(
        SDSC_PROFILE, GeneratorConfig(scale=scale, weeks=weeks, seed=SUITE_SEED)
    )
    log = PreprocessingPipeline().run(trace.raw).clean
    log = log.with_origin(trace.raw.origin)

    def config() -> FrameworkConfig:
        return FrameworkConfig(
            initial_train_weeks=train_weeks, retrain_weeks=retrain_weeks
        )

    registry = MetricsRegistry()
    with use_registry(registry):
        session = OnlinePredictionSession(config(), origin=log.origin)
        start = time.perf_counter()
        for event in log:
            session.ingest(event)
        t_single = time.perf_counter() - start
        single = session.summary()
        session.close()

        service = PredictionService(
            config(), shards=n_shards, origin=log.origin
        )
        start = time.perf_counter()
        for event in log:
            service.ingest(event)
        service.flush()
        t_fleet = time.perf_counter() - start
        fleet = service.summary()
        service.close()

    assert fleet.n_events == single.n_events == len(log)
    snapshot = registry.snapshot()
    ingest = snapshot.get("online.ingest", {})
    retrain = snapshot.get("online.retrain", {})

    # Backend contrast: the same batched workload through an in-process
    # fleet and through shared-nothing worker processes.  Batched on
    # both sides so the comparison isolates *placement* — ingest_batch
    # scatters one sub-batch per shard before gathering, which is what
    # lets subprocess workers mine concurrently.  Each run gets a
    # throwaway registry so the fleet metrics above keep their meaning.
    events = list(log)

    def run_fleet_batched(backend: str) -> tuple[float, int, dict]:
        with use_registry(MetricsRegistry()):
            fleet = PredictionService(
                config(), shards=n_shards, origin=log.origin, backend=backend
            )
            start = time.perf_counter()
            for i in range(0, len(events), BACKEND_BATCH):
                fleet.ingest_batch(events[i : i + BACKEND_BATCH])
            fleet.flush()
            elapsed = time.perf_counter() - start
            warnings = {k: fleet.warnings(k) for k in fleet.shard_keys}
            n_events = fleet.summary().n_events
            fleet.close()
        return elapsed, n_events, warnings

    t_inproc, n_inproc, w_inproc = run_fleet_batched("inproc")
    t_subproc, n_subproc, w_subproc = run_fleet_batched("subprocess")
    assert n_inproc == n_subproc == len(log)
    # Placement is a deployment knob, not a model change: the two
    # backends must agree warning for warning.
    assert w_subproc == w_inproc, "backend warning divergence"

    n = max(len(log), 1)
    metrics = {
        "events_per_sec_1_shard": Metric(n / t_single, "events/s", True),
        f"events_per_sec_{n_shards}_shards": Metric(
            n / t_fleet, "events/s", True
        ),
        "shard_scaling_ratio": Metric(t_single / t_fleet, "ratio", True),
        "events_per_sec_batched_inproc": Metric(
            n / t_inproc, "events/s", True
        ),
        "events_per_sec_batched_subprocess": Metric(
            n / t_subproc, "events/s", True
        ),
        # >= 1 only with real cores to spread the workers over; on a
        # single-CPU box the pipe hops make this < 1, which is why the
        # CI floor for it is applied on multi-core runners only.
        "subprocess_speedup": Metric(t_inproc / t_subproc, "ratio", True),
        "ingest_p50_us": Metric(ingest.get("p50", 0.0) * 1e6, "us"),
        "ingest_p99_us": Metric(ingest.get("p99", 0.0) * 1e6, "us"),
        "retrain_latency_s": Metric(retrain.get("mean", 0.0), "s"),
        "n_events": Metric(float(len(log)), "count"),
        "n_warnings": Metric(float(single.n_warnings), "count"),
    }
    params = {
        "suite": "service_throughput",
        "smoke": smoke,
        "scale": scale,
        "weeks": weeks,
        "train_weeks": train_weeks,
        "retrain_weeks": retrain_weeks,
        "n_shards": n_shards,
        # Both backends are measured in one run; labeling them in the
        # digest keeps old inproc-only baselines out of the comparison.
        "backends": "inproc+subprocess",
        "batch": BACKEND_BATCH,
        "seed": SUITE_SEED,
    }
    return metrics, params


# -- journal_append ----------------------------------------------------


def suite_journal_append(smoke: bool = False) -> tuple[dict, dict]:
    """WAL overhead: per-record fsync vs batched group commit."""
    from repro.resilience.journal import EventJournal

    n = 1000 if smoke else 5000
    records = [
        {
            "kind": "ingest",
            "event": {
                "timestamp": float(i),
                "location": f"R{i % 8:02d}-M0-N00",
                "job_id": i % 64,
                "entry_data": "KERNEL_PANIC",
            },
        }
        for i in range(n)
    ]

    with tempfile.TemporaryDirectory() as tmp:
        single = EventJournal(Path(tmp) / "single", fsync="always")
        _, t_single = _timed(
            lambda: [single.append(r) for r in records]
        )
        single.close()

        batched = EventJournal(Path(tmp) / "batched", fsync="always")
        _, t_batched = _timed(
            lambda: [
                batched.append_batch(records[i : i + JOURNAL_BATCH])
                for i in range(0, n, JOURNAL_BATCH)
            ]
        )
        batched.close()

        # Recovery: reopen (torn-tail scan) + full replay of the log.
        def recover() -> int:
            journal = EventJournal(Path(tmp) / "batched", fsync="never")
            count = sum(1 for _ in journal.replay())
            journal.close()
            return count

        replayed, t_recover = _timed(recover)
    assert replayed == n

    metrics = {
        "appends_per_sec_single": Metric(n / t_single, "records/s", True),
        "appends_per_sec_batched": Metric(n / t_batched, "records/s", True),
        "batch_speedup": Metric(t_single / t_batched, "ratio", True),
        "recovery_replay_s": Metric(t_recover, "s"),
        "recovery_records_per_sec": Metric(n / t_recover, "records/s", True),
        "n_records": Metric(float(n), "count"),
    }
    params = {
        "suite": "journal_append",
        "smoke": smoke,
        "n_records": n,
        "batch": JOURNAL_BATCH,
        "fsync": "always",
    }
    return metrics, params


# -- preprocess_filter -------------------------------------------------


def _coalesce_reference(log, threshold: float, key_fn):
    """Pre-vectorization ``_coalesce``: python grouping, per-group numpy."""
    from collections import defaultdict

    from repro.raslog.store import EventLog

    if threshold == 0 or len(log) == 0:
        return log
    groups: dict[object, list[int]] = defaultdict(list)
    for i, event in enumerate(log):
        groups[key_fn(event)].append(i)
    keep = np.zeros(len(log), dtype=bool)
    times = log.timestamps
    for indices in groups.values():
        idx = np.asarray(indices)
        ts = times[idx]
        starts = np.empty(len(idx), dtype=bool)
        starts[0] = True
        if len(idx) > 1:
            np.greater(np.diff(ts), threshold, out=starts[1:])
        keep[idx[starts]] = True
    kept = tuple(e for i, e in enumerate(log.events) if keep[i])
    return EventLog(kept, origin=log.origin, _presorted=True)


def _deduplicate_reference(log):
    """Pre-vectorization ``deduplicate_exact``: first-seen-wins set scan."""
    from repro.raslog.store import EventLog

    seen: set = set()
    kept = []
    for e in log:
        sig = (e.timestamp, e.location, e.job_id, e.entry_data)
        if sig in seen:
            continue
        seen.add(sig)
        kept.append(e)
    return EventLog(kept, origin=log.origin, _presorted=True)


def suite_preprocess_filter(smoke: bool = False) -> tuple[dict, dict]:
    """Filtering throughput: vectorized vs python-loop reference."""
    from repro.experiments.config import make_log
    from repro.preprocess.filtering import compress, deduplicate_exact

    scale, weeks = (0.3, 3) if smoke else (1.0, 8)
    threshold = 300.0
    syn = make_log(
        "SDSC", scale=scale, weeks=weeks, seed=SUITE_SEED, duplicates=True
    )
    raw = syn.raw

    def reference():
        deduped = _deduplicate_reference(raw)
        temporal = _coalesce_reference(
            deduped,
            threshold,
            key_fn=lambda e: (e.location, e.job_id, e.entry_data),
        )
        return _coalesce_reference(
            temporal, threshold, key_fn=lambda e: (e.job_id, e.entry_data)
        )

    def vectorized():
        out, _ = compress(deduplicate_exact(raw), threshold)
        return out

    ref_out, t_ref = _timed(reference)
    vec_out, t_vec = _timed(vectorized)
    # The vectorized filter must be a pure reimplementation.
    assert vec_out.events == ref_out.events, (
        f"filter output divergence: {len(ref_out)} vs {len(vec_out)} rows"
    )

    n = max(len(raw), 1)
    metrics = {
        "rows_per_sec_reference": Metric(n / t_ref, "rows/s", True),
        "rows_per_sec_vectorized": Metric(n / t_vec, "rows/s", True),
        "filter_speedup": Metric(t_ref / t_vec, "ratio", True),
        "n_rows_in": Metric(float(len(raw)), "count"),
        "n_rows_out": Metric(float(len(vec_out)), "count"),
    }
    params = {
        "suite": "preprocess_filter",
        "smoke": smoke,
        "scale": scale,
        "weeks": weeks,
        "threshold": threshold,
        "seed": SUITE_SEED,
    }
    return metrics, params


# -- serve_ingest ------------------------------------------------------


def _serve_load(
    log, config_fn, *, n_shards: int, n_producers: int, batch_size: int,
    fleet_dir=None,
) -> tuple[float, dict, dict]:
    """Push ``log`` through ``repro serve`` from concurrent producers.

    Producers are partitioned by the server's own shard key, so each
    shard receives its events from exactly one producer in stream order
    — the same per-shard ordering the in-process path sees.  Returns
    (elapsed seconds, registry snapshot, per-shard warnings).
    """
    import threading
    import zlib

    from repro.net.client import PredictionClient
    from repro.net.server import serve_in_thread
    from repro.service import PredictionService

    service = PredictionService(
        config_fn(), shards=n_shards, origin=log.origin, fleet_dir=fleet_dir
    )
    partitions: list[list] = [[] for _ in range(n_producers)]
    for event in log:
        key = service.router.key(event)
        partitions[zlib.crc32(key.encode("utf-8")) % n_producers].append(event)

    def produce(events: list, host: str, port: int) -> int:
        client = PredictionClient(host, port, timeout=120.0)
        try:
            return client.stream(events)
        finally:
            client.close()

    with serve_in_thread(service, batch_size=batch_size) as server:
        acked = [0] * n_producers
        threads = [
            threading.Thread(
                target=lambda i=i: acked.__setitem__(
                    i, produce(partitions[i], server.host, server.port)
                )
            )
            for i in range(n_producers)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        tail = PredictionClient(server.host, server.port, timeout=120.0)
        tail.flush()
        elapsed = time.perf_counter() - start
        snapshot = tail.metrics()
        tail.close()
        warnings = {k: service.warnings(k) for k in service.shard_keys}
    assert sum(acked) == len(log), (sum(acked), len(log))
    return elapsed, snapshot, warnings


def _commit_contrast(
    log, config_fn, *, n_shards: int, tmp: Path
) -> tuple[float, float, dict]:
    """Per-event commits vs ``ingest_batch`` group commits, in-process.

    Both fleets are durable (write-ahead journal, fsync every commit)
    and run on one thread — no sockets, no scheduler — so the ratio
    isolates what one group commit per micro-batch buys over an fsync
    per event: the same saving the server's micro-batching realises.
    The measurement is *paired*: each chunk of events goes through the
    per-event fleet and then, back to back, through the batched fleet,
    so both modes see the same disk weather, and the reported speedup
    is the *median* of the per-chunk ratios, so an fsync stall in any
    one chunk — on either side — cannot move it.  A full throwaway
    pass first warms code paths and the filesystem.
    Returns (t_single, t_batched, speedup, per-shard warnings).
    """
    import statistics

    from repro.service import PredictionService

    events = list(log)

    def paired_pass(label: str) -> tuple[float, float, float, dict]:
        def fleet(mode: str) -> PredictionService:
            return PredictionService(
                config_fn(), shards=n_shards, origin=log.origin,
                fleet_dir=tmp / f"{label}-{mode}",
            )

        single, batched = fleet("single"), fleet("batched")
        t_single = t_batched = 0.0
        ratios: list[float] = []
        for i in range(0, len(events), DEFAULT_SERVE_BATCH):
            chunk = events[i : i + DEFAULT_SERVE_BATCH]
            start = time.perf_counter()
            for event in chunk:
                single.ingest(event)
            mid = time.perf_counter()
            batched.ingest_batch(chunk)
            end = time.perf_counter()
            t_single += mid - start
            t_batched += end - mid
            ratios.append((mid - start) / max(end - mid, 1e-9))
        single.flush()
        batched.flush()
        w_single = {k: single.warnings(k) for k in single.shard_keys}
        w_batched = {k: batched.warnings(k) for k in batched.shard_keys}
        single.close()
        batched.close()
        # Batching is a transport knob: the fleet must produce the same
        # warnings whether events commit one at a time or 64.
        assert w_batched == w_single, "batch-size warning divergence"
        return t_single, t_batched, statistics.median(ratios), w_single

    paired_pass("warmup")
    return paired_pass("measured")


def suite_serve_ingest(smoke: bool = False) -> tuple[dict, dict]:
    """Network serving throughput plus the in-process batching contrast."""
    from repro.core.framework import FrameworkConfig
    from repro.observe import MetricsRegistry, use_registry
    from repro.preprocess.pipeline import PreprocessingPipeline
    from repro.raslog.generator import GeneratorConfig, generate_log
    from repro.raslog.profiles import SDSC_PROFILE
    from repro.service import make_backend

    scale, weeks, train_weeks, n_shards, n_producers = (
        (0.5, 8, 2, 2, 2) if smoke else (0.5, 12, 4, 4, 4)
    )
    trace = generate_log(
        SDSC_PROFILE, GeneratorConfig(scale=scale, weeks=weeks, seed=SUITE_SEED)
    )
    log = PreprocessingPipeline().run(trace.raw).clean
    log = log.with_origin(trace.raw.origin)

    def config() -> FrameworkConfig:
        return FrameworkConfig(
            initial_train_weeks=train_weeks, retrain_weeks=train_weeks
        )

    # Warm the serving stack (imports, thread pools, codec paths) off
    # the clock, so the measured runs don't pay one-time costs.
    with use_registry(MetricsRegistry()):
        _serve_load(
            log.between(0.0, 1 * 7 * 24 * 3600.0),
            config,
            n_shards=n_shards,
            n_producers=n_producers,
            batch_size=DEFAULT_SERVE_BATCH,
        )

    # The fleets are durable (write-ahead journal, fsync every commit):
    # that is the deployment the ack contract is about.  The served run
    # crosses sockets and three thread pools, so its wall clock moves
    # with the scheduler — best-of-2, recorded as absolute throughput
    # (ungated across machines).  The gated batch_speedup ratio comes
    # from the single-threaded, pairwise-interleaved in-process
    # contrast instead, which holds still run to run.
    # The contrast runs first, in its own directory, so the served
    # runs' journal writeback never leaks into its fsync timings.
    with tempfile.TemporaryDirectory() as tmpdir:
        t_single, t_batched, speedup, w_inprocess = _commit_contrast(
            log, config, n_shards=n_shards, tmp=Path(tmpdir)
        )

    served: tuple[float, dict, dict] | None = None
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        for repeat in range(2):
            with use_registry(MetricsRegistry()):
                run = _serve_load(
                    log,
                    config,
                    n_shards=n_shards,
                    n_producers=n_producers,
                    batch_size=DEFAULT_SERVE_BATCH,
                    fleet_dir=tmp / f"served-{repeat}",
                )
            if served is None or run[0] < served[0]:
                served = run

    t_served, snapshot, w_served = served
    # The serving path is a transport, not a model change: warnings must
    # match the in-process run shard for shard, warning for warning.
    assert w_served == w_inprocess, "served/in-process warning divergence"
    n_warnings = sum(len(w) for w in w_served.values())

    ack = snapshot.get("net.ingest_latency", {})
    n = max(len(log), 1)
    metrics = {
        "events_per_sec_served": Metric(n / t_served, "events/s", True),
        "ack_p50_us": Metric(ack.get("p50", 0.0) * 1e6, "us"),
        "ack_p99_us": Metric(ack.get("p99", 0.0) * 1e6, "us"),
        "events_per_sec_unbatched": Metric(n / t_single, "events/s", True),
        "events_per_sec_batched": Metric(n / t_batched, "events/s", True),
        "batch_speedup": Metric(speedup, "ratio", True),
        "n_events": Metric(float(len(log)), "count"),
        "n_warnings": Metric(float(n_warnings), "count"),
    }
    params = {
        "suite": "serve_ingest",
        "smoke": smoke,
        "scale": scale,
        "weeks": weeks,
        "train_weeks": train_weeks,
        "n_shards": n_shards,
        "n_producers": n_producers,
        "batch": DEFAULT_SERVE_BATCH,
        "durable": True,
        # The fleets above use the env-selected default backend; the
        # label keeps inproc and subprocess runs in separate baselines.
        "backend": make_backend(None).name,
        "seed": SUITE_SEED,
    }
    return metrics, params


# -- drift_adapt -------------------------------------------------------


def suite_drift_adapt(
    smoke: bool = False, scenario: str = "reconfiguration"
) -> tuple[dict, dict]:
    """Fixed-cadence vs drift-triggered retraining on a regime-change
    scenario (:mod:`repro.raslog.scenarios`).

    Unlike the throughput suites this one measures a *policy*, not a
    code path: how many retrainings each trigger paid and what
    post-shift recall each got back.  The workload is fully seeded, so
    every number is machine-independent; the ratios are gated in CI and
    the reconfiguration acceptance criteria — trigger within one
    evaluation week of the shift, strictly fewer retrains at no recall
    loss — are asserted right here, every run.
    """
    from repro.adapt.evaluate import compare_on_scenario

    cmp = compare_on_scenario(scenario)
    drift = cmp.adaptive.drift or {}

    if scenario == "reconfiguration":
        assert cmp.trigger_delay_weeks is not None, (
            "adaptive trigger never fired after the reconfiguration"
        )
        assert cmp.trigger_delay_weeks <= 1, (
            f"drift trigger took {cmp.trigger_delay_weeks} evaluation "
            f"weeks; the acceptance bound is 1"
        )
        assert cmp.adaptive.n_retrains < cmp.fixed.n_retrains, (
            f"adaptive performed {cmp.adaptive.n_retrains} retrains, "
            f"fixed cadence only {cmp.fixed.n_retrains}"
        )
        assert (
            cmp.adaptive.post_shift_recall >= cmp.fixed.post_shift_recall
        ), (
            f"adaptive post-shift recall {cmp.adaptive.post_shift_recall:.3f} "
            f"below fixed {cmp.fixed.post_shift_recall:.3f}"
        )

    delay = (
        float(cmp.trigger_delay_weeks)
        if cmp.trigger_delay_weeks is not None
        else float("nan")
    )
    metrics = {
        "retrains_fixed": Metric(float(cmp.fixed.n_retrains), "count"),
        "retrains_adaptive": Metric(float(cmp.adaptive.n_retrains), "count"),
        "retrains_saved_ratio": Metric(cmp.retrains_saved_ratio, "ratio", True),
        "trigger_delay_weeks": Metric(delay, "weeks"),
        "post_shift_recall_fixed": Metric(
            cmp.fixed.post_shift_recall, "ratio", True
        ),
        "post_shift_recall_adaptive": Metric(
            cmp.adaptive.post_shift_recall, "ratio", True
        ),
        "recall_fixed": Metric(cmp.fixed.recall, "ratio", True),
        "recall_adaptive": Metric(cmp.adaptive.recall, "ratio", True),
        "drift_evaluations": Metric(
            float(drift.get("evaluations", 0)), "count"
        ),
        "skipped_retrains": Metric(
            float(drift.get("skipped_retrains", 0)), "count"
        ),
        "n_events": Metric(float(cmp.extras["n_events"]), "count"),
        "n_fatal": Metric(float(cmp.extras["n_fatal"]), "count"),
    }
    params = {
        "suite": "drift_adapt",
        "smoke": smoke,
        "scenario": scenario,
        "shift_week": cmp.shift_week,
        "scale": cmp.extras["scale"],
        "seed": cmp.extras["seed"],
    }
    return metrics, params


# -- registry ----------------------------------------------------------

SUITES: dict[str, Callable[..., tuple[dict, dict]]] = {
    "predictor_feed": suite_predictor_feed,
    "service_throughput": suite_service_throughput,
    "journal_append": suite_journal_append,
    "preprocess_filter": suite_preprocess_filter,
    "serve_ingest": suite_serve_ingest,
    "drift_adapt": suite_drift_adapt,
}


def run_suite(
    name: str,
    smoke: bool = False,
    directory: "str | Path" = ".",
    timestamp: "str | None" = None,
    scenario: "str | None" = None,
) -> tuple[Path, Mapping[str, Metric]]:
    """Run one suite and append its run to ``BENCH_<name>.json``.

    ``scenario`` selects the regime-change trace for the scenario-driven
    suites (currently ``drift_adapt``); passing it to any other suite is
    an error.
    """
    try:
        suite = SUITES[name]
    except KeyError:
        raise ValueError(
            f"unknown bench suite {name!r}; have {sorted(SUITES)}"
        ) from None
    if scenario is not None:
        if name != "drift_adapt":
            raise ValueError(
                f"suite {name!r} does not take a --scenario"
            )
        metrics, params = suite(smoke, scenario=scenario)
    else:
        metrics, params = suite(smoke)
    path = record_run(
        name, metrics, params, directory=directory, timestamp=timestamp
    )
    return path, metrics
