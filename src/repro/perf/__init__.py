"""Performance harness: BENCH_* trajectory artifacts and bench suites.

Every performance measurement in the repo — the ``benchmarks/bench_*.py``
pytest-benchmark modules and the ``repro bench`` CLI verb — routes
through this package, which writes one ``BENCH_<topic>.json`` artifact
per topic and *appends* each run to the file's run-over-run trajectory.
That turns "it felt faster" into a committed, diffable series:
``scripts/check_perf_regression.py`` gates the newest run against its
baseline, and optimisations land with their before/after numbers
recorded in the same file.
"""

from repro.perf.harness import (
    BENCH_SCHEMA_VERSION,
    Metric,
    bench_path,
    load_trajectory,
    machine_fingerprint,
    params_digest,
    record_run,
)
from repro.perf.suites import SUITES, run_suite

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "Metric",
    "SUITES",
    "bench_path",
    "load_trajectory",
    "machine_fingerprint",
    "params_digest",
    "record_run",
    "run_suite",
]
