"""Adaptive retrain policy: detectors in, retrain/skip decisions out.

:class:`AdaptiveRetrainPolicy` turns per-detector drift scores into a
weekly retrain/skip decision with the guard rails a production scheduler
needs:

* **hysteresis** — after a drift trigger the policy disarms until every
  score falls back below ``hysteresis`` × its threshold, so a detector
  hovering at its threshold cannot thrash the trainer;
* **cooldown** — no drift trigger within ``cooldown_weeks`` of the last
  successful retraining (fresh rules deserve a chance to re-baseline);
* **max interval** — a quiet stream still retrains at least every
  ``max_interval_weeks`` (the paper's ``WR`` as a safety net rather
  than a metronome).

:class:`DriftMonitor` bundles the three detectors with the policy
behind the narrow surface :class:`~repro.core.session.SessionCore`
drives: ``observe_event`` / ``observe_warnings`` on the hot path,
``evaluate`` at week boundaries, ``retrained`` after a successful
retraining, ``snapshot``/``restore`` for checkpoint v3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro import observe
from repro.adapt.detectors import (
    EventMixDetector,
    InterArrivalDetector,
    RuleHitRateDetector,
)
from repro.alerts import FailureWarning

#: Trigger causes that are not a detector name.
CAUSE_INITIAL = "initial"
CAUSE_MAX_INTERVAL = "max_interval"


@dataclass(frozen=True)
class DriftDecision:
    """One weekly evaluation outcome."""

    week: int
    retrain: bool
    #: which signal fired — a detector name, ``"initial"``,
    #: ``"max_interval"``, or None for a skipped week
    cause: str | None
    scores: dict[str, float] = field(default_factory=dict)
    #: True when the decision was never taken because a retraining is
    #: already owed (degraded mode defers, it never double-fires)
    deferred: bool = False


class AdaptiveRetrainPolicy:
    """Hysteresis + cooldown + max-interval over raw drift scores."""

    def __init__(
        self,
        thresholds: Mapping[str, float],
        cooldown_weeks: int = 2,
        max_interval_weeks: int = 8,
        hysteresis: float = 0.6,
    ) -> None:
        if not thresholds:
            raise ValueError("need at least one detector threshold")
        for name, value in thresholds.items():
            if not 0.0 < value <= 1.0:
                raise ValueError(
                    f"threshold for {name!r} must lie in (0, 1], got {value}"
                )
        if cooldown_weeks < 0:
            raise ValueError(
                f"cooldown_weeks must be >= 0, got {cooldown_weeks}"
            )
        if max_interval_weeks <= cooldown_weeks:
            raise ValueError(
                f"max_interval_weeks ({max_interval_weeks}) must exceed "
                f"cooldown_weeks ({cooldown_weeks})"
            )
        if not 0.0 < hysteresis <= 1.0:
            raise ValueError(
                f"hysteresis must lie in (0, 1], got {hysteresis}"
            )
        self.thresholds = dict(thresholds)
        self.cooldown_weeks = cooldown_weeks
        self.max_interval_weeks = max_interval_weeks
        self.hysteresis = hysteresis

        self._last_retrain_week: int | None = None
        self._armed = True
        self.n_skipped = 0
        self.n_deferred = 0
        #: (week, cause) of every triggered retraining decision
        self.trigger_log: list[tuple[int, str]] = []

    def decide(self, week: int, scores: Mapping[str, float]) -> DriftDecision:
        """One weekly retrain/skip decision; call once per boundary."""
        if self._last_retrain_week is None:
            # Nothing deployed yet: the first boundary is the initial
            # training, unconditionally.
            return self._trigger(week, CAUSE_INITIAL, scores)

        over = [
            name
            for name, threshold in self.thresholds.items()
            if scores.get(name, 0.0) >= threshold
        ]
        if not self._armed and not any(
            scores.get(name, 0.0) >= self.hysteresis * threshold
            for name, threshold in self.thresholds.items()
        ):
            self._armed = True

        since = week - self._last_retrain_week
        if since >= self.max_interval_weeks:
            return self._trigger(week, CAUSE_MAX_INTERVAL, scores)
        if since >= self.cooldown_weeks and self._armed and over:
            # Blame the detector furthest over its threshold.
            cause = max(
                over, key=lambda n: scores[n] / self.thresholds[n]
            )
            self._armed = False
            return self._trigger(week, cause, scores)
        self.n_skipped += 1
        return DriftDecision(
            week=week, retrain=False, cause=None, scores=dict(scores)
        )

    def _trigger(
        self, week: int, cause: str, scores: Mapping[str, float]
    ) -> DriftDecision:
        self.trigger_log.append((week, cause))
        return DriftDecision(
            week=week, retrain=True, cause=cause, scores=dict(scores)
        )

    def defer(self, week: int) -> DriftDecision:
        """A retraining is already owed; record the evaluation and wait."""
        self.n_deferred += 1
        return DriftDecision(
            week=week, retrain=False, cause=None, deferred=True
        )

    def retrained(self, week: int) -> None:
        """A retraining *succeeded*; cooldown and max-interval restart.

        Deliberately does *not* re-arm: a drift trigger stays disarmed
        until its scores recede below hysteresis x threshold (rebaselined
        detectors get there on the next evaluation of a healthy stream),
        so a detector that stays pinned cannot thrash the trainer.
        """
        self._last_retrain_week = week

    @property
    def last_retrain_week(self) -> int | None:
        return self._last_retrain_week

    def snapshot(self) -> dict[str, Any]:
        return {
            "last_retrain_week": self._last_retrain_week,
            "armed": self._armed,
            "n_skipped": self.n_skipped,
            "n_deferred": self.n_deferred,
            "trigger_log": [list(entry) for entry in self.trigger_log],
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        self._last_retrain_week = state["last_retrain_week"]
        self._armed = state["armed"]
        self.n_skipped = state["n_skipped"]
        self.n_deferred = state["n_deferred"]
        self.trigger_log = [
            (int(week), str(cause)) for week, cause in state["trigger_log"]
        ]


class DriftMonitor:
    """The three detectors plus the policy, as one crash-consistent unit."""

    def __init__(
        self,
        mix_threshold: float = 0.45,
        gap_threshold: float = 0.45,
        rule_threshold: float = 0.6,
        cooldown_weeks: int = 2,
        max_interval_weeks: int = 8,
        window_events: int = 256,
        hysteresis: float = 0.6,
    ) -> None:
        self.event_mix = EventMixDetector(window_events=window_events)
        self.interarrival = InterArrivalDetector(window_gaps=window_events)
        self.rule_hit_rate = RuleHitRateDetector()
        self.policy = AdaptiveRetrainPolicy(
            thresholds={
                self.event_mix.name: mix_threshold,
                self.interarrival.name: gap_threshold,
                self.rule_hit_rate.name: rule_threshold,
            },
            cooldown_weeks=cooldown_weeks,
            max_interval_weeks=max_interval_weeks,
            hysteresis=hysteresis,
        )
        self.n_evaluations = 0
        self._last_scores: dict[str, float] = {}

    @classmethod
    def from_config(cls, config) -> "DriftMonitor":
        """Build from a :class:`~repro.core.framework.FrameworkConfig`."""
        return cls(
            mix_threshold=config.adapt_mix_threshold,
            gap_threshold=config.adapt_gap_threshold,
            rule_threshold=config.adapt_rule_threshold,
            cooldown_weeks=config.adapt_cooldown_weeks,
            max_interval_weeks=config.adapt_max_interval_weeks,
            window_events=config.adapt_window_events,
            hysteresis=config.adapt_hysteresis,
        )

    # -- hot path ----------------------------------------------------------

    def observe_event(
        self, code: str, timestamp: float, location: str
    ) -> None:
        self.event_mix.observe(code, timestamp)
        self.interarrival.observe(timestamp, location)

    def observe_warnings(self, warnings: Iterable[FailureWarning]) -> None:
        for warning in warnings:
            self.rule_hit_rate.observe_warning(warning)

    # -- week boundary -----------------------------------------------------

    def evaluate(self, week: int, deferred: bool = False) -> DriftDecision:
        """Close the week and decide; ``deferred=True`` while degraded."""
        self.rule_hit_rate.fold_period()
        scores = {
            self.event_mix.name: self.event_mix.score(),
            self.interarrival.name: self.interarrival.score(),
            self.rule_hit_rate.name: self.rule_hit_rate.score(),
        }
        self._last_scores = scores
        self.n_evaluations += 1
        for name, score in scores.items():
            observe.gauge("adapt.score", detector=name).set(score)
        observe.counter("adapt.evaluations").inc()
        if deferred:
            decision = self.policy.defer(week)
            observe.counter("adapt.deferred").inc()
            return decision
        decision = self.policy.decide(week, scores)
        if decision.retrain:
            observe.counter("adapt.triggers", cause=decision.cause).inc()
        else:
            observe.counter("adapt.skipped_retrains").inc()
        return decision

    def retrained(self, week: int) -> None:
        """A retraining succeeded: today's stream is the new baseline."""
        self.policy.retrained(week)
        self.event_mix.rebaseline()
        self.interarrival.rebaseline()
        self.rule_hit_rate.rebaseline()

    # -- introspection -----------------------------------------------------

    def status(self) -> dict[str, Any]:
        """Operator-facing drift state (``health`` / ``repro fleet status``)."""
        return {
            "scores": dict(self._last_scores),
            "thresholds": dict(self.policy.thresholds),
            "armed": self.policy._armed,
            "last_retrain_week": self.policy.last_retrain_week,
            "cooldown_weeks": self.policy.cooldown_weeks,
            "max_interval_weeks": self.policy.max_interval_weeks,
            "evaluations": self.n_evaluations,
            "skipped_retrains": self.policy.n_skipped,
            "deferred": self.policy.n_deferred,
            "triggers": [
                {"week": week, "cause": cause}
                for week, cause in self.policy.trigger_log
            ],
        }

    # -- durability --------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        return {
            "event_mix": self.event_mix.snapshot(),
            "interarrival": self.interarrival.snapshot(),
            "rule_hit_rate": self.rule_hit_rate.snapshot(),
            "policy": self.policy.snapshot(),
            "n_evaluations": self.n_evaluations,
            "last_scores": dict(self._last_scores),
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        self.event_mix.restore(state["event_mix"])
        self.interarrival.restore(state["interarrival"])
        self.rule_hit_rate.restore(state["rule_hit_rate"])
        self.policy.restore(state["policy"])
        self.n_evaluations = state["n_evaluations"]
        self._last_scores = dict(state["last_scores"])


__all__ = [
    "AdaptiveRetrainPolicy",
    "CAUSE_INITIAL",
    "CAUSE_MAX_INTERVAL",
    "DriftDecision",
    "DriftMonitor",
]
