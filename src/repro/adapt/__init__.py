"""Online drift detection and adaptive retrain scheduling.

The paper's dynamic loop retrains on a fixed ``WR`` cadence — a
cost/accuracy compromise its own Figure 10 documents.  This package
closes the loop instead: three deterministic detectors watch the
filtered stream for regime change (event-mix divergence, inter-arrival
shift, rule hit-rate decay), and an :class:`AdaptiveRetrainPolicy`
with hysteresis, post-retrain cooldown and a ``WR_max`` safety net
turns their scores into retrain/skip decisions.
:class:`~repro.core.session.SessionCore` consumes the bundle through
:class:`DriftMonitor` when ``FrameworkConfig.retrain_trigger`` is
``"adaptive"``; the default ``"fixed"`` path is untouched.
"""

from repro.adapt.detectors import (
    EventMixDetector,
    InterArrivalDetector,
    RuleHitRateDetector,
    js_divergence,
    ks_statistic,
)
from repro.adapt.policy import (
    CAUSE_INITIAL,
    CAUSE_MAX_INTERVAL,
    AdaptiveRetrainPolicy,
    DriftDecision,
    DriftMonitor,
)

__all__ = [
    "AdaptiveRetrainPolicy",
    "CAUSE_INITIAL",
    "CAUSE_MAX_INTERVAL",
    "DriftDecision",
    "DriftMonitor",
    "EventMixDetector",
    "InterArrivalDetector",
    "RuleHitRateDetector",
    "js_divergence",
    "ks_statistic",
]
