"""Fixed-cadence vs drift-triggered retraining on a named scenario.

This is the measurement behind the adaptive-retraining claim: on a
trace with one known regime change (:mod:`repro.raslog.scenarios`),
stream the same clean log through two otherwise-identical sessions —
one retraining every ``WR`` weeks, one on the
:class:`~repro.adapt.policy.AdaptiveRetrainPolicy` — and compare what
each paid (retraining count) for what it got (post-shift recall).  The
``drift_adapt`` bench suite records the result; CI gates its ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.adapt.policy import CAUSE_INITIAL
from repro.core.framework import FrameworkConfig
from repro.core.session import SessionCore
from repro.evaluation.matching import match_warnings
from repro.raslog.generator import SyntheticLog
from repro.raslog.scenarios import get_scenario
from repro.utils.timeutil import WEEK_SECONDS


@dataclass(frozen=True, slots=True)
class ArmOutcome:
    """What one retraining policy did on the scenario trace."""

    trigger: str
    n_retrains: int
    retrain_weeks: tuple[int, ...]
    n_warnings: int
    recall: float
    precision: float
    post_shift_recall: float
    post_shift_precision: float
    #: adaptive arm only — weekly drift-evaluation accounting
    drift: dict[str, Any] | None = None


@dataclass(frozen=True, slots=True)
class ScenarioComparison:
    """Both arms plus the derived headline numbers."""

    scenario: str
    shift_week: int
    fixed: ArmOutcome
    adaptive: ArmOutcome
    #: week of the first drift-caused retraining at/after the shift,
    #: or None if the detectors never fired
    trigger_week: int | None = None
    #: evaluation weeks between the shift and that retraining (the
    #: earliest possible value is 1: the first boundary *after* a week
    #: of drifted data has streamed)
    trigger_delay_weeks: int | None = None
    #: fraction of the fixed cadence's retrainings the policy skipped
    retrains_saved_ratio: float = 0.0
    extras: dict[str, Any] = field(default_factory=dict)


def _stream(config: FrameworkConfig, syn: SyntheticLog) -> SessionCore:
    core = SessionCore(config, catalog=syn.catalog, origin=0.0)
    for event in syn.clean:
        core.ingest(event)
    core.flush()
    return core


def _post_shift(core: SessionCore, syn: SyntheticLog, shift_week: int):
    """Accuracy restricted to the post-shift tail of the trace."""
    shift_t = shift_week * WEEK_SECONDS
    warnings = [w for w in core.warnings if w.time >= shift_t]
    keep = syn.fatal_times >= shift_t
    times = np.asarray(syn.fatal_times[keep], dtype=np.float64)
    codes = [c for c, k in zip(syn.fatal_codes, keep) if k]
    return match_warnings(warnings, times, codes), len(warnings)


def _outcome(
    core: SessionCore, syn: SyntheticLog, shift_week: int
) -> ArmOutcome:
    summary = core.summary()
    post, _ = _post_shift(core, syn, shift_week)
    return ArmOutcome(
        trigger=core.config.retrain_trigger,
        n_retrains=len(core.retrains),
        retrain_weeks=tuple(r.week for r in core.retrains),
        n_warnings=summary.n_warnings,
        recall=summary.matching.recall,
        precision=summary.matching.precision,
        post_shift_recall=post.recall,
        post_shift_precision=post.precision,
        drift=core.drift_status(),
    )


def compare_on_scenario(
    scenario: str = "reconfiguration",
    *,
    scale: float = 1.0,
    seed: int | None = None,
    initial_train_weeks: int = 4,
    retrain_weeks: int = 4,
    adapt_overrides: dict[str, Any] | None = None,
) -> ScenarioComparison:
    """Run both retraining policies over one scenario trace.

    ``retrain_weeks`` is both the fixed arm's cadence and (by default)
    well below the adaptive arm's ``WR_max`` safety net, so every
    retraining the adaptive arm performs beyond the initial one is a
    decision, not a schedule.
    """
    pack = get_scenario(scenario)
    syn = pack.generate(scale=scale, seed=seed)

    fixed_config = FrameworkConfig(
        initial_train_weeks=initial_train_weeks,
        retrain_weeks=retrain_weeks,
    )
    adaptive_config = FrameworkConfig(
        initial_train_weeks=initial_train_weeks,
        retrain_weeks=retrain_weeks,
        retrain_trigger="adaptive",
        **(adapt_overrides or {}),
    )

    fixed = _outcome(_stream(fixed_config, syn), syn, pack.shift_week)
    adaptive_core = _stream(adaptive_config, syn)
    adaptive = _outcome(adaptive_core, syn, pack.shift_week)

    status = adaptive_core.drift_status() or {}
    trigger_week: int | None = None
    for entry in status.get("triggers", ()):
        if entry["cause"] != CAUSE_INITIAL and entry["week"] >= pack.shift_week:
            trigger_week = entry["week"]
            break
    delay = None if trigger_week is None else trigger_week - pack.shift_week
    saved = (
        1.0 - adaptive.n_retrains / fixed.n_retrains
        if fixed.n_retrains
        else 0.0
    )
    return ScenarioComparison(
        scenario=scenario,
        shift_week=pack.shift_week,
        fixed=fixed,
        adaptive=adaptive,
        trigger_week=trigger_week,
        trigger_delay_weeks=delay,
        retrains_saved_ratio=saved,
        extras={
            "scale": scale,
            "seed": pack.seed if seed is None else seed,
            "n_events": len(syn.clean),
            "n_fatal": syn.n_fatal,
        },
    )


__all__ = ["ArmOutcome", "ScenarioComparison", "compare_on_scenario"]
