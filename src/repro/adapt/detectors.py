"""Deterministic online drift detectors over the filtered stream.

Three complementary views of "the failure patterns moved", each cheap
enough to run per event and each answering for a different way a regime
can change:

* :class:`EventMixDetector` — *what* is being logged.  Jensen–Shannon
  divergence between a frozen baseline histogram over event codes and a
  sliding window of the most recent codes.  Catches reconfigurations
  that rewrite the precursor/fatal type mix even when volume holds.
* :class:`InterArrivalDetector` — *when* things are logged.  A
  two-sample Kolmogorov–Smirnov statistic between a frozen baseline
  sample of per-location inter-arrival gaps and the current sliding
  sample.  Catches burst-structure flips (tight cascades becoming
  sparse trains and vice versa) that age statistical rules.
* :class:`RuleHitRateDetector` — whether the *deployed rules* still
  fire.  An EWMA of per-rule fire counts per evaluation period, scored
  as the fraction of post-retrain baseline rules whose rate decayed
  below a ratio of their baseline (rule churn as drift signal).

All three are pure state machines: no wall clock, no RNG, no I/O.
State round-trips through ``snapshot()``/``restore()`` (checkpoint
format v3) and is rebuilt identically by journal replay, which is what
keeps ``recover()`` warning-for-warning equivalent across a
drift-triggered retrain boundary.  ``rebaseline()`` is called after
every successful retraining: the stream the new rules were trained on
becomes the new definition of "normal".
"""

from __future__ import annotations

import math
from collections import Counter, deque
from typing import Any, Mapping, Sequence

from repro.alerts import FailureWarning

#: Fewer samples than this on either side and a distribution statistic
#: is noise, not signal — the detectors report 0.0 instead.
MIN_SAMPLES = 16


def js_divergence(p: Mapping[str, int], q: Mapping[str, int]) -> float:
    """Jensen–Shannon divergence (base 2, in ``[0, 1]``) of two histograms."""
    total_p = sum(p.values())
    total_q = sum(q.values())
    if total_p == 0 or total_q == 0:
        return 0.0
    js = 0.0
    for key in p.keys() | q.keys():
        pi = p.get(key, 0) / total_p
        qi = q.get(key, 0) / total_q
        mi = 0.5 * (pi + qi)
        if pi > 0.0:
            js += 0.5 * pi * math.log2(pi / mi)
        if qi > 0.0:
            js += 0.5 * qi * math.log2(qi / mi)
    # Clamp float residue: JS with log2 is bounded by 1 exactly.
    return min(max(js, 0.0), 1.0)


def ks_statistic(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample KS statistic ``sup |F_a - F_b|`` over sorted samples.

    The CDF difference is evaluated only *between* distinct values: both
    pointers drain every sample tied at the current value before the
    difference is taken.  Measuring mid-tie would report ~k/n for two
    identical samples containing a k-long tie — and inter-arrival gaps
    from periodic health checks are exactly such data.
    """
    if not a or not b:
        return 0.0
    i = j = 0
    n_a, n_b = len(a), len(b)
    stat = 0.0
    while i < n_a and j < n_b:
        v = a[i] if a[i] <= b[j] else b[j]
        while i < n_a and a[i] <= v:
            i += 1
        while j < n_b and b[j] <= v:
            j += 1
        stat = max(stat, abs(i / n_a - j / n_b))
    return stat


class EventMixDetector:
    """JS divergence of the sliding event-code window vs a frozen baseline.

    Cascade bursts and warning floods repeat one code dozens of times in
    minutes; counted raw they dominate a small window and the divergence
    measures burst luck, not mix change.  ``bucket_seconds`` collapses
    them: a code re-enters the window only after that long a gap, so the
    histogram tracks *which* codes are in play — the thing a
    reconfiguration rewrites — rather than how loudly each one fired.
    """

    name = "event_mix"

    def __init__(
        self, window_events: int = 256, bucket_seconds: float = 600.0
    ) -> None:
        if window_events < MIN_SAMPLES:
            raise ValueError(
                f"window_events must be >= {MIN_SAMPLES}, got {window_events}"
            )
        if bucket_seconds < 0:
            raise ValueError(
                f"bucket_seconds must be >= 0, got {bucket_seconds}"
            )
        self.window_events = window_events
        self.bucket_seconds = bucket_seconds
        self._window: deque[str] = deque(maxlen=window_events)
        self._last_seen: dict[str, float] = {}
        self._baseline: dict[str, int] | None = None

    def observe(self, code: str, timestamp: float) -> None:
        last = self._last_seen.get(code)
        if last is not None and timestamp - last < self.bucket_seconds:
            return
        self._last_seen[code] = timestamp
        self._window.append(code)

    def score(self) -> float:
        if self._baseline is None or len(self._window) < MIN_SAMPLES:
            return 0.0
        return js_divergence(self._baseline, Counter(self._window))

    def rebaseline(self) -> None:
        """Freeze the current window as the new "normal" mix."""
        self._baseline = (
            dict(Counter(self._window))
            if len(self._window) >= MIN_SAMPLES
            else None
        )

    def snapshot(self) -> dict[str, Any]:
        return {
            "window": list(self._window),
            "last_seen": dict(self._last_seen),
            "baseline": self._baseline,
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        self._window.clear()
        self._window.extend(state["window"])
        self._last_seen = dict(state["last_seen"])
        baseline = state["baseline"]
        self._baseline = None if baseline is None else dict(baseline)


class InterArrivalDetector:
    """KS statistic of per-location gap samples vs a frozen baseline.

    Gaps are measured *per reporting location* (the time since that
    location last logged anything), so a change in burst structure shows
    up even when the aggregate event rate is steady.
    """

    name = "interarrival"

    def __init__(self, window_gaps: int = 256) -> None:
        if window_gaps < MIN_SAMPLES:
            raise ValueError(
                f"window_gaps must be >= {MIN_SAMPLES}, got {window_gaps}"
            )
        self.window_gaps = window_gaps
        self._last_by_location: dict[str, float] = {}
        self._window: deque[float] = deque(maxlen=window_gaps)
        self._baseline: list[float] | None = None

    def observe(self, timestamp: float, location: str) -> None:
        last = self._last_by_location.get(location)
        self._last_by_location[location] = timestamp
        if last is not None and timestamp > last:
            self._window.append(timestamp - last)

    def score(self) -> float:
        if self._baseline is None or len(self._window) < MIN_SAMPLES:
            return 0.0
        return ks_statistic(self._baseline, sorted(self._window))

    def rebaseline(self) -> None:
        self._baseline = (
            sorted(self._window) if len(self._window) >= MIN_SAMPLES else None
        )

    def snapshot(self) -> dict[str, Any]:
        return {
            "last_by_location": dict(self._last_by_location),
            "window": list(self._window),
            "baseline": self._baseline,
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        self._last_by_location = dict(state["last_by_location"])
        self._window.clear()
        self._window.extend(state["window"])
        baseline = state["baseline"]
        self._baseline = None if baseline is None else list(baseline)


def _rule_label(rule_key: object) -> str:
    """Stable JSON-safe identity for a warning's ``rule_key`` tuple."""
    return repr(rule_key)


class RuleHitRateDetector:
    """Fraction of post-retrain baseline rules whose fire rate decayed.

    Per evaluation period (one week in the session), the fires of each
    rule key are folded into an EWMA; after ``baseline_periods`` the
    EWMA is frozen as the rule set's healthy fire profile.  The score is
    the fraction of baseline rules now firing below ``decay_ratio`` of
    their baseline rate — rule churn read directly off the live stream,
    without waiting for labeled failures.

    Only rules averaging at least ``min_rate`` fires per period make the
    baseline: failures cluster, so a once-a-fortnight rule going quiet
    for a week is weather, and counting it as decay drowns the signal of
    the workhorse rules falling silent.
    """

    name = "rule_hit_rate"

    def __init__(
        self,
        alpha: float = 0.5,
        decay_ratio: float = 0.5,
        baseline_periods: int = 2,
        min_rules: int = 2,
        min_rate: float = 1.0,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha}")
        if not 0.0 < decay_ratio < 1.0:
            raise ValueError(
                f"decay_ratio must lie in (0, 1), got {decay_ratio}"
            )
        if baseline_periods < 1:
            raise ValueError(
                f"baseline_periods must be >= 1, got {baseline_periods}"
            )
        if min_rate < 0:
            raise ValueError(f"min_rate must be >= 0, got {min_rate}")
        self.alpha = alpha
        self.decay_ratio = decay_ratio
        self.baseline_periods = baseline_periods
        self.min_rules = min_rules
        self.min_rate = min_rate
        self._fires: dict[str, int] = {}
        self._ewma: dict[str, float] = {}
        self._baseline: dict[str, float] | None = None
        self._periods = 0

    def observe_warning(self, warning: FailureWarning) -> None:
        label = _rule_label(warning.rule_key)
        self._fires[label] = self._fires.get(label, 0) + 1

    def fold_period(self) -> None:
        """Close one evaluation period: fold fire counts into the EWMA."""
        for label in self._ewma.keys() | self._fires.keys():
            fires = float(self._fires.get(label, 0))
            prev = self._ewma.get(label)
            self._ewma[label] = (
                fires
                if prev is None
                else self.alpha * fires + (1.0 - self.alpha) * prev
            )
        self._fires.clear()
        self._periods += 1
        if self._baseline is None and self._periods >= self.baseline_periods:
            baseline = {
                k: v
                for k, v in self._ewma.items()
                if v > 0.0 and v >= self.min_rate
            }
            if len(baseline) >= self.min_rules:
                self._baseline = baseline

    def score(self) -> float:
        if not self._baseline:
            return 0.0
        decayed = sum(
            1
            for label, rate in self._baseline.items()
            if self._ewma.get(label, 0.0) < self.decay_ratio * rate
        )
        return decayed / len(self._baseline)

    def rebaseline(self) -> None:
        """A fresh rule set fires from scratch: drop all rate history."""
        self._fires.clear()
        self._ewma.clear()
        self._baseline = None
        self._periods = 0

    def snapshot(self) -> dict[str, Any]:
        return {
            "fires": dict(self._fires),
            "ewma": dict(self._ewma),
            "baseline": self._baseline,
            "periods": self._periods,
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        self._fires = dict(state["fires"])
        self._ewma = dict(state["ewma"])
        baseline = state["baseline"]
        self._baseline = None if baseline is None else dict(baseline)
        self._periods = state["periods"]


__all__ = [
    "EventMixDetector",
    "InterArrivalDetector",
    "MIN_SAMPLES",
    "RuleHitRateDetector",
    "js_divergence",
    "ks_statistic",
]
