"""Command-line interface.

The subcommands cover the operational lifecycle::

    repro generate    # synthesize a Blue Gene/L trace (LogHub format)
    repro preprocess  # categorize + filter a raw log
    repro train       # mine + revise rules, write them as JSON
    repro predict     # replay a log against a rule file
    repro run         # full dynamic train-and-predict loop
                      # (--shard-by location / --shards N for a fleet)
    repro serve       # long-running TCP ingestion server in front of a
                      # fleet (micro-batching, backpressure, SIGTERM drain,
                      # shard supervision with auto-restore)
    repro fleet       # control plane: status / rebalance (live shard
                      # split + merge) / rolling restart
    repro recover     # crash-consistent restart: checkpoint + WAL replay
                      # (--fleet-dir recovers a whole sharded fleet)
    repro metrics     # stream a log and emit per-stage metrics as JSON
    repro bench       # run perf suites, append BENCH_* trajectories
    repro experiment  # regenerate a paper table/figure

All commands exchange logs in the LogHub BGL line format and rules in the
JSON schema of :mod:`repro.core.serialization`, so each stage can be
inspected and swapped independently; ``repro serve`` speaks the ndjson
frame protocol of :mod:`repro.net.protocol` (see ``docs/protocol.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections.abc import Sequence
from pathlib import Path

from repro import observe
from repro.core.framework import DynamicMetaLearningFramework, FrameworkConfig
from repro.core.knowledge import RuleRecord
from repro.core.meta import MetaLearner
from repro.core.predictor import Predictor
from repro.core.reviser import Reviser
from repro.core.serialization import dump_repository, load_repository
from repro.core.windows import dynamic_months, static_initial
from repro.core.online import OnlinePredictionSession
from repro.evaluation.matching import extract_failures, match_warnings
from repro.evaluation.timeline import rolling_metrics
from repro.parallel.executor import make_executor
from repro.preprocess.pipeline import PreprocessingPipeline
from repro.raslog.catalog import default_catalog
from repro.raslog.generator import GeneratorConfig, generate_log
from repro.raslog.parser import ParseError, ParseReport, dump_log, load_log
from repro.raslog.profiles import PROFILES, get_profile
from repro.resilience import (
    CheckpointError,
    EventJournal,
    JournalError,
    parse_fsync_policy,
)
from repro.net.protocol import ProtocolError
from repro.service import PredictionService, ReshardError
from repro.utils.tables import TableResult


def _cmd_generate(args: argparse.Namespace) -> int:
    profile = get_profile(args.system)
    config = GeneratorConfig(
        scale=args.scale,
        weeks=args.weeks,
        seed=args.seed,
        duplicates=not args.clean,
    )
    trace = generate_log(profile, config)
    log = trace.clean if args.clean else trace.raw
    assert log is not None
    n = dump_log(log, args.output)
    kind = "clean (categorized)" if args.clean else "raw (duplicated)"
    print(
        f"wrote {n} {kind} records over {log.n_weeks} weeks "
        f"({trace.n_fatal} failures) to {args.output}"
    )
    return 0


def _cmd_preprocess(args: argparse.Namespace) -> int:
    report = ParseReport()
    raw = load_log(args.input, report=report)
    pipeline = PreprocessingPipeline(threshold=args.threshold)
    result = pipeline.run(raw)
    dump_log(result.clean, args.output)
    print(
        f"parsed {report.parsed} records ({report.skipped} skipped); "
        f"categorized {result.categorization.matched} "
        f"({result.categorization.demoted_fatals} fake fatals demoted); "
        f"filtered to {len(result.clean)} events "
        f"({result.compression_rate:.1%} compression) -> {args.output}"
    )
    return 0


def _prepare_log(path: str, strict: bool = False):
    """Load + preprocess a log; returns ``(log, parse_report)``.

    In strict mode the first malformed line raises :class:`ParseError`
    (mapped to exit code 2 in :func:`main`); otherwise malformed lines
    are skipped and counted in the report.
    """
    report = ParseReport()
    log = load_log(path, strict=strict, report=report)
    pipeline = PreprocessingPipeline()
    return pipeline.run(log).clean.with_origin(log.origin), report


def _print_parse_report(report: ParseReport) -> None:
    """Surface skipped-line counts (and the first few reasons) on stderr."""
    if not report.skipped:
        return
    print(
        f"parse: skipped {report.skipped} malformed line(s), "
        f"kept {report.parsed}",
        file=sys.stderr,
    )
    for err in report.errors[:3]:
        print(f"  line {err.line_no}: {err.reason}", file=sys.stderr)


def _cmd_train(args: argparse.Namespace) -> int:
    log, _ = _prepare_log(args.input)
    catalog = default_catalog()
    meta = MetaLearner(catalog=catalog)
    output = meta.train(log, args.window)
    candidates = output.records()
    if args.no_reviser:
        kept: list[RuleRecord] = candidates
        removed = 0
    else:
        revision = Reviser(catalog=catalog).revise(candidates, log, args.window)
        kept = revision.kept
        removed = len(revision.removed)
    from repro.core.knowledge import KnowledgeRepository

    repo = KnowledgeRepository(kept)
    dump_repository(repo, args.output)
    print(
        f"trained on {len(log)} events: {len(candidates)} candidate rules, "
        f"{removed} removed by the reviser, {len(kept)} written to {args.output}"
    )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    log, _ = _prepare_log(args.input)
    repo = load_repository(args.rules)
    catalog = default_catalog()
    predictor = Predictor(repo.rules(), window=args.window, catalog=catalog)
    if len(log):
        predictor.state.clock = float(log.timestamps[0]) - 1.0
    warnings = predictor.replay(log)
    fatal_times, fatal_codes = extract_failures(log, catalog)
    result = match_warnings(warnings, fatal_times, fatal_codes)
    print(
        f"replayed {len(log)} events against {len(repo)} rules: "
        f"{len(warnings)} warnings, {result.true_positives} correct; "
        f"covered {result.covered_failures}/{result.n_fatal} failures"
    )
    if args.verbose:
        for w in warnings[: args.max_warnings]:
            print(
                f"  t={w.time:12.0f}  {w.learner:13s} -> {w.predicted} "
                f"(within {w.window:.0f}s)"
            )
    return 0


def _run_streaming(
    args: argparse.Namespace, config: FrameworkConfig, recover: bool = False
) -> int:
    """`repro run`/`repro recover`: stream through an online session."""
    log, report = _prepare_log(args.input, strict=args.strict)
    _print_parse_report(report)
    journal = (
        EventJournal(args.journal, fsync=args.journal_fsync)
        if args.journal
        else None
    )
    try:
        executor = make_executor(args.executor, args.workers)
        if recover:
            assert journal is not None
            session = OnlinePredictionSession.recover(
                args.checkpoint,
                journal,
                config,
                executor=executor,
                origin=log.origin,
                own_executor=True,
            )
            skip = session.n_ingested
            print(
                f"recovered from {args.checkpoint} + journal {args.journal}: "
                f"{skip} events already ingested "
                f"({journal.n_torn_truncated} torn record(s) truncated), "
                f"clock at {session.current_week} weeks",
                file=sys.stderr,
            )
        elif args.resume:
            session = OnlinePredictionSession.resume(
                args.resume,
                config,
                executor=executor,
                own_executor=True,
                journal=journal,
            )
            skip = session.n_ingested
            print(
                f"resumed from {args.resume}: {skip} events already ingested, "
                f"clock at {session.current_week} weeks",
                file=sys.stderr,
            )
        else:
            session = OnlinePredictionSession(
                config,
                executor=executor,
                origin=log.origin,
                own_executor=True,
                journal=journal,
            )
            skip = 0
        every = args.checkpoint_every
        with session:
            for i, event in enumerate(log):
                if i < skip:
                    continue
                session.ingest(event)
                if args.checkpoint and every and (i + 1 - skip) % every == 0:
                    session.checkpoint(args.checkpoint)
            session.flush()
            if args.checkpoint:
                session.checkpoint(args.checkpoint)
            summary = session.summary()
            drift = session.drift_status()
    finally:
        if journal is not None:
            journal.close()
    print(
        f"streamed {summary.n_events} events: "
        f"precision={summary.precision:.3f} recall={summary.recall:.3f} "
        f"({summary.n_warnings} warnings, {len(summary.retrains)} retrainings, "
        f"{len(summary.retrain_failures)} retrain failures, "
        f"{summary.n_quarantined} quarantined)"
    )
    if drift is not None:
        print(_render_drift(drift))
    return 0


def _sharding_requested(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "shard_by", None)
        or getattr(args, "shards", None)
        or getattr(args, "fleet_dir", None)
        or getattr(args, "backend", None)
    )


def _render_drift(status: dict, indent: str = "  ") -> str:
    """One-line operator rendering of a DriftMonitor.status() dict."""
    scores = ", ".join(
        f"{name}={value:.2f}" for name, value in sorted(status["scores"].items())
    )
    triggers = ", ".join(
        f"wk{t['week']}:{t['cause']}" for t in status["triggers"]
    ) or "none"
    return (
        f"{indent}drift: scores [{scores}] "
        f"{'armed' if status['armed'] else 'disarmed'}, "
        f"last retrain wk{status['last_retrain_week']}, "
        f"{status['evaluations']} evaluations "
        f"({status['skipped_retrains']} skipped, "
        f"{status['deferred']} deferred), triggers: {triggers}"
    )


def _print_fleet_summary(summary) -> None:
    print(
        f"streamed {summary.n_events} events across {summary.n_shards} "
        f"shard(s): precision={summary.precision:.3f} "
        f"recall={summary.recall:.3f} "
        f"({summary.n_warnings} warnings, {summary.n_retrains} retrainings, "
        f"{summary.n_retrain_failures} retrain failures, "
        f"{summary.n_quarantined} quarantined)"
    )
    for key in sorted(summary.shards):
        s = summary.shards[key]
        print(
            f"  shard {key}: {s.n_events} events, {s.n_warnings} warnings, "
            f"precision={s.precision:.3f} recall={s.recall:.3f}"
        )


def _run_service(
    args: argparse.Namespace, config: FrameworkConfig, recover: bool = False
) -> int:
    """`repro run --shard-by ...`: stream through a sharded fleet."""
    log, report = _prepare_log(args.input, strict=args.strict)
    _print_parse_report(report)
    executor = make_executor(args.executor, args.workers)
    if recover:
        service = PredictionService.recover(
            args.fleet_dir,
            config,
            executor=executor,
            own_executor=True,
            origin=log.origin,
            journal_fsync=args.journal_fsync,
            backend=args.backend,
        )
        skipped = {k: service.session(k).n_ingested for k in service.shard_keys}
        print(
            f"recovered fleet from {args.fleet_dir}: "
            f"{len(service.shard_keys)} shard(s), "
            f"{sum(skipped.values())} events already ingested",
            file=sys.stderr,
        )
    else:
        service = PredictionService(
            config,
            shard_by=args.shard_by or "location",
            shards=args.shards,
            executor=executor,
            own_executor=True,
            origin=log.origin,
            fleet_dir=args.fleet_dir,
            journal_fsync=args.journal_fsync,
            retain_journals=args.retain_journals,
            backend=args.backend,
        )
        skipped = {}
    every = args.checkpoint_every
    durable = service.fleet_dir is not None
    ingested = 0
    with service:
        for event in log:
            key = service.router.key(event)
            if skipped.get(key, 0) > 0:
                skipped[key] -= 1
                continue
            service.ingest(event)
            ingested += 1
            if durable and every and ingested % every == 0:
                service.checkpoint()
        service.flush()
        if durable:
            service.checkpoint()
        summary = service.summary()
        drift = service.drift_status() if service.adaptive else None
    _print_fleet_summary(summary)
    if drift:
        for key in sorted(drift):
            if drift[key] is not None:
                print(f"  shard {key}:")
                print(_render_drift(drift[key], indent="    "))
    return 0


def _framework_config(args: argparse.Namespace) -> FrameworkConfig:
    """Shared `repro run`/`repro recover` options -> FrameworkConfig."""
    policy = (
        static_initial(args.train_months)
        if args.static
        else dynamic_months(args.train_months)
    )
    return FrameworkConfig(
        prediction_window=args.window,
        retrain_weeks=args.retrain_weeks,
        policy=policy,
        initial_train_weeks=args.initial_weeks,
        use_reviser=not args.no_reviser,
        on_retrain_error=args.on_retrain_error,
        retrain_trigger=args.retrain_trigger,
        adapt_cooldown_weeks=args.adapt_cooldown_weeks,
        adapt_max_interval_weeks=args.adapt_max_interval_weeks,
    )


def _cmd_recover(args: argparse.Namespace) -> int:
    config = _framework_config(args)
    if args.fleet_dir:
        return _run_service(args, config, recover=True)
    return _run_streaming(args, config, recover=True)


def _cmd_run(args: argparse.Namespace) -> int:
    config = _framework_config(args)
    if _sharding_requested(args):
        return _run_service(args, config)
    if (
        args.checkpoint
        or args.resume
        or args.journal
        or config.retrain_trigger == "adaptive"
    ):
        # The adaptive trigger lives in the online session (drift
        # detectors feed off the stream); the batch framework below
        # only knows the paper's fixed cadence.
        return _run_streaming(args, config)
    log, report = _prepare_log(args.input, strict=args.strict)
    _print_parse_report(report)
    with DynamicMetaLearningFramework(
        config,
        executor=make_executor(args.executor, args.workers),
        own_executor=True,
    ) as framework:
        result = framework.run(log)
    print(
        f"{'static' if args.static else 'dynamic'} run over weeks "
        f"{result.start_week}-{result.end_week}: "
        f"precision={result.overall.precision:.3f} "
        f"recall={result.overall.recall:.3f} "
        f"({len(result.warnings)} warnings, {len(result.retrains)} retrainings)"
    )
    if result.retrain_failures:
        print(
            f"degraded mode absorbed {len(result.retrain_failures)} "
            f"retraining failure(s) "
            f"(weeks {sorted({f.week for f in result.retrain_failures})})",
            file=sys.stderr,
        )
    table = TableResult(
        title="weekly accuracy (4-week smoothed)",
        columns=["week", "precision", "recall", "warnings", "failures"],
    )
    for wm in rolling_metrics(result.weekly, 4):
        table.add_row(
            week=wm.week,
            precision=round(wm.precision, 3),
            recall=round(wm.recall, 3),
            warnings=wm.n_warnings,
            failures=wm.n_fatal,
        )
    print(table.render())
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Stream a log through the online session and dump the registry.

    Everything — preprocessing, per-learner training, revision, predictor
    matching, retrain rounds — records into one fresh
    :class:`~repro.observe.MetricsRegistry`, which is then written as JSON
    (the same per-stage breakdown the benchmark harness attaches to its
    output files).
    """
    registry = observe.MetricsRegistry()
    with observe.use_registry(registry):
        log, report = _prepare_log(args.input, strict=args.strict)
        _print_parse_report(report)
        config = FrameworkConfig(
            prediction_window=args.window,
            retrain_weeks=args.retrain_weeks,
            policy=dynamic_months(args.train_months),
            initial_train_weeks=args.initial_weeks,
            retrain_trigger=args.retrain_trigger,
        )
        if _sharding_requested(args):
            with PredictionService(
                config,
                shard_by=args.shard_by or "location",
                shards=args.shards,
                executor=make_executor(args.executor, args.workers),
                own_executor=True,
                origin=log.origin,
                backend=args.backend,
            ) as service:
                for event in log:
                    service.ingest(event)
                service.flush()
                # Snapshot through the service so worker-process series
                # (subprocess backend) are folded in; inproc this is
                # just the registry's own snapshot.
                snapshot = service.merged_metrics()
                summary = service.summary()
            n_retrains = summary.n_retrains
        else:
            with OnlinePredictionSession(
                config,
                executor=make_executor(args.executor, args.workers),
                origin=log.origin,
                own_executor=True,
            ) as session:
                for event in log:
                    session.ingest(event)
                summary = session.summary()
            n_retrains = len(summary.retrains)
            snapshot = registry.snapshot()
    text = json.dumps(snapshot, indent=args.indent, sort_keys=True)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {len(snapshot)} metrics to {args.output}")
    else:
        print(text)
    print(
        f"streamed {summary.n_events} events: {summary.n_warnings} warnings, "
        f"{n_retrains} retrainings, "
        f"precision={summary.precision:.3f} recall={summary.recall:.3f}",
        file=sys.stderr,
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """`repro serve`: TCP ingestion front-end over a prediction fleet.

    With ``--fleet-dir`` pointing at an existing fleet (its manifest is
    present), the fleet is recovered crash-consistently before serving —
    so ``repro serve`` after a kill *is* the recovery path, and producers
    only need to replay their unacknowledged tails.  SIGTERM/SIGINT
    triggers a graceful drain: stop accepting, commit pending
    micro-batches, checkpoint every shard, exit 0.
    """
    import asyncio

    from repro.net.server import PredictionServer
    from repro.service.service import MANIFEST_NAME

    config = _framework_config(args)
    executor = make_executor(args.executor, args.workers)
    fleet_dir = args.fleet_dir
    if fleet_dir and (Path(fleet_dir) / MANIFEST_NAME).exists():
        service = PredictionService.recover(
            fleet_dir,
            config,
            executor=executor,
            own_executor=True,
            origin=args.origin,
            journal_fsync=args.journal_fsync,
            backend=args.backend,
        )
        print(
            f"recovered fleet from {fleet_dir}: "
            f"{len(service.shard_keys)} shard(s), "
            f"{service.n_ingested} events already ingested",
            file=sys.stderr,
        )
    else:
        service = PredictionService(
            config,
            shard_by=args.shard_by or "location",
            shards=args.shards,
            executor=executor,
            own_executor=True,
            origin=args.origin,
            fleet_dir=fleet_dir,
            journal_fsync=args.journal_fsync,
            retain_journals=args.retain_journals,
            backend=args.backend,
        )
    server = PredictionServer(
        service,
        host=args.host,
        port=args.port,
        batch_size=args.batch_size,
        max_linger=args.max_linger,
        max_pending=args.max_pending,
        max_unacked=args.max_unacked,
        subscriber_queue=args.subscriber_queue,
        checkpoint_every=args.checkpoint_every,
    )

    def ready() -> None:
        durability = (
            f"fleet-dir {fleet_dir}" if fleet_dir else "no fleet dir (volatile)"
        )
        print(
            f"serving on {server.host}:{server.port} "
            f"(batch {server.batch_size}, linger {server.max_linger}s, "
            f"{durability})",
            flush=True,
        )

    stats = asyncio.run(
        server.serve(ready=ready, install_signal_handlers=True)
    )
    print(
        f"drained: {stats['accepted']} events accepted over "
        f"{stats['connections']} connection(s), {stats['shed']} shed, "
        f"{stats['errors']} errors"
    )
    return 0


def _fleet_client(args: argparse.Namespace):
    from repro.net.client import PredictionClient

    return PredictionClient(args.host, args.port, timeout=args.timeout)


def _print_shard_table(shards: dict) -> None:
    for key in sorted(shards):
        h = shards[key]
        line = f"  {key}: {h['state']}"
        if h.get("pid") is not None:
            line += f" pid={h['pid']}"
        if h.get("restarts"):
            line += f" restarts={h['restarts']}"
        if h.get("last_error"):
            line += f" last_error={h['last_error']!r}"
        print(line)


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    """`repro fleet status`: topology + per-shard health."""
    if args.fleet_dir:
        import json

        from repro.service.service import MANIFEST_NAME

        manifest_path = Path(args.fleet_dir) / MANIFEST_NAME
        if not manifest_path.exists():
            print(f"error: no fleet manifest at {manifest_path}", file=sys.stderr)
            return 2
        manifest = json.loads(manifest_path.read_text())
        migration = manifest.get("migration")
        print(
            f"fleet {args.fleet_dir}: epoch {manifest.get('epoch', 0)}, "
            f"{len(manifest['shards'])} shard(s)"
            + (
                f", IN-FLIGHT {migration['kind']} -> epoch "
                f"{migration['epoch']} (will roll forward on recovery)"
                if migration
                else ""
            )
        )
        for entry in manifest["shards"]:
            print(f"  {entry['key']}: {entry['dir']}")
        return 0
    with _fleet_client(args) as client:
        status = client.fleet_status()
    migration = status.get("migration")
    print(
        f"fleet at {args.host}:{args.port}: epoch {status['epoch']}, "
        f"{len(status['shards'])} shard(s)"
        + (
            f", {status['backend']} backend"
            if status.get("backend")
            else ""
        )
        + (f", migration in flight: {migration['kind']}" if migration else "")
        + (
            ", adaptive retraining"
            if status.get("retrain_trigger") == "adaptive"
            else ""
        )
    )
    _print_shard_table(status["shards"])
    drift = status.get("drift") or {}
    for key in sorted(drift):
        if drift[key] is not None:
            print(f"  {key}:")
            print(_render_drift(drift[key], indent="    "))
    return 0


def _cmd_fleet_rebalance(args: argparse.Namespace) -> int:
    """`repro fleet rebalance`: split a hot shard or merge cold ones.

    Live against a served fleet (``--host``/``--port``), or offline
    against a ``--fleet-dir`` (the fleet is recovered, resharded and
    checkpointed in-process).
    """
    if bool(args.split) == bool(args.merge):
        print(
            "error: rebalance needs exactly one of --split SHARD or "
            "--merge SHARD SHARD...",
            file=sys.stderr,
        )
        return 2
    if args.fleet_dir:
        service = PredictionService.recover(args.fleet_dir)
        with service:
            if args.split:
                targets = service.split_shard(args.split, args.parts)
                print(
                    f"split {args.split} -> {', '.join(targets)} "
                    f"(epoch {service.epoch})"
                )
            else:
                target = service.merge_shards(args.merge, args.target)
                print(
                    f"merged {', '.join(args.merge)} -> {target} "
                    f"(epoch {service.epoch})"
                )
            service.checkpoint()
        return 0
    with _fleet_client(args) as client:
        if args.split:
            result = client.split_shard(args.split, args.parts)
            print(
                f"split {args.split} -> {', '.join(result['targets'])} "
                f"(epoch {result['epoch']})"
            )
        else:
            result = client.merge_shards(args.merge, args.target)
            print(
                f"merged {', '.join(args.merge)} -> {result['target']} "
                f"(epoch {result['epoch']})"
            )
    return 0


def _cmd_fleet_restart(args: argparse.Namespace) -> int:
    """`repro fleet restart`: rolling restart of a *served* fleet."""
    with _fleet_client(args) as client:
        result = client.rolling_restart()
    restarted = result.get("restarted", [])
    print(
        f"rolling restart complete: {len(restarted)} shard(s) "
        f"({', '.join(restarted)})"
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run perf suites and append each run to its BENCH_* trajectory.

    See :mod:`repro.perf` for the artifact format and
    ``scripts/check_perf_regression.py`` for the gate that consumes it.
    """
    from repro.perf import SUITES, run_suite

    if args.list:
        for name in sorted(SUITES):
            print(name)
        return 0
    if args.scenario is not None:
        # A scenario pins the regime-change trace of the drift suite;
        # the other suites have no notion of one.
        names = args.suite or ["drift_adapt"]
    else:
        names = args.suite or sorted(SUITES)
    unknown = [n for n in names if n not in SUITES]
    if unknown:
        print(
            f"unknown suite(s) {', '.join(unknown)}; "
            f"available: {', '.join(sorted(SUITES))}",
            file=sys.stderr,
        )
        return 2
    if args.scenario is not None and names != ["drift_adapt"]:
        print(
            "--scenario only applies to the drift_adapt suite",
            file=sys.stderr,
        )
        return 2
    if args.scenario is not None:
        from repro.raslog.scenarios import SCENARIOS

        if args.scenario not in SCENARIOS:
            print(
                f"unknown scenario {args.scenario!r}; "
                f"available: {', '.join(sorted(SCENARIOS))}",
                file=sys.stderr,
            )
            return 2
    for name in names:
        started = time.perf_counter()
        path, metrics = run_suite(
            name,
            smoke=args.smoke,
            directory=args.out_dir,
            scenario=args.scenario,
        )
        elapsed = time.perf_counter() - started
        print(f"{name} ({elapsed:.1f}s) -> {path}")
        for metric_name, metric in sorted(metrics.items()):
            print(f"  {metric_name}: {metric.value:,.2f} {metric.unit}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro import experiments

    driver = getattr(experiments, args.name, None)
    if driver is None or not hasattr(driver, "run"):
        available = [
            name
            for name in dir(experiments)
            if hasattr(getattr(experiments, name), "run")
        ]
        print(
            f"unknown experiment {args.name!r}; available: {available}",
            file=sys.stderr,
        )
        return 2
    kwargs = {}
    if args.name != "table3":
        kwargs["seed"] = args.seed
        if args.name not in ("table2",):
            kwargs["system"] = args.system
    result = driver.run(**kwargs)
    tables = result if isinstance(result, tuple) else (result,)
    for item in tables:
        if isinstance(item, TableResult):
            print(item.render())
            print()
    return 0


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid integer {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _fsync_policy(text: str) -> str | int:
    try:
        return parse_fsync_policy(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_model_options(parser: argparse.ArgumentParser) -> None:
    """Framework/model options shared by `run`, `recover` and `serve`."""
    parser.add_argument("--window", type=float, default=300.0)
    parser.add_argument("--retrain-weeks", type=int, default=4)
    parser.add_argument("--train-months", type=int, default=6)
    parser.add_argument("--initial-weeks", type=int, default=26)
    parser.add_argument("--static", action="store_true")
    parser.add_argument("--no-reviser", action="store_true")
    parser.add_argument(
        "--executor", default="serial", choices=("serial", "thread", "process")
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--on-retrain-error",
        default="raise",
        choices=("raise", "degrade"),
        help="degrade: absorb retraining crashes and keep predicting "
        "with the previous rules (default: raise)",
    )
    parser.add_argument(
        "--retrain-trigger",
        default="fixed",
        choices=("fixed", "adaptive"),
        help="adaptive: retrain when the repro.adapt drift detectors "
        "fire instead of every --retrain-weeks (default: fixed)",
    )
    parser.add_argument(
        "--adapt-cooldown-weeks",
        type=int,
        default=2,
        metavar="N",
        help="adaptive trigger: weeks after a retraining during which "
        "drift triggers are suppressed (default: 2)",
    )
    parser.add_argument(
        "--adapt-max-interval-weeks",
        type=int,
        default=8,
        metavar="N",
        help="adaptive trigger: retrain at least every N weeks even "
        "without drift (default: 8)",
    )


def _add_durability_options(parser: argparse.ArgumentParser) -> None:
    """Checkpoint cadence + journal fsync policy (`run`/`recover`/`serve`)."""
    parser.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        default=None,
        metavar="N",
        help="also checkpoint after every N ingested events (N >= 1)",
    )
    parser.add_argument(
        "--journal-fsync",
        type=_fsync_policy,
        default="always",
        metavar="POLICY",
        help="journal durability: 'always' (fsync every append), a "
        "positive integer N (fsync every N appends), or 'never' "
        "(default: always)",
    )
    parser.add_argument(
        "--retain-journals",
        action="store_true",
        help="keep each shard's full journal instead of compacting at "
        "checkpoints; required for `repro fleet rebalance` (split/merge "
        "rebuilds shards by replaying journals from the start)",
    )


def _add_streaming_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by `repro run` and `repro recover`."""
    parser.add_argument("input")
    _add_model_options(parser)
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail (exit 2) on the first malformed log line",
    )
    _add_durability_options(parser)
    _add_sharding_options(parser)


def _add_sharding_options(
    parser: argparse.ArgumentParser, fleet: bool = True
) -> None:
    """Fleet options shared by `repro run`, `repro recover`, `repro metrics`."""
    parser.add_argument(
        "--shard-by",
        default=None,
        choices=("location",),
        help="shard the stream into one prediction session per partition "
        "key (currently: the event's location)",
    )
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        metavar="N",
        help="hash-route locations into a fixed number of shards "
        "(crc32(location) %% N; implies sharding)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=("inproc", "subprocess"),
        help="shard placement: 'inproc' hosts every shard in this process "
        "(default), 'subprocess' gives each shard a shared-nothing worker "
        "process — true multi-core fleets at the cost of per-event IPC "
        "(defaults to $REPRO_SERVICE_BACKEND, else inproc)",
    )
    if fleet:
        parser.add_argument(
            "--fleet-dir",
            default=None,
            metavar="DIR",
            help="fleet durability directory: per-shard journal + checkpoint "
            "subdirectories plus an atomic service manifest (implies "
            "sharding; recover the fleet with `repro recover --fleet-dir`)",
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic meta-learning failure prediction (ICPP'08 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="synthesize a Blue Gene/L RAS trace")
    g.add_argument("--system", default="SDSC", choices=sorted(PROFILES))
    g.add_argument("--scale", type=float, default=0.05)
    g.add_argument("--weeks", type=int, default=None)
    g.add_argument("--seed", type=int, default=0)
    g.add_argument(
        "--clean",
        action="store_true",
        help="write the logical (categorized) stream instead of the raw dump",
    )
    g.add_argument("--output", required=True)
    g.set_defaults(func=_cmd_generate)

    p = sub.add_parser("preprocess", help="categorize and filter a raw log")
    p.add_argument("input")
    p.add_argument("--threshold", type=float, default=300.0)
    p.add_argument("--output", required=True)
    p.set_defaults(func=_cmd_preprocess)

    t = sub.add_parser("train", help="mine and revise rules from a log")
    t.add_argument("input")
    t.add_argument("--window", type=float, default=300.0)
    t.add_argument("--no-reviser", action="store_true")
    t.add_argument("--output", required=True)
    t.set_defaults(func=_cmd_train)

    pr = sub.add_parser("predict", help="replay a log against a rule file")
    pr.add_argument("input")
    pr.add_argument("--rules", required=True)
    pr.add_argument("--window", type=float, default=300.0)
    pr.add_argument("--verbose", action="store_true")
    pr.add_argument("--max-warnings", type=int, default=20)
    pr.set_defaults(func=_cmd_predict)

    r = sub.add_parser("run", help="full dynamic train-and-predict loop")
    _add_streaming_options(r)
    r.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="stream through an online session and checkpoint to PATH",
    )
    r.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="resume a previously checkpointed session and continue the log",
    )
    r.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help="write-ahead journal directory: append every accepted event "
        "before processing it, so a crash loses nothing past the last "
        "checkpoint (recover with `repro recover`)",
    )
    r.set_defaults(func=_cmd_run)

    srv = sub.add_parser(
        "serve",
        help="TCP ingestion server in front of a prediction fleet "
        "(ndjson frames; micro-batching, backpressure, graceful "
        "SIGTERM drain; re-serving an existing --fleet-dir recovers it)",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port",
        type=int,
        default=7337,
        help="TCP port; 0 picks an ephemeral port, printed on stdout "
        "(default: 7337)",
    )
    srv.add_argument(
        "--origin",
        type=float,
        default=0.0,
        help="stream origin timestamp anchoring week arithmetic "
        "(default: 0.0)",
    )
    srv.add_argument(
        "--batch-size",
        type=_positive_int,
        default=64,
        metavar="N",
        help="commit a shard's micro-batch at N events (default: 64)",
    )
    srv.add_argument(
        "--max-linger",
        type=float,
        default=0.02,
        metavar="SECONDS",
        help="commit a shard's micro-batch once its oldest event has "
        "waited this long (default: 0.02)",
    )
    srv.add_argument(
        "--max-pending",
        type=_positive_int,
        default=1024,
        metavar="N",
        help="per-shard bound on pending events before ingests are "
        "answered 'overloaded' (default: 1024)",
    )
    srv.add_argument(
        "--max-unacked",
        type=_positive_int,
        default=1024,
        metavar="N",
        help="per-connection bound on unacknowledged ingests before "
        "shedding (default: 1024)",
    )
    srv.add_argument(
        "--subscriber-queue",
        type=_positive_int,
        default=256,
        metavar="N",
        help="bounded warning fan-out queue per subscriber; overflow "
        "drops warnings for that subscriber only (default: 256)",
    )
    _add_model_options(srv)
    _add_durability_options(srv)
    _add_sharding_options(srv)
    srv.set_defaults(func=_cmd_serve)

    fl = sub.add_parser(
        "fleet",
        help="fleet control plane: per-shard health, live resharding "
        "(split/merge), rolling restart",
    )
    fls = fl.add_subparsers(dest="fleet_command", required=True)

    def _add_fleet_endpoint(
        parser: argparse.ArgumentParser, offline: bool = True
    ) -> None:
        parser.add_argument(
            "--host",
            default="127.0.0.1",
            help="served fleet to talk to (default: 127.0.0.1)",
        )
        parser.add_argument(
            "--port", type=int, default=7337, help="default: 7337"
        )
        parser.add_argument(
            "--timeout",
            type=float,
            default=60.0,
            help="socket timeout in seconds (default: 60)",
        )
        if offline:
            parser.add_argument(
                "--fleet-dir",
                default=None,
                metavar="DIR",
                help="operate offline on this fleet directory instead of "
                "a served fleet",
            )

    fst = fls.add_parser(
        "status", help="migration epoch and per-shard up/down/quarantined"
    )
    _add_fleet_endpoint(fst)
    fst.set_defaults(func=_cmd_fleet_status)

    frb = fls.add_parser(
        "rebalance",
        help="split a hot shard (--split SHARD --parts N) or merge cold "
        "ones (--merge SHARD SHARD... [--target KEY]); live over TCP or "
        "offline with --fleet-dir",
    )
    _add_fleet_endpoint(frb)
    frb.add_argument("--split", default=None, metavar="SHARD")
    frb.add_argument(
        "--parts",
        type=_positive_int,
        default=2,
        metavar="N",
        help="children for --split (default: 2)",
    )
    frb.add_argument("--merge", nargs="+", default=None, metavar="SHARD")
    frb.add_argument(
        "--target",
        default=None,
        metavar="KEY",
        help="merged shard's key (default: merged-<epoch>)",
    )
    frb.set_defaults(func=_cmd_fleet_rebalance)

    frs = fls.add_parser(
        "restart",
        help="rolling restart of a served fleet: each shard drains, "
        "checkpoints and rejoins while the rest keep serving",
    )
    _add_fleet_endpoint(frs, offline=False)
    frs.set_defaults(func=_cmd_fleet_restart)

    rec = sub.add_parser(
        "recover",
        help="crash-consistent restart: load the checkpoint, truncate any "
        "torn journal tail, replay the journal past the checkpoint, then "
        "continue the log",
    )
    _add_streaming_options(rec)
    rec.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="checkpoint file of the dead session (absent: replay the "
        "whole journal into a fresh session)",
    )
    rec.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help="write-ahead journal directory of the dead session",
    )
    rec.set_defaults(func=_cmd_recover, resume=None)

    m = sub.add_parser(
        "metrics",
        help="stream a log online and emit per-stage timing/counts as JSON",
    )
    m.add_argument("input")
    m.add_argument("--window", type=float, default=300.0)
    m.add_argument("--retrain-weeks", type=int, default=4)
    m.add_argument("--train-months", type=int, default=6)
    m.add_argument("--initial-weeks", type=int, default=26)
    m.add_argument(
        "--retrain-trigger",
        default="fixed",
        choices=("fixed", "adaptive"),
        help="adaptive: drift-triggered retraining; the adapt.* series "
        "(drift scores, trigger causes, skipped retrains) land in the "
        "emitted registry",
    )
    m.add_argument(
        "--executor", default="serial", choices=("serial", "thread", "process")
    )
    m.add_argument("--workers", type=int, default=None)
    m.add_argument("--indent", type=int, default=2)
    m.add_argument("--output", default=None)
    m.add_argument(
        "--strict",
        action="store_true",
        help="fail (exit 2) on the first malformed log line",
    )
    _add_sharding_options(m, fleet=False)
    m.set_defaults(func=_cmd_metrics, fleet_dir=None)

    e = sub.add_parser("experiment", help="regenerate a paper table/figure")
    e.add_argument("name", help="driver name, e.g. table4 or q3_window")
    e.add_argument("--system", default="SDSC", choices=sorted(PROFILES))
    e.add_argument("--seed", type=int, default=2008)
    e.set_defaults(func=_cmd_experiment)

    b = sub.add_parser(
        "bench",
        help="run perf suites, appending to BENCH_<topic>.json trajectories",
    )
    b.add_argument(
        "--suite",
        action="append",
        default=None,
        metavar="NAME",
        help="suite to run (repeatable; default: all). "
        "Use --list to see available suites",
    )
    b.add_argument(
        "--smoke",
        action="store_true",
        help="CI-scale workloads (distinct params_digest, so smoke runs "
        "are only ever gated against smoke baselines)",
    )
    b.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="regime-change scenario for the drift_adapt suite "
        "(reconfiguration, maintenance_window); implies --suite drift_adapt",
    )
    b.add_argument(
        "--out-dir",
        default=".",
        metavar="DIR",
        help="directory holding the BENCH_*.json trajectories (default: .)",
    )
    b.add_argument(
        "--list", action="store_true", help="list available suites and exit"
    )
    b.set_defaults(func=_cmd_bench)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "checkpoint_every", None) and not (
        getattr(args, "checkpoint", None) or getattr(args, "fleet_dir", None)
    ):
        parser.error("--checkpoint-every requires --checkpoint or --fleet-dir")
    if _sharding_requested(args) and (
        getattr(args, "checkpoint", None)
        or getattr(args, "resume", None)
        or getattr(args, "journal", None)
    ):
        parser.error(
            "sharding options (--shard-by/--shards/--fleet-dir/--backend) "
            "cannot be combined with single-session "
            "--checkpoint/--resume/--journal; fleet durability lives under "
            "--fleet-dir"
        )
    if args.command == "recover" and not getattr(args, "fleet_dir", None):
        if not (args.checkpoint and args.journal):
            parser.error(
                "recover needs --fleet-dir (fleet recovery) or both "
                "--checkpoint and --journal (single-session recovery)"
            )
    try:
        return args.func(args)
    except (
        ParseError,
        CheckpointError,
        JournalError,
        ProtocolError,
        ReshardError,
    ) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        # e.g. a missing/unreadable --resume checkpoint or log path
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
