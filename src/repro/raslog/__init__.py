"""RAS log substrate: event model, catalog, storage, parsing, generation."""

from repro.raslog.catalog import (
    TABLE3_COUNTS,
    TOTAL_FATAL_TYPES,
    TOTAL_NONFATAL_TYPES,
    EventCatalog,
    EventType,
    build_catalog,
    default_catalog,
)
from repro.raslog.drift import ChainTemplate, Regime, RegimeSchedule
from repro.raslog.events import FACILITIES, Facility, RASEvent, Severity
from repro.raslog.generator import (
    GeneratorConfig,
    LogGenerator,
    SyntheticLog,
    generate_log,
)
from repro.raslog.parser import (
    ParseError,
    ParseReport,
    dump_log,
    format_line,
    iter_lines,
    load_log,
    parse_line,
)
from repro.raslog.profiles import (
    ANL_PROFILE,
    PROFILES,
    SDSC_PROFILE,
    AnomalyWindow,
    SystemProfile,
    get_profile,
)
from repro.raslog.scenarios import (
    SCENARIO_SEED,
    SCENARIOS,
    ScenarioPack,
    get_scenario,
)
from repro.raslog.store import EventLog

__all__ = [
    "ANL_PROFILE",
    "FACILITIES",
    "PROFILES",
    "SCENARIOS",
    "SCENARIO_SEED",
    "SDSC_PROFILE",
    "TABLE3_COUNTS",
    "TOTAL_FATAL_TYPES",
    "TOTAL_NONFATAL_TYPES",
    "AnomalyWindow",
    "ChainTemplate",
    "EventCatalog",
    "EventLog",
    "EventType",
    "Facility",
    "GeneratorConfig",
    "LogGenerator",
    "ParseError",
    "ParseReport",
    "RASEvent",
    "Regime",
    "RegimeSchedule",
    "ScenarioPack",
    "Severity",
    "SyntheticLog",
    "SystemProfile",
    "build_catalog",
    "default_catalog",
    "dump_log",
    "format_line",
    "generate_log",
    "get_profile",
    "get_scenario",
    "iter_lines",
    "load_log",
    "parse_line",
]
