"""System profiles for the synthetic Blue Gene/L workload generator.

Each profile captures one production machine from the paper, calibrated to
its published tables:

* Per-facility *logical* event rates (events that survive 300 s filtering)
  come from Table 4's 300 s column divided by the trace length in weeks.
* Per-facility duplication factors (polling agents reporting the same
  logical event from many chips, many times) come from the ratio of
  Table 4's raw (0 s) column to its 300 s column — this is what makes the
  ANL log 5.9 M records despite having one rack (KERNEL factor ≈ 218).
* Failure-process parameters (Weibull-clustered arrivals, cascade bursts,
  precursor coverage ≈ 25 % — the paper reports up to 75 % of fatal events
  have no precursor warnings) shape the signal each base learner exploits.
* Anomaly windows reproduce the case-study events: the ANL week-50
  diagnostic message storm and the SDSC week-60–64 system reconfiguration
  that rewrites the failure patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.raslog.events import Facility

#: Table 4 raw (threshold 0 s) per-facility record counts.
TABLE4_RAW: dict[str, dict[Facility, int]] = {
    "ANL": {
        Facility.APP: 6758,
        Facility.BGLMASTER: 123,
        Facility.CMCS: 302,
        Facility.DISCOVERY: 18054,
        Facility.HARDWARE: 1840,
        Facility.KERNEL: 5_819_166,
        Facility.LINKCARD: 64,
        Facility.MMCS: 954,
        Facility.MONITOR: 40509,
        Facility.SERV_NET: 1,
    },
    "SDSC": {
        Facility.APP: 26358,
        Facility.BGLMASTER: 119,
        Facility.CMCS: 437,
        Facility.DISCOVERY: 60748,
        Facility.HARDWARE: 1648,
        Facility.KERNEL: 426_816,
        Facility.LINKCARD: 188,
        Facility.MMCS: 929,
        Facility.MONITOR: 0,
        Facility.SERV_NET: 4,
    },
}

#: Table 4 filtered (threshold 300 s) per-facility record counts.
TABLE4_FILTERED: dict[str, dict[Facility, int]] = {
    "ANL": {
        Facility.APP: 1453,
        Facility.BGLMASTER: 109,
        Facility.CMCS: 283,
        Facility.DISCOVERY: 578,
        Facility.HARDWARE: 539,
        Facility.KERNEL: 26754,
        Facility.LINKCARD: 11,
        Facility.MMCS: 444,
        Facility.MONITOR: 15689,
        Facility.SERV_NET: 1,
    },
    "SDSC": {
        Facility.APP: 579,
        Facility.BGLMASTER: 93,
        Facility.CMCS: 362,
        Facility.DISCOVERY: 565,
        Facility.HARDWARE: 283,
        Facility.KERNEL: 3595,
        Facility.LINKCARD: 88,
        Facility.MMCS: 523,
        Facility.MONITOR: 0,
        Facility.SERV_NET: 4,
    },
}


@dataclass(frozen=True, slots=True)
class AnomalyWindow:
    """A period during which the system deviates from steady state.

    ``kind`` is ``"storm"`` (a burst of informational messages, like the
    ANL diagnostics weeks), ``"reconfig"`` (a system reconfiguration that
    switches the failure-pattern regime, like SDSC around week 60–64), or
    ``"maintenance"`` (a service window during which precursor reporting
    is silenced — agents disabled, boards reseated — while the underlying
    failures keep occurring, so association rules stop firing).
    """

    kind: str
    start_week: int
    end_week: int
    #: storm: background-rate multiplier for ``facilities``
    intensity: float = 1.0
    facilities: tuple[Facility, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("storm", "reconfig", "maintenance"):
            raise ValueError(f"unknown anomaly kind {self.kind!r}")
        if self.end_week <= self.start_week:
            raise ValueError(
                f"anomaly window [{self.start_week}, {self.end_week}) is empty"
            )

    def covers(self, week: int) -> bool:
        return self.start_week <= week < self.end_week


@dataclass(frozen=True, slots=True)
class SystemProfile:
    """Everything the generator needs to know about one machine."""

    name: str
    racks: int
    midplanes_per_rack: int
    compute_nodes: int
    io_nodes: int
    weeks: int
    start_date: str

    #: Logical (filtered) non-fatal events per facility per week.
    nonfatal_weekly_rates: dict[Facility, float] = field(default_factory=dict)
    #: Mean number of distinct locations reporting each logical event.
    duplication_spatial: dict[Facility, float] = field(default_factory=dict)
    #: Mean number of repeated reports per reporting location.
    duplication_temporal: dict[Facility, float] = field(default_factory=dict)

    #: Mean fatal events per week (before cascade expansion).
    fatal_weekly_rate: float = 10.0
    #: Relative share of failures per facility (restricted to facilities
    #: that have fatal types in the catalog).
    fatal_facility_weights: dict[Facility, float] = field(default_factory=dict)
    #: Weibull shape of *primary* (isolated) failure gaps.  The overall
    #: inter-arrival mixture — primaries plus cascade bursts — is what the
    #: paper fits, and the bursts drag its fitted shape below 1 (SDSC fit
    #: shape ≈ 0.508); the primaries themselves are closer to renewal.
    weibull_shape: float = 1.1
    #: Probability a failure spawns a cascade burst, and the mean number of
    #: follow-on failures in a burst (drives the statistical learner).
    cascade_prob: float = 0.35
    cascade_size_mean: float = 2.5
    #: Mean gap between cascade members, seconds.
    cascade_gap_mean: float = 110.0
    #: Fraction of cascades that are long failure *storms* (network / I/O
    #: stream failure trains — the paper notes these "form a majority" of
    #: close-proximity failures).  Their heavy tail is what makes
    #: "k failures within Wp ⇒ another" hold with high probability.
    storm_prob: float = 0.25
    storm_size_mean: float = 12.0
    storm_gap_mean: float = 60.0

    #: Fraction of failures preceded by a precursor chain (≈ 1 - 0.75).
    precursor_fraction: float = 0.30
    #: Number of active precursor chain templates per regime.
    n_chain_templates: int = 40
    #: Probability each precursor of a matched chain is actually logged.
    precursor_reliability: float = 0.9
    #: Precursor lead-time bounds before the failure, seconds.  Each chain
    #: template carries its own exponential lead scale within these bounds
    #: (:class:`repro.raslog.drift.ChainTemplate`): minutes-lead patterns
    #: feed the paper's 300 s prediction window, hours-lead patterns are
    #: why widening the window raises recall (Figure 13).
    precursor_lead: tuple[float, float] = (20.0, 7200.0)
    #: Weekly rate of *spurious* precursor-code events (not followed by a
    #: failure) — controls the association learner's false-alarm pressure.
    noise_precursor_weekly_rate: float = 10.0
    #: Weekly rate of fake-fatal records (FATAL severity, benign).
    fake_fatal_weekly_rate: float = 1.5

    #: Slow pattern drift: every ``drift_period_weeks`` replace
    #: ``drift_fraction`` of the chain templates (this is what makes static
    #: training decay in Figures 7 and 9).
    drift_period_weeks: int = 8
    drift_fraction: float = 0.22

    anomalies: tuple[AnomalyWindow, ...] = ()

    #: Mean job length, seconds — duplicated reports share the Job ID.
    mean_job_seconds: float = 4.0 * 3600.0
    #: Concurrent jobs (partitions) active at a time.
    concurrent_jobs: int = 8

    def __post_init__(self) -> None:
        if self.weeks <= 0:
            raise ValueError(f"profile weeks must be positive, got {self.weeks}")
        if not 0.0 <= self.precursor_fraction <= 1.0:
            raise ValueError("precursor_fraction must lie in [0, 1]")
        if self.weibull_shape <= 0:
            raise ValueError("weibull_shape must be positive")
        if self.fatal_weekly_rate <= 0:
            raise ValueError("fatal_weekly_rate must be positive")

    @property
    def duration_seconds(self) -> float:
        return self.weeks * 7 * 86400.0

    def scaled(self, scale: float, weeks: int | None = None) -> "SystemProfile":
        """Volume-scaled copy: event *rates* multiplied by ``scale`` and an
        optionally shortened trace.  Structural parameters (duplication
        factors, clustering, drift) are preserved so the shapes of all
        reproduced tables are unchanged."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        new_weeks = self.weeks if weeks is None else weeks
        if weeks is not None and weeks <= 0:
            raise ValueError(f"weeks must be positive, got {weeks}")

        def scale_anomalies() -> tuple[AnomalyWindow, ...]:
            kept = []
            for a in self.anomalies:
                if a.start_week < new_weeks:
                    kept.append(replace(a, end_week=min(a.end_week, new_weeks)))
            return tuple(kept)

        return replace(
            self,
            weeks=new_weeks,
            nonfatal_weekly_rates={
                f: r * scale for f, r in self.nonfatal_weekly_rates.items()
            },
            fatal_weekly_rate=self.fatal_weekly_rate * scale,
            noise_precursor_weekly_rate=self.noise_precursor_weekly_rate * scale,
            fake_fatal_weekly_rate=self.fake_fatal_weekly_rate * scale,
            anomalies=scale_anomalies(),
        )


def _rates_from_table4(system: str, weeks: int) -> dict[Facility, float]:
    return {
        fac: count / weeks for fac, count in TABLE4_FILTERED[system].items()
    }


def _duplication_from_table4(system: str) -> tuple[dict[Facility, float], dict[Facility, float]]:
    """Split each facility's raw/filtered ratio into spatial × temporal."""
    spatial: dict[Facility, float] = {}
    temporal: dict[Facility, float] = {}
    for fac, raw in TABLE4_RAW[system].items():
        filtered = TABLE4_FILTERED[system][fac]
        factor = (raw / filtered) if filtered else 1.0
        # Spread the factor across the two mechanisms; spatial fan-out is
        # bounded by how many chips a job touches, so cap it and push the
        # rest into repeated reports over time.
        spatial[fac] = min(factor**0.5, 16.0)
        temporal[fac] = max(factor / spatial[fac], 1.0)
    return spatial, temporal


def _profile(
    system: str,
    *,
    racks: int,
    compute_nodes: int,
    io_nodes: int,
    weeks: int,
    start_date: str,
    fatal_weekly_rate: float,
    anomalies: tuple[AnomalyWindow, ...],
) -> SystemProfile:
    spatial, temporal = _duplication_from_table4(system)
    return SystemProfile(
        name=system,
        racks=racks,
        midplanes_per_rack=2,
        compute_nodes=compute_nodes,
        io_nodes=io_nodes,
        weeks=weeks,
        start_date=start_date,
        nonfatal_weekly_rates=_rates_from_table4(system, weeks),
        duplication_spatial=spatial,
        duplication_temporal=temporal,
        fatal_weekly_rate=fatal_weekly_rate,
        fatal_facility_weights={
            Facility.KERNEL: 0.62,
            Facility.APP: 0.16,
            Facility.MONITOR: 0.12,
            Facility.HARDWARE: 0.04,
            Facility.BGLMASTER: 0.03,
            Facility.LINKCARD: 0.03,
        },
        anomalies=anomalies,
    )


#: One-rack ANL system: Jan 21 2005 – Jun 19 2007, 112 weeks, 5.9 M records.
ANL_PROFILE = _profile(
    "ANL",
    racks=1,
    compute_nodes=1024,
    io_nodes=32,
    weeks=112,
    start_date="2005-01-21",
    fatal_weekly_rate=10.0,
    anomalies=(
        # Diagnostics storm around week 50 (over 1.15 M machine-check
        # messages in one week); the Table 4 calibration already averages
        # the storm into the per-week rates, so the multiplier is kept
        # moderate to avoid double-counting total volume.
        AnomalyWindow(
            kind="storm",
            start_week=49,
            end_week=51,
            intensity=12.0,
            facilities=(Facility.KERNEL, Facility.MONITOR),
        ),
    ),
)

#: Three-rack SDSC system: Dec 6 2004 – Jun 11 2007, 132 weeks, 517 K records.
SDSC_PROFILE = _profile(
    "SDSC",
    racks=3,
    compute_nodes=3072,
    io_nodes=384,
    weeks=132,
    start_date="2004-12-06",
    fatal_weekly_rate=16.0,
    anomalies=(
        AnomalyWindow(kind="reconfig", start_week=60, end_week=64),
    ),
)

PROFILES: dict[str, SystemProfile] = {"ANL": ANL_PROFILE, "SDSC": SDSC_PROFILE}


def get_profile(name: str) -> SystemProfile:
    try:
        return PROFILES[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown system profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
