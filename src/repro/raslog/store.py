"""In-memory RAS event store.

``EventLog`` replaces the paper's centralized DB2 repository: an immutable,
time-sorted sequence of :class:`~repro.raslog.events.RASEvent` with a NumPy
timestamp index so window queries (the predictor's sliding window, the
learners' rule-generation windows, weekly evaluation slices) are
``searchsorted`` + view operations rather than scans or copies.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import overload

import numpy as np

from repro.raslog.catalog import EventCatalog
from repro.raslog.events import Facility, RASEvent
from repro.utils.timeutil import WEEK_SECONDS


class EventLog:
    """Immutable, time-ordered collection of RAS events.

    ``origin`` anchors week/day arithmetic: week *w* covers
    ``[origin + w*WEEK, origin + (w+1)*WEEK)``.  Slicing returns views that
    share the underlying event tuple and timestamp array.
    """

    __slots__ = ("_events", "_times", "_origin")

    def __init__(
        self,
        events: Iterable[RASEvent] = (),
        *,
        origin: float = 0.0,
        _presorted: bool = False,
    ) -> None:
        evts = tuple(events)
        if not _presorted:
            evts = tuple(sorted(evts, key=lambda e: e.timestamp))
        times = np.fromiter(
            (e.timestamp for e in evts), dtype=np.float64, count=len(evts)
        )
        times.setflags(write=False)
        self._events = evts
        self._times = times
        self._origin = float(origin)

    @classmethod
    def _from_parts(
        cls, events: tuple[RASEvent, ...], times: np.ndarray, origin: float
    ) -> "EventLog":
        log = cls.__new__(cls)
        log._events = events
        log._times = times
        log._origin = origin
        return log

    # -- basic container protocol -------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[RASEvent]:
        return iter(self._events)

    @overload
    def __getitem__(self, index: int) -> RASEvent: ...

    @overload
    def __getitem__(self, index: slice) -> "EventLog": ...

    def __getitem__(self, index: int | slice) -> "RASEvent | EventLog":
        if isinstance(index, slice):
            if index.step not in (None, 1):
                raise ValueError("EventLog slices must be contiguous (step 1)")
            return EventLog._from_parts(
                self._events[index], self._times[index], self._origin
            )
        return self._events[index]

    def __repr__(self) -> str:
        if len(self) == 0:
            return f"EventLog(n=0, origin={self._origin})"
        return (
            f"EventLog(n={len(self)}, origin={self._origin}, "
            f"span=[{self._times[0]:.0f}, {self._times[-1]:.0f}])"
        )

    # -- metadata ------------------------------------------------------

    @property
    def events(self) -> tuple[RASEvent, ...]:
        return self._events

    @property
    def timestamps(self) -> np.ndarray:
        """Read-only float64 array of event times (sorted ascending)."""
        return self._times

    @property
    def origin(self) -> float:
        return self._origin

    @property
    def span(self) -> tuple[float, float]:
        """(first, last) event time; ``(origin, origin)`` when empty."""
        if len(self) == 0:
            return (self._origin, self._origin)
        return (float(self._times[0]), float(self._times[-1]))

    @property
    def n_weeks(self) -> int:
        """Number of (possibly partial) weeks spanned from the origin."""
        if len(self) == 0:
            return 0
        return int((self._times[-1] - self._origin) // WEEK_SECONDS) + 1

    def with_origin(self, origin: float) -> "EventLog":
        return EventLog._from_parts(self._events, self._times, float(origin))

    # -- time-window queries --------------------------------------------

    def between(self, start: float, end: float) -> "EventLog":
        """Events with ``start <= t < end`` as a zero-copy view."""
        if end < start:
            raise ValueError(f"empty interval: start={start} > end={end}")
        lo = int(np.searchsorted(self._times, start, side="left"))
        hi = int(np.searchsorted(self._times, end, side="left"))
        return EventLog._from_parts(
            self._events[lo:hi], self._times[lo:hi], self._origin
        )

    def window_before(self, t: float, width: float) -> "EventLog":
        """Events inside ``[t - width, t)`` — a rule-generation window."""
        if width < 0:
            raise ValueError(f"negative window width {width}")
        return self.between(t - width, t)

    def week(self, week: int) -> "EventLog":
        """Events of the given zero-based week (relative to the origin)."""
        start = self._origin + week * WEEK_SECONDS
        return self.between(start, start + WEEK_SECONDS)

    def slice_weeks(self, first: int, last: int) -> "EventLog":
        """Events of weeks ``first .. last-1`` (half-open, like ``range``)."""
        if last < first:
            raise ValueError(f"empty week range [{first}, {last})")
        start = self._origin + first * WEEK_SECONDS
        end = self._origin + last * WEEK_SECONDS
        return self.between(start, end)

    # -- filtering -------------------------------------------------------

    def filter(self, predicate: Callable[[RASEvent], bool]) -> "EventLog":
        kept = tuple(e for e in self._events if predicate(e))
        return EventLog(kept, origin=self._origin, _presorted=True)

    def select_codes(self, codes: Iterable[str]) -> "EventLog":
        """Events whose ``entry_data`` is one of the given codes."""
        wanted = frozenset(codes)
        return self.filter(lambda e: e.entry_data in wanted)

    def fatal(self, catalog: EventCatalog) -> "EventLog":
        """Events whose categorized code is catalog-fatal.

        Requires a categorized log (``entry_data`` holds catalog codes);
        events with unknown codes are treated as non-fatal.
        """
        return self.filter(
            lambda e: e.entry_data in catalog and catalog.is_fatal_code(e.entry_data)
        )

    def nonfatal(self, catalog: EventCatalog) -> "EventLog":
        return self.filter(
            lambda e: not (
                e.entry_data in catalog and catalog.is_fatal_code(e.entry_data)
            )
        )

    # -- aggregation ------------------------------------------------------

    def counts_by_facility(self) -> dict[Facility, int]:
        counts: dict[Facility, int] = {}
        for e in self._events:
            counts[e.facility] = counts.get(e.facility, 0) + 1
        return counts

    def counts_by_code(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for e in self._events:
            counts[e.entry_data] = counts.get(e.entry_data, 0) + 1
        return counts

    def daily_counts(self) -> np.ndarray:
        """Events per day from the origin (Figure 4 series)."""
        if len(self) == 0:
            return np.zeros(0, dtype=np.int64)
        days = ((self._times - self._origin) // 86400.0).astype(np.int64)
        if days.min() < 0:
            raise ValueError("log contains events before its origin")
        return np.bincount(days)

    def interarrivals(self) -> np.ndarray:
        """Gaps between consecutive events (Figure 5 inputs)."""
        if len(self) < 2:
            return np.zeros(0, dtype=np.float64)
        return np.diff(self._times)

    # -- combination -----------------------------------------------------

    @staticmethod
    def concat(logs: Sequence["EventLog"], origin: float | None = None) -> "EventLog":
        """Merge several logs into one time-sorted log."""
        if not logs:
            return EventLog(origin=origin or 0.0)
        events: list[RASEvent] = []
        for log in logs:
            events.extend(log.events)
        base = logs[0].origin if origin is None else origin
        return EventLog(events, origin=base)
