"""Named regime-change scenario packs for drift benchmarks and tests.

The adaptive-retraining work (``repro.adapt``) needs *reproducible*
regime changes to measure against: a trace where the failure patterns
flip at a known week, so a bench can ask "how soon after the shift did
the detectors fire, and how many scheduled retrains did adaptivity
save?".  Each :class:`ScenarioPack` pins a profile (derived from the
paper-calibrated SDSC machine), the week the shift lands, and a seed —
``generate()`` then yields the same trace on every machine.

Two packs ship:

* ``reconfiguration`` — an abrupt mid-trace system reconfiguration
  (:class:`~repro.raslog.profiles.AnomalyWindow` kind ``"reconfig"``):
  the :class:`~repro.raslog.drift.RegimeSchedule` resamples the chain
  templates wholesale and jumps the failure process, the paper's SDSC
  week-60 case compressed into a short trace.
* ``maintenance_window`` — a service window (kind ``"maintenance"``)
  during which precursor reporting is silenced while fatal events keep
  occurring: association rules stop firing without any pattern change,
  the classic false-drift trap for hit-rate detectors.

Run one from the CLI with ``repro bench --scenario <name>``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.raslog.catalog import EventCatalog
from repro.raslog.generator import GeneratorConfig, SyntheticLog, generate_log
from repro.raslog.profiles import AnomalyWindow, SDSC_PROFILE, SystemProfile
from repro.utils.randoms import SeedLike

#: Default seed for scenario traces — fixed so committed bench baselines
#: describe the same trace everywhere.
SCENARIO_SEED = 2008


@dataclass(frozen=True, slots=True)
class ScenarioPack:
    """A named, fully pinned regime-change trace recipe."""

    name: str
    description: str
    #: week index at which the regime change takes effect
    shift_week: int
    profile: SystemProfile
    seed: SeedLike = SCENARIO_SEED

    def generate(
        self,
        *,
        scale: float = 1.0,
        duplicates: bool = False,
        seed: SeedLike | None = None,
        catalog: EventCatalog | None = None,
    ) -> SyntheticLog:
        """Materialize the scenario trace (clean stream by default)."""
        config = GeneratorConfig(
            scale=scale,
            duplicates=duplicates,
            seed=self.seed if seed is None else seed,
        )
        return generate_log(self.profile, config, catalog)


def _scenario_profile(
    weeks: int, anomaly: AnomalyWindow
) -> SystemProfile:
    """SDSC-derived short profile tuned so drift is *observable*.

    A richer precursor signal (fraction 0.6 vs the paper's 0.3) and a
    drift period longer than the trace make the scheduled anomaly the
    only regime change — the bench then measures the detectors against
    exactly one, known shift.
    """
    return replace(
        SDSC_PROFILE,
        weeks=weeks,
        anomalies=(anomaly,),
        precursor_fraction=0.6,
        n_chain_templates=12,
        drift_period_weeks=52,
        drift_fraction=0.10,
    )


RECONFIGURATION = ScenarioPack(
    name="reconfiguration",
    description=(
        "Abrupt system reconfiguration at week 9: chain templates are "
        "resampled wholesale and the failure process jumps (SDSC "
        "week-60 case, compressed)."
    ),
    shift_week=9,
    profile=_scenario_profile(
        weeks=18,
        anomaly=AnomalyWindow(kind="reconfig", start_week=9, end_week=11),
    ),
)

MAINTENANCE_WINDOW = ScenarioPack(
    name="maintenance_window",
    description=(
        "Maintenance window over weeks 8-11: precursor reporting is "
        "silenced while fatal events continue, so association rules "
        "stop firing without any underlying pattern change."
    ),
    shift_week=8,
    profile=_scenario_profile(
        weeks=16,
        anomaly=AnomalyWindow(kind="maintenance", start_week=8, end_week=11),
    ),
)

SCENARIOS: dict[str, ScenarioPack] = {
    RECONFIGURATION.name: RECONFIGURATION,
    MAINTENANCE_WINDOW.name: MAINTENANCE_WINDOW,
}


def get_scenario(name: str) -> ScenarioPack:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None


__all__ = [
    "MAINTENANCE_WINDOW",
    "RECONFIGURATION",
    "SCENARIOS",
    "SCENARIO_SEED",
    "ScenarioPack",
    "get_scenario",
]
