"""Synthetic Blue Gene/L RAS log generator.

Replaces the proprietary ANL / SDSC RAS dumps (see DESIGN.md for the
substitution argument).  The generator produces two aligned views:

* ``clean`` — the *logical* event stream (one record per unique event,
  ``entry_data`` holding the catalog type code), i.e. what the paper's
  preprocessing stage outputs and what the learners consume;
* ``raw`` — the duplicated record stream the CMCS repository would hold
  (``entry_data`` holding the free-text description), with each logical
  event re-reported from several locations (spatial redundancy: every chip
  of a job runs a polling agent) and several times per location (temporal
  redundancy), which is what the filter must undo.

The statistical structure mirrors what the paper's learners exploit:

* failure inter-arrivals follow a Weibull renewal process with shape < 1
  (Figure 5's fit), so failures cluster;
* a fraction of failures spawn cascade bursts (Figure 4's bursty days, the
  signal behind the statistical rules such as "four failures within 300 s
  ⇒ another with probability 0.99");
* ~25 % of failures are preceded by precursor chains drawn from the active
  regime's templates (the paper reports up to 75 % of fatal events have no
  precursor) — the association-rule signal;
* templates drift slowly and are rewritten at reconfigurations
  (:mod:`repro.raslog.drift`) — the reason dynamic retraining wins;
* anomaly windows reproduce the ANL diagnostic storm and the SDSC
  reconfiguration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.raslog.catalog import EventCatalog, EventType, default_catalog
from repro.raslog.drift import RegimeSchedule
from repro.raslog.events import Facility, RASEvent
from repro.raslog.profiles import SystemProfile
from repro.raslog.store import EventLog
from repro.utils.randoms import SeedLike, SeedSequencePool
from repro.utils.timeutil import WEEK_SECONDS


@dataclass(frozen=True, slots=True)
class GeneratorConfig:
    """Knobs for one generation run.

    ``scale`` multiplies all event *rates* (1.0 reproduces paper-calibrated
    volume — note that a full ANL raw log is ~5.9 M records; keep
    ``scale`` ≤ 0.05 or ``duplicates=False`` for interactive use).
    """

    scale: float = 1.0
    weeks: int | None = None
    duplicates: bool = True
    seed: SeedLike = 0
    #: Hard cap on raw records, a guard against accidental huge runs.
    max_raw_events: int = 8_000_000
    #: Cap duplicate report offsets below this (seconds) so that filtering
    #: at the paper's 300 s threshold recovers the logical stream.
    duplicate_spread: float = 250.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.weeks is not None and self.weeks <= 0:
            raise ValueError(f"weeks must be positive, got {self.weeks}")
        if self.duplicate_spread <= 0:
            raise ValueError("duplicate_spread must be positive")


@dataclass
class SyntheticLog:
    """A generated trace plus its ground truth."""

    profile: SystemProfile
    config: GeneratorConfig
    catalog: EventCatalog
    schedule: RegimeSchedule
    #: categorized logical events (entry_data = catalog code)
    clean: EventLog
    #: duplicated raw records (entry_data = description); None when
    #: generated with ``duplicates=False``
    raw: EventLog | None
    #: times of true fatal events, sorted
    fatal_times: np.ndarray
    #: catalog codes of the fatal events, aligned with ``fatal_times``
    fatal_codes: list[str] = field(default_factory=list)
    #: indices into ``fatal_times`` of failures that received precursors
    precursor_backed: list[int] = field(default_factory=list)

    @property
    def n_fatal(self) -> int:
        return len(self.fatal_times)


class _Draft:
    """Mutable logical-event accumulator used during generation.

    ``heavy_dup`` marks events subject to the full per-facility polling
    duplication (chatty background messages, which is what the Table 4
    raw/filtered ratios measure); fatal events, precursor chains and other
    sparse signals are re-reported only lightly, as on the real machines.
    """

    __slots__ = ("times", "codes", "job_ids", "locations", "heavy_dup")

    def __init__(self) -> None:
        self.times: list[float] = []
        self.codes: list[str] = []
        self.job_ids: list[int] = []
        self.locations: list[str] = []
        self.heavy_dup: list[bool] = []

    def add(
        self, t: float, code: str, job_id: int, location: str, heavy: bool = False
    ) -> None:
        self.times.append(t)
        self.codes.append(code)
        self.job_ids.append(job_id)
        self.locations.append(location)
        self.heavy_dup.append(heavy)

    def __len__(self) -> int:
        return len(self.times)


class LogGenerator:
    """Builds :class:`SyntheticLog` instances from a profile."""

    def __init__(
        self,
        profile: SystemProfile,
        config: GeneratorConfig | None = None,
        catalog: EventCatalog | None = None,
    ) -> None:
        self.config = config or GeneratorConfig()
        self.profile = profile.scaled(self.config.scale, self.config.weeks)
        self.catalog = catalog or default_catalog()
        self._seeds = SeedSequencePool(self.config.seed)
        self.schedule = RegimeSchedule(self.profile, self.catalog, self._seeds)
        self._locations = self._build_locations()
        self._nodes_per_job = max(1, len(self._locations) // self.profile.concurrent_jobs)

    # -- topology ---------------------------------------------------------

    def _build_locations(self) -> list[str]:
        locs: list[str] = []
        nodes_per_midplane = max(
            1,
            self.profile.compute_nodes
            // max(1, self.profile.racks * self.profile.midplanes_per_rack),
        )
        # Model node *cards* rather than individual chips to keep the
        # location namespace realistic but bounded.
        cards = max(1, nodes_per_midplane // 32)
        for r in range(self.profile.racks):
            for m in range(self.profile.midplanes_per_rack):
                for n in range(cards):
                    locs.append(f"R{r:02d}-M{m}-N{n:02d}")
        return locs

    def _job_context(
        self, t: float, rng: np.random.Generator
    ) -> tuple[int, int]:
        """(job_id, partition index) active at time ``t``."""
        slot = int(t // self.profile.mean_job_seconds)
        partition = int(rng.integers(self.profile.concurrent_jobs))
        return slot * self.profile.concurrent_jobs + partition, partition

    def _location_in_partition(
        self, partition: int, rng: np.random.Generator
    ) -> str:
        per = max(1, len(self._locations) // self.profile.concurrent_jobs)
        base = (partition * per) % len(self._locations)
        offset = int(rng.integers(per))
        return self._locations[(base + offset) % len(self._locations)]

    def _maintenance_covers(self, week: int) -> bool:
        """True when a maintenance window silences precursor reporting
        in ``week`` (the failures themselves still occur and are logged)."""
        return any(
            a.kind == "maintenance" and a.covers(week)
            for a in self.profile.anomalies
        )

    # -- failure process ----------------------------------------------------

    def _fatal_arrivals(self, rng: np.random.Generator) -> np.ndarray:
        """Regime-modulated Weibull renewal process with cascade bursts.

        Primary arrivals renew with a per-regime rate multiplier; each
        primary may spawn a cascade, whose class mix (short burst vs long
        storm) is also regime-dependent.  That drift in the process itself
        is what ages statically trained statistical and distribution rules.
        """
        duration = self.profile.duration_seconds
        base_mean_gap = WEEK_SECONDS / self.profile.fatal_weekly_rate
        shape = self.profile.weibull_shape
        base_lam = base_mean_gap / math.gamma(1.0 + 1.0 / shape)

        primaries_list: list[float] = []
        t = 0.0
        for start_week, end_week, regime in self.schedule.spans():
            span_start = start_week * WEEK_SECONDS
            span_end = min(end_week * WEEK_SECONDS, duration)
            lam = base_lam / regime.rate_multiplier
            t = max(t, span_start)
            while True:
                t += float(lam * rng.weibull(shape))
                if t >= span_end:
                    break
                primaries_list.append(t)
            # A renewal gap that overruns the span restarts in the next
            # regime, a small boundary artifact that keeps spans i.i.d.
            t = min(t, span_end)
        primaries = np.asarray(primaries_list, dtype=np.float64)

        # Cascade expansion: bursts of follow-on failures.  Two classes:
        # short correlated bursts, and long storms whose heavy tail makes
        # "k failures within the window" a strong predictor of more.
        extras: list[float] = []
        for t0 in primaries:
            regime = self.schedule.regime_at(int(t0 // WEEK_SECONDS))
            if rng.random() >= regime.cascade_prob:
                continue
            if rng.random() < regime.storm_prob:
                size = 4 + int(rng.poisson(max(self.profile.storm_size_mean - 4.0, 0.0)))
                gap_mean = self.profile.storm_gap_mean * regime.burst_gap_scale
            else:
                size = 1 + int(
                    rng.poisson(max(self.profile.cascade_size_mean - 1.0, 0.0))
                )
                gap_mean = self.profile.cascade_gap_mean * regime.burst_gap_scale
            offsets = np.cumsum(rng.exponential(gap_mean, size=size))
            for dt in offsets:
                tc = float(t0 + dt)
                if tc < duration:
                    extras.append(tc)
        all_times = np.concatenate([primaries, np.asarray(extras, dtype=np.float64)])
        all_times.sort()
        return all_times

    def _assign_fatal_codes(
        self, times: np.ndarray, rng: np.random.Generator
    ) -> list[str]:
        codes: list[str] = []
        prev_time = -math.inf
        prev_code: str | None = None
        for t in times:
            regime = self.schedule.regime_at(int(t // WEEK_SECONDS))
            # Within a cascade the same fault tends to recur.
            if (
                prev_code is not None
                and t - prev_time < 4.0 * self.profile.cascade_gap_mean
                and rng.random() < 0.6
                and prev_code in regime.fatal_codes
            ):
                codes.append(prev_code)
            else:
                idx = int(rng.choice(len(regime.fatal_codes), p=regime.fatal_weights))
                codes.append(regime.fatal_codes[idx])
            prev_time, prev_code = t, codes[-1]
        return codes

    # -- logical stream -------------------------------------------------------

    def _emit_failures(
        self, draft: _Draft, rng: np.random.Generator
    ) -> tuple[np.ndarray, list[str], list[int]]:
        times = self._fatal_arrivals(rng)
        codes = self._assign_fatal_codes(times, rng)
        lead_lo, lead_hi = self.profile.precursor_lead
        backed: list[int] = []
        for i, (t, code) in enumerate(zip(times, codes)):
            job_id, partition = self._job_context(float(t), rng)
            location = self._location_in_partition(partition, rng)
            draft.add(float(t), code, job_id, location)
            if rng.random() >= self.profile.precursor_fraction:
                continue
            if self._maintenance_covers(int(t // WEEK_SECONDS)):
                continue
            regime = self.schedule.regime_at(int(t // WEEK_SECONDS))
            template = regime.template_for(code)
            if template is None:
                continue
            emitted = False
            for p_idx, precursor in enumerate(template.precursors):
                if rng.random() > self.profile.precursor_reliability:
                    continue
                # Truncated-exponential lead at the template's own scale
                # (see ChainTemplate.lead_scale); flooding templates emit
                # their first precursor several times within the lead span.
                repeats = template.flood_factor if p_idx == 0 else 1
                lead = lead_lo + float(rng.exponential(template.lead_scale))
                lead = min(lead, lead_hi)
                for rep in range(repeats):
                    offset = 0.0 if rep == 0 else float(
                        rng.uniform(0.0, min(lead - lead_lo, 240.0))
                    )
                    tp = float(t) - lead + offset
                    if tp <= 0 or tp >= t:
                        continue
                    draft.add(tp, precursor, job_id, location)
                    emitted = True
            if emitted:
                backed.append(i)
        return times, codes, backed

    def _weekly_rate(self, facility: Facility, week: int) -> float:
        rate = self.profile.nonfatal_weekly_rates.get(facility, 0.0)
        for anomaly in self.profile.anomalies:
            if (
                anomaly.kind == "storm"
                and anomaly.covers(week)
                and facility in anomaly.facilities
            ):
                rate *= anomaly.intensity
        return rate

    def _emit_background(self, draft: _Draft, rng: np.random.Generator) -> None:
        for facility in self.profile.nonfatal_weekly_rates:
            types = [
                t
                for t in self.catalog.types_for(facility, fatal=False)
                if not t.fake_fatal
            ]
            if not types:
                continue
            # Zipf-ish popularity: a few chatty types dominate, as in the
            # real logs (e.g. corrected-parity KERNEL INFO records).
            weights = 1.0 / np.arange(1, len(types) + 1, dtype=np.float64)
            weights /= weights.sum()
            for week in range(self.profile.weeks):
                rate = self._weekly_rate(facility, week)
                if rate <= 0:
                    continue
                n = int(rng.poisson(rate))
                if n == 0:
                    continue
                base = week * WEEK_SECONDS
                times = base + rng.uniform(0.0, WEEK_SECONDS, size=n)
                picks = rng.choice(len(types), size=n, p=weights)
                for t, k in zip(times, picks):
                    job_id, partition = self._job_context(float(t), rng)
                    location = self._location_in_partition(partition, rng)
                    draft.add(
                        float(t), types[int(k)].code, job_id, location, heavy=True
                    )

    def _emit_noise_precursors(self, draft: _Draft, rng: np.random.Generator) -> None:
        """Precursor-code events *not* followed by a failure."""
        rate = self.profile.noise_precursor_weekly_rate
        if rate <= 0:
            return
        for week in range(self.profile.weeks):
            if self._maintenance_covers(week):
                continue
            templates = self.schedule.templates_at(week)
            pool = sorted({p for t in templates for p in t.precursors})
            if not pool:
                continue
            n = int(rng.poisson(rate))
            base = week * WEEK_SECONDS
            for _ in range(n):
                t = float(base + rng.uniform(0.0, WEEK_SECONDS))
                code = pool[int(rng.integers(len(pool)))]
                job_id, partition = self._job_context(t, rng)
                location = self._location_in_partition(partition, rng)
                draft.add(t, code, job_id, location)

    def _emit_fake_fatals(self, draft: _Draft, rng: np.random.Generator) -> None:
        rate = self.profile.fake_fatal_weekly_rate
        fakes = self.catalog.fake_fatal_types()
        if rate <= 0 or not fakes:
            return
        n = int(rng.poisson(rate * self.profile.weeks))
        times = rng.uniform(0.0, self.profile.duration_seconds, size=n)
        for t in times:
            ft = fakes[int(rng.integers(len(fakes)))]
            job_id, partition = self._job_context(float(t), rng)
            location = self._location_in_partition(partition, rng)
            draft.add(float(t), ft.code, job_id, location)

    # -- materialization --------------------------------------------------------

    def _clean_events(self, draft: _Draft) -> EventLog:
        order = np.argsort(np.asarray(draft.times, dtype=np.float64), kind="stable")
        events = []
        for rid, i in enumerate(order):
            code = draft.codes[i]
            etype = self.catalog.get(code)
            events.append(
                RASEvent(
                    record_id=rid,
                    event_type="RAS",
                    timestamp=draft.times[i],
                    job_id=draft.job_ids[i],
                    location=draft.locations[i],
                    entry_data=code,
                    facility=etype.facility,
                    severity=etype.severity,
                )
            )
        return EventLog(events, origin=0.0, _presorted=True)

    def _raw_events(self, draft: _Draft, rng: np.random.Generator) -> EventLog:
        spread = self.config.duplicate_spread
        times: list[float] = []
        rows: list[tuple[str, int, str, EventType]] = []
        duration = self.profile.duration_seconds
        for i in range(len(draft)):
            code = draft.codes[i]
            etype = self.catalog.get(code)
            fac = etype.facility
            if draft.heavy_dup[i]:
                spatial = self.profile.duplication_spatial.get(fac, 1.0)
                temporal = self.profile.duplication_temporal.get(fac, 1.0)
            else:
                # Sparse signals (failures, precursors) are re-reported a
                # couple of times, not storm-duplicated.
                spatial = min(self.profile.duplication_spatial.get(fac, 1.0), 2.0)
                temporal = min(self.profile.duplication_temporal.get(fac, 1.0), 2.0)
            n_loc = 1 + int(rng.poisson(max(spatial - 1.0, 0.0)))
            mean_rep = max(temporal - 1.0, 0.0)
            partition = (draft.job_ids[i]) % self.profile.concurrent_jobs
            locations = [draft.locations[i]]
            for _ in range(n_loc - 1):
                locations.append(self._location_in_partition(partition, rng))
            for loc in locations:
                n_rep = 1 + int(rng.poisson(mean_rep))
                offsets = np.minimum(
                    np.cumsum(rng.exponential(spread / 8.0, size=n_rep)) - 1.0,
                    spread,
                )
                offsets[0] = max(offsets[0], 0.0)
                for dt in offsets:
                    t = draft.times[i] + float(max(dt, 0.0))
                    if t >= duration:
                        t = duration - 1e-3
                    times.append(t)
                    rows.append((loc, draft.job_ids[i], etype.description, etype))
            if len(times) > self.config.max_raw_events:
                raise RuntimeError(
                    f"raw log exceeds max_raw_events={self.config.max_raw_events}; "
                    "lower GeneratorConfig.scale or set duplicates=False"
                )
        order = np.argsort(np.asarray(times, dtype=np.float64), kind="stable")
        events = []
        for rid, j in enumerate(order):
            loc, job_id, description, etype = rows[j]
            events.append(
                RASEvent(
                    record_id=rid,
                    event_type="RAS",
                    timestamp=times[j],
                    job_id=job_id,
                    location=loc,
                    entry_data=description,
                    facility=etype.facility,
                    severity=etype.severity,
                )
            )
        return EventLog(events, origin=0.0, _presorted=True)

    # -- entry point -----------------------------------------------------------

    def generate(self) -> SyntheticLog:
        draft = _Draft()
        fatal_rng = self._seeds.stream("fatal")
        fatal_times, fatal_codes, backed = self._emit_failures(draft, fatal_rng)
        self._emit_background(draft, self._seeds.stream("background"))
        self._emit_noise_precursors(draft, self._seeds.stream("noise"))
        self._emit_fake_fatals(draft, self._seeds.stream("fake"))
        clean = self._clean_events(draft)
        raw = (
            self._raw_events(draft, self._seeds.stream("duplication"))
            if self.config.duplicates
            else None
        )
        return SyntheticLog(
            profile=self.profile,
            config=self.config,
            catalog=self.catalog,
            schedule=self.schedule,
            clean=clean,
            raw=raw,
            fatal_times=fatal_times,
            fatal_codes=fatal_codes,
            precursor_backed=backed,
        )


def generate_log(
    profile: SystemProfile,
    config: GeneratorConfig | None = None,
    catalog: EventCatalog | None = None,
) -> SyntheticLog:
    """Convenience wrapper: build a generator and run it once."""
    return LogGenerator(profile, config, catalog).generate()
