"""Failure-pattern regimes and drift.

The paper's central empirical claim is that failure patterns *change*
during system operation — gradually (hardware/software upgrades, workload
shifts) and abruptly (the SDSC reconfiguration between weeks 60 and 64) —
which is why static training decays and dynamic retraining is required.

This module models that: a :class:`RegimeSchedule` owns, for every week of
the trace, the active set of :class:`ChainTemplate` (which non-fatal
precursors herald which fatal type) and the distribution over fatal types.
Templates rotate slowly every ``drift_period_weeks`` and are resampled
wholesale at each reconfiguration anomaly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.raslog.catalog import EventCatalog
from repro.raslog.events import Facility
from repro.raslog.profiles import SystemProfile
from repro.utils.randoms import SeedSequencePool


@dataclass(frozen=True, slots=True)
class ChainTemplate:
    """A causal failure pattern: these precursors precede this fatal type.

    ``lead_scale`` is the exponential scale of the precursor lead time —
    a property of the *pattern*: some faults are heralded minutes ahead
    (their rules work at the paper's 300 s prediction window), others
    hours ahead (their failures are only caught by wider windows, which is
    the Figure 13 recall gain).
    """

    fatal_code: str
    precursors: tuple[str, ...]
    lead_scale: float = 150.0
    #: how many times the *first* precursor is emitted per occurrence —
    #: > 1 models warning floods (e.g. correctable-ECC storms before an
    #: uncorrectable failure), the signal behind count-threshold rules
    flood_factor: int = 1

    def __post_init__(self) -> None:
        if not self.precursors:
            raise ValueError(f"template for {self.fatal_code} has no precursors")
        if len(set(self.precursors)) != len(self.precursors):
            raise ValueError(
                f"template for {self.fatal_code} repeats a precursor"
            )
        if self.lead_scale <= 0:
            raise ValueError(
                f"template for {self.fatal_code} has non-positive lead scale"
            )
        if self.flood_factor < 1:
            raise ValueError(
                f"template for {self.fatal_code} has flood_factor < 1"
            )

    @property
    def key(self) -> tuple[str, tuple[str, ...]]:
        return (self.fatal_code, self.precursors)


@dataclass(frozen=True, slots=True)
class Regime:
    """Pattern state for a span of weeks.

    Besides the precursor templates, a regime owns the parameters of the
    failure process itself — how often failures arrive and how they burst.
    Upgrades and workload shifts change these in real systems, which is
    exactly why statically trained statistical/distribution rules go stale
    (Figures 7 and 9).
    """

    start_week: int
    templates: tuple[ChainTemplate, ...]
    #: probability over catalog fatal-type codes (aligned with ``fatal_codes``)
    fatal_codes: tuple[str, ...]
    fatal_weights: np.ndarray
    #: multiplies the profile's base failure rate in this regime
    rate_multiplier: float = 1.0
    #: overrides of the profile's burst parameters in this regime
    cascade_prob: float = 0.35
    storm_prob: float = 0.25
    #: multiplies the profile's cascade/storm gap means — tight-burst
    #: regimes make small-k window rules reliable, loose-burst regimes
    #: break them, which is what ages a static rule set
    burst_gap_scale: float = 1.0

    def template_for(self, fatal_code: str) -> ChainTemplate | None:
        for t in self.templates:
            if t.fatal_code == fatal_code:
                return t
        return None


class RegimeSchedule:
    """Deterministic week → regime mapping derived from a profile."""

    def __init__(
        self,
        profile: SystemProfile,
        catalog: EventCatalog,
        seeds: SeedSequencePool,
    ) -> None:
        self._profile = profile
        self._catalog = catalog
        self._rng = seeds.stream("regimes")
        self._regimes: list[Regime] = []
        self._build()

    # -- construction ----------------------------------------------------

    def _fatal_code_pool(self) -> list[str]:
        weights = self._profile.fatal_facility_weights
        pool: list[str] = []
        for t in self._catalog.fatal_types():
            if weights.get(t.facility, 0.0) > 0.0:
                pool.append(t.code)
        if not pool:
            pool = [t.code for t in self._catalog.fatal_types()]
        return pool

    def _sample_fatal_weights(
        self, codes: list[str], rng: np.random.Generator
    ) -> np.ndarray:
        fac_w = self._profile.fatal_facility_weights
        base = np.array(
            [
                fac_w.get(self._catalog.get(c).facility, 1e-3)
                for c in codes
            ],
            dtype=np.float64,
        )
        # Dirichlet jitter within each facility so regimes prefer different
        # concrete fatal types, not just different facilities.
        jitter = rng.dirichlet(np.full(len(codes), 0.6))
        w = base * jitter
        total = w.sum()
        if total <= 0:
            w = np.full(len(codes), 1.0 / len(codes))
        else:
            w = w / total
        return w

    def _sample_template(
        self, fatal_code: str, rng: np.random.Generator
    ) -> ChainTemplate:
        fatal_type = self._catalog.get(fatal_code)
        # Precursors come mostly from the same facility (KERNEL warnings
        # precede KERNEL failures) with some cross-facility spill.
        same = [
            t.code
            for t in self._catalog.types_for(fatal_type.facility, fatal=False)
            if not t.fake_fatal
        ]
        other = [
            t.code
            for t in self._catalog.nonfatal_types()
            if t.facility is not fatal_type.facility and not t.fake_fatal
        ]
        n = int(rng.integers(2, 5))
        chosen: list[str] = []
        for _ in range(n):
            use_same = same and (not other or rng.random() < 0.75)
            pool = same if use_same else other
            pick = pool[int(rng.integers(len(pool)))]
            if pick not in chosen:
                chosen.append(pick)
        if not chosen:  # pragma: no cover - pools are never both empty
            chosen = [self._catalog.nonfatal_types()[0].code]
        # Log-uniform lead scale from ~1 minute to ~1 hour.
        lead_scale = float(np.exp(rng.uniform(np.log(60.0), np.log(3600.0))))
        # A quarter of the patterns flood their first precursor.
        flood = int(rng.choice([1, 1, 1, 3, 6]))
        return ChainTemplate(
            fatal_code=fatal_code,
            precursors=tuple(chosen),
            lead_scale=lead_scale,
            flood_factor=flood,
        )

    def _sample_process_params(
        self, rng: np.random.Generator, previous: Regime | None
    ) -> tuple[float, float, float, float]:
        """(rate_multiplier, cascade_prob, storm_prob, burst_gap_scale).

        Drift is a *random walk* from the previous regime, not a
        mean-reverting wobble around the profile constants: upgrades and
        workload changes accumulate, which is what makes rules learned on
        an old window permanently stale (the paper's core observation).
        """
        if previous is None:
            rate = float(np.exp(rng.normal(0.0, 0.25)))
            cascade = float(
                np.clip(rng.normal(self._profile.cascade_prob, 0.14), 0.08, 0.65)
            )
            storm = float(
                np.clip(rng.normal(self._profile.storm_prob, 0.13), 0.03, 0.55)
            )
            gap_scale = float(np.exp(rng.normal(0.0, 0.4)))
            return rate, cascade, storm, gap_scale

        d = self._profile.drift_fraction
        # The failure *rate* wobbles mildly: what drifts is the pattern
        # structure (templates, type mix, burst shape), not the headline
        # failure frequency — keeping trace difficulty comparable across
        # the horizon, as in the production logs.
        rate = float(
            np.clip(
                previous.rate_multiplier * np.exp(rng.normal(0.0, 0.25 * d)),
                0.5,
                2.0,
            )
        )
        cascade = float(
            np.clip(previous.cascade_prob + rng.normal(0.0, 0.5 * d), 0.08, 0.65)
        )
        storm = float(
            np.clip(previous.storm_prob + rng.normal(0.0, 0.45 * d), 0.03, 0.55)
        )
        gap_scale = float(
            np.clip(
                previous.burst_gap_scale * np.exp(rng.normal(0.0, 0.8 * d)),
                0.4,
                2.0,
            )
        )
        return rate, cascade, storm, gap_scale

    def _sample_regime(
        self,
        start_week: int,
        rng: np.random.Generator,
        previous: Regime | None,
        reconfig_from: Regime | None = None,
    ) -> Regime:
        pool = self._fatal_code_pool()
        weights = self._sample_fatal_weights(pool, rng)
        if previous is not None:
            # Gradual drift: the failure-type mix shifts slowly, so the
            # templates attached to the dominant types stay relevant over
            # several retraining periods (a reconfiguration, which passes
            # previous=None, rewrites the mix wholesale).
            blend = (1.0 - self._profile.drift_fraction) * previous.fatal_weights
            weights = blend + self._profile.drift_fraction * weights
            weights = weights / weights.sum()
        rate_multiplier, cascade_prob, storm_prob, burst_gap_scale = (
            self._sample_process_params(rng, previous)
        )
        if reconfig_from is not None:
            # A reconfiguration is a *major, adverse* system change (the
            # paper's SDSC case, where both metrics dipped > 10 %): the
            # failure rate drops sharply — fewer, sparser failures starve
            # the burst and elapsed-time experts — and the burst structure
            # flips to the opposite character of the outgoing regime, so
            # rules keyed on the old process genuinely mislead.
            factor = float(rng.uniform(0.35, 0.6))
            rate_multiplier = float(
                np.clip(reconfig_from.rate_multiplier * factor, 0.3, 2.5)
            )
            storm_prob = float(np.clip(0.58 - reconfig_from.storm_prob, 0.03, 0.55))
            cascade_prob = float(np.clip(0.73 - reconfig_from.cascade_prob, 0.08, 0.65))
            if reconfig_from.burst_gap_scale < 1.0:
                burst_gap_scale = float(rng.uniform(1.5, 2.0))
            else:
                burst_gap_scale = float(rng.uniform(0.4, 0.7))
        n_templates = min(self._profile.n_chain_templates, len(pool))
        # Templates attach to the most probable fatal types so the learners
        # see their precursors often enough to mine rules from them.
        order = np.argsort(weights)[::-1]
        covered = [pool[i] for i in order[:n_templates]]
        if previous is None:
            templates = tuple(self._sample_template(c, rng) for c in covered)
        else:
            # Gradual drift: keep most surviving templates, resample a slice.
            keep: list[ChainTemplate] = []
            for code in covered:
                old = previous.template_for(code)
                if old is not None and rng.random() > self._profile.drift_fraction:
                    keep.append(old)
                else:
                    keep.append(self._sample_template(code, rng))
            templates = tuple(keep)
        return Regime(
            start_week=start_week,
            templates=templates,
            fatal_codes=tuple(pool),
            fatal_weights=weights,
            rate_multiplier=rate_multiplier,
            cascade_prob=cascade_prob,
            storm_prob=storm_prob,
            burst_gap_scale=burst_gap_scale,
        )

    def _build(self) -> None:
        reconfig_weeks = sorted(
            a.start_week
            for a in self._profile.anomalies
            if a.kind == "reconfig" and a.start_week < self._profile.weeks
        )
        regime = self._sample_regime(0, self._rng, previous=None)
        self._regimes.append(regime)
        week = 0
        period = max(1, self._profile.drift_period_weeks)
        while week < self._profile.weeks:
            next_drift = week + period
            pending_reconfig = [w for w in reconfig_weeks if week < w <= next_drift]
            if pending_reconfig:
                boundary = pending_reconfig[0]
                # A reconfiguration resamples the regime from scratch, with
                # a forced jump in the failure process.
                regime = self._sample_regime(
                    boundary, self._rng, previous=None, reconfig_from=regime
                )
            else:
                boundary = next_drift
                regime = self._sample_regime(boundary, self._rng, previous=regime)
            if boundary >= self._profile.weeks:
                break
            self._regimes.append(regime)
            week = boundary

    # -- queries -----------------------------------------------------------

    @property
    def regimes(self) -> tuple[Regime, ...]:
        return tuple(self._regimes)

    def spans(self) -> list[tuple[int, int, Regime]]:
        """(start_week, end_week, regime) covering the whole trace."""
        out: list[tuple[int, int, Regime]] = []
        for i, regime in enumerate(self._regimes):
            end = (
                self._regimes[i + 1].start_week
                if i + 1 < len(self._regimes)
                else self._profile.weeks
            )
            if end > regime.start_week:
                out.append((regime.start_week, end, regime))
        return out

    def regime_at(self, week: int) -> Regime:
        if week < 0:
            raise ValueError(f"week must be non-negative, got {week}")
        chosen = self._regimes[0]
        for regime in self._regimes:
            if regime.start_week <= week:
                chosen = regime
            else:
                break
        return chosen

    def templates_at(self, week: int) -> tuple[ChainTemplate, ...]:
        return self.regime_at(week).templates

    def template_churn(self, week_a: int, week_b: int) -> tuple[int, int, int]:
        """(kept, added, removed) template counts between two weeks."""
        a = {t.key for t in self.templates_at(week_a)}
        b = {t.key for t in self.templates_at(week_b)}
        return (len(a & b), len(b - a), len(a - b))
