"""Parser and writer for the public LogHub BGL RAS-log format.

The paper's logs are the raw ANL / SDSC Blue Gene/L RAS dumps; the publicly
released equivalent (LogHub's ``BGL.log``) uses one line per record::

    - 1117838570 2005.06.03 R02-M1-N0-C:J12-U11 2005-06-03-15.42.50.363779 \
R02-M1-N0-C:J12-U11 RAS KERNEL INFO instruction cache parity error corrected

Fields: alert label (``-`` for non-alert), epoch seconds, date, node,
full timestamp, node (repeated), recording mechanism, facility, severity,
and the free-text message.  This module converts between that format and
:class:`~repro.raslog.events.RASEvent` so real logs can be dropped into the
pipeline in place of the synthetic generator.
"""

from __future__ import annotations

import io
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.raslog.events import Facility, RASEvent, Severity
from repro.raslog.store import EventLog

#: Number of whitespace-separated header fields before the message text.
_HEADER_FIELDS = 9


class ParseError(ValueError):
    """A malformed log line encountered in strict mode."""

    def __init__(self, line_no: int, line: str, reason: str) -> None:
        super().__init__(f"line {line_no}: {reason}: {line[:120]!r}")
        self.line_no = line_no
        self.line = line
        self.reason = reason


@dataclass
class ParseReport:
    """Counts accumulated while parsing in lenient mode."""

    parsed: int = 0
    skipped: int = 0
    errors: list[ParseError] = field(default_factory=list)

    def record_error(self, err: ParseError, keep: int = 20) -> None:
        self.skipped += 1
        if len(self.errors) < keep:
            self.errors.append(err)


def parse_line(line: str, line_no: int = 0) -> RASEvent:
    """Parse one LogHub BGL line into a :class:`RASEvent`.

    The LogHub format carries no Job ID; ``job_id`` is set to 0 and real
    deployments can re-join job information from the scheduler log.
    """
    parts = line.rstrip("\n").split(None, _HEADER_FIELDS)
    if len(parts) < _HEADER_FIELDS:
        raise ParseError(line_no, line, "expected at least 9 fields")
    label, epoch_s, _date, location, _full_ts, _loc2, mechanism, fac_s, sev_s = parts[
        :_HEADER_FIELDS
    ]
    message = parts[_HEADER_FIELDS] if len(parts) > _HEADER_FIELDS else ""
    try:
        timestamp = float(int(epoch_s))
    except ValueError:
        raise ParseError(line_no, line, f"bad epoch field {epoch_s!r}") from None
    try:
        facility = Facility.parse(fac_s)
    except ValueError:
        raise ParseError(line_no, line, f"unknown facility {fac_s!r}") from None
    try:
        severity = Severity.parse(sev_s)
    except ValueError:
        raise ParseError(line_no, line, f"unknown severity {sev_s!r}") from None
    # The alert label marks lines LogHub's curators flagged; keep it in the
    # event_type channel alongside the recording mechanism.
    event_type = mechanism if label == "-" else f"{mechanism}:{label}"
    return RASEvent(
        record_id=line_no,
        event_type=event_type,
        timestamp=timestamp,
        job_id=0,
        location=location,
        entry_data=message,
        facility=facility,
        severity=severity,
    )


def iter_lines(
    lines: Iterable[str],
    *,
    strict: bool = False,
    report: ParseReport | None = None,
) -> Iterator[RASEvent]:
    """Yield events from raw lines, skipping blanks (and, unless strict,
    malformed lines, which are tallied in *report*)."""
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            event = parse_line(line, line_no)
        except ParseError as err:
            if strict:
                raise
            if report is not None:
                report.record_error(err)
            continue
        if report is not None:
            report.parsed += 1
        yield event


def load_log(
    source: str | Path | io.TextIOBase,
    *,
    strict: bool = False,
    report: ParseReport | None = None,
) -> EventLog:
    """Parse a LogHub BGL file (or open text stream) into an EventLog.

    The log's origin is set to the earliest event time so that week
    arithmetic starts at the head of the trace.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8", errors="replace") as fh:
            events = list(iter_lines(fh, strict=strict, report=report))
    else:
        events = list(iter_lines(source, strict=strict, report=report))
    origin = min((e.timestamp for e in events), default=0.0)
    return EventLog(events, origin=origin)


def format_line(event: RASEvent, origin_epoch: float = 1_100_000_000.0) -> str:
    """Render an event as a LogHub BGL line (inverse of :func:`parse_line`).

    Synthetic timestamps are relative to the trace origin; *origin_epoch*
    shifts them into UNIX-epoch territory so the emitted line round-trips.
    """
    epoch = int(event.timestamp + origin_epoch)
    import time

    tm = time.gmtime(epoch)
    date = time.strftime("%Y.%m.%d", tm)
    full_ts = time.strftime("%Y-%m-%d-%H.%M.%S", tm) + ".000000"
    if ":" in event.event_type:
        mechanism, label = event.event_type.split(":", 1)
    else:
        mechanism, label = event.event_type, "-"
    return (
        f"{label} {epoch} {date} {event.location} {full_ts} {event.location} "
        f"{mechanism} {event.facility.value} {event.severity.name} {event.entry_data}"
    )


def dump_log(
    log: EventLog,
    destination: str | Path | io.TextIOBase,
    origin_epoch: float = 1_100_000_000.0,
) -> int:
    """Write a log in LogHub BGL format; returns the number of lines."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as fh:
            return dump_log(log, fh, origin_epoch)
    n = 0
    for event in log:
        destination.write(format_line(event, origin_epoch) + "\n")
        n += 1
    return n
