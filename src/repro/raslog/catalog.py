"""Hierarchical event-type catalog for Blue Gene/L RAS logs.

The paper categorizes system events hierarchically: ten high-level
categories keyed on the Facility attribute, refined into 219 low-level
event types using the Severity and Entry Data attributes, of which 69 are
fatal and 150 non-fatal (Table 3).  This module builds that catalog.

Names for the prominent types are taken from the paper's examples and the
public LogHub BGL corpus ("uncorrectable torus error", "communication
failure socket closed", ...); the remaining types are filled in with
realistic per-facility templates so the per-facility fatal / non-fatal
counts match Table 3 exactly.

The catalog also models the paper's "fake fatal" cleanup: a handful of
types logged at FATAL/FAILURE severity are nonetheless classified
non-fatal, mirroring the types the authors removed from the failure list
after consulting ANL and SDSC administrators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.raslog.events import FACILITIES, Facility, Severity

#: Per-facility (fatal, non-fatal) low-level type counts from Table 3.
TABLE3_COUNTS: dict[Facility, tuple[int, int]] = {
    Facility.APP: (10, 7),
    Facility.BGLMASTER: (2, 2),
    Facility.CMCS: (0, 4),
    Facility.DISCOVERY: (0, 24),
    Facility.HARDWARE: (1, 12),
    Facility.KERNEL: (46, 90),
    Facility.LINKCARD: (1, 0),
    Facility.MMCS: (0, 5),
    Facility.MONITOR: (9, 5),
    Facility.SERV_NET: (0, 1),
}

TOTAL_FATAL_TYPES = 69
TOTAL_NONFATAL_TYPES = 150


@dataclass(frozen=True, slots=True)
class EventType:
    """One low-level event type in the hierarchical categorization.

    ``code`` is the stable identifier used throughout the library (rule
    bodies, interning, churn tracking).  ``fatal`` is the *catalog-level*
    classification used for training and evaluation; ``severity`` is the
    level the logging facility stamps on records, and the two disagree for
    fake-fatal types (``severity.is_fatal_class and not fatal``).
    """

    code: str
    facility: Facility
    severity: Severity
    description: str
    fatal: bool
    fake_fatal: bool = False

    def __post_init__(self) -> None:
        if self.fatal and not self.severity.is_fatal_class:
            raise ValueError(
                f"fatal type {self.code} must carry FATAL/FAILURE severity"
            )
        if self.fake_fatal and self.fatal:
            raise ValueError(f"type {self.code} cannot be both fatal and fake-fatal")
        if self.fake_fatal and not self.severity.is_fatal_class:
            raise ValueError(
                f"fake-fatal type {self.code} must carry FATAL/FAILURE severity"
            )


# Hand-written seed descriptions: (description, severity) per facility.
_FATAL_SEEDS: dict[Facility, list[tuple[str, Severity]]] = {
    Facility.APP: [
        ("load program failure", Severity.FATAL),
        ("function call failure", Severity.FATAL),
        ("ciod communication failure socket closed", Severity.FAILURE),
        ("application segmentation fault signal 11", Severity.FATAL),
        ("ciod cannot read message prefix on control stream", Severity.FATAL),
        ("application bus error signal 7", Severity.FATAL),
        ("application floating point exception signal 8", Severity.FATAL),
        ("ciod failed to open stdin stream", Severity.FATAL),
        ("ciod duplicate tree packet received", Severity.FATAL),
        ("application illegal instruction signal 4", Severity.FATAL),
    ],
    Facility.BGLMASTER: [
        ("bglmaster segmentation failure", Severity.FATAL),
        ("bglmaster unexpected component termination", Severity.FAILURE),
    ],
    Facility.HARDWARE: [
        ("midplane power module failure", Severity.FATAL),
    ],
    Facility.KERNEL: [
        ("uncorrectable torus error", Severity.FATAL),
        ("uncorrectable error detected in edram bank", Severity.FATAL),
        ("kernel broadcast failure", Severity.FATAL),
        ("L3 cache failure uncorrectable ecc", Severity.FATAL),
        ("cpu failure machine check interrupt", Severity.FATAL),
        ("node map file error unable to load", Severity.FATAL),
        ("data TLB error interrupt fatal", Severity.FATAL),
        ("instruction storage interrupt fatal", Severity.FATAL),
        ("kernel panic unrecoverable state", Severity.FAILURE),
        ("tree receiver fifo reception error", Severity.FATAL),
        ("torus sender retransmission limit exceeded", Severity.FATAL),
        ("double-bit memory error not correctable", Severity.FATAL),
        ("rts assertion failed kernel halt", Severity.FAILURE),
        ("program interrupt fatal illegal operation", Severity.FATAL),
        ("lustre mount fatal i/o node", Severity.FATAL),
        ("fsFailure file system unavailable", Severity.FAILURE),
    ],
    Facility.LINKCARD: [
        ("linkcard failure power control lost", Severity.FAILURE),
    ],
    Facility.MONITOR: [
        ("node card temperature error shutdown", Severity.FATAL),
        ("fan speed failure airflow lost", Severity.FAILURE),
        ("power rail out of range shutdown", Severity.FATAL),
    ],
}

_NONFATAL_SEEDS: dict[Facility, list[tuple[str, Severity]]] = {
    Facility.APP: [
        ("ciod job started", Severity.INFO),
        ("ciod job exited normally", Severity.INFO),
        ("application warning slow collective", Severity.WARNING),
    ],
    Facility.BGLMASTER: [
        ("BGLMaster restart info", Severity.INFO),
        ("bglmaster component heartbeat warning", Severity.WARNING),
    ],
    Facility.CMCS: [
        ("CMCS command info", Severity.INFO),
        ("CMCS exit info", Severity.INFO),
        ("CMCS polling agent restarted", Severity.WARNING),
    ],
    Facility.DISCOVERY: [
        ("nodecard communication warning", Severity.WARNING),
        ("servicecard read error", Severity.ERROR),
        ("nodecard VPD read warning", Severity.WARNING),
        ("discovery scan started", Severity.INFO),
    ],
    Facility.HARDWARE: [
        ("midplane service warning", Severity.WARNING),
        ("clock card drift warning", Severity.WARNING),
    ],
    Facility.KERNEL: [
        ("instruction cache parity error corrected", Severity.INFO),
        ("ddr error single symbol corrected", Severity.WARNING),
        ("networkWarningInterrupt torus", Severity.WARNING),
        ("networkError retransmitted packets", Severity.ERROR),
        ("idoStartInfo packet exchange", Severity.INFO),
        ("bglStartInfo boot sequence", Severity.INFO),
        ("L3 ecc error single bit corrected", Severity.WARNING),
        ("correctable error detected in edram bank", Severity.WARNING),
        ("torus receiver input pipe warning", Severity.WARNING),
        ("tree packet checksum warning corrected", Severity.WARNING),
        ("write buffer flush severe delay", Severity.SEVERE),
        ("memory scrub cycle severe latency", Severity.SEVERE),
    ],
    Facility.MMCS: [
        ("control network MMCS error", Severity.ERROR),
        ("MMCS idoproxy communication warning", Severity.WARNING),
    ],
    Facility.MONITOR: [
        ("node card temperature warning", Severity.WARNING),
        ("fan speed below nominal warning", Severity.WARNING),
    ],
    Facility.SERV_NET: [
        ("system operation error service network", Severity.ERROR),
    ],
}

# Types logged at FATAL severity that administrators classified as benign
# ("fake fatals", Section 3.1).  They count toward the non-fatal totals.
_FAKE_FATAL_SEEDS: dict[Facility, list[tuple[str, Severity]]] = {
    Facility.APP: [
        ("ciod cleanup fatal message benign", Severity.FATAL),
    ],
    Facility.KERNEL: [
        ("rts shutdown fatal message during reboot", Severity.FATAL),
        ("diagnostic fatal injected by health check", Severity.FATAL),
    ],
    Facility.MONITOR: [
        ("monitor fatal sensor glitch transient", Severity.FATAL),
    ],
}

_FILLER_NONFATAL_SEVERITIES = (
    Severity.INFO,
    Severity.WARNING,
    Severity.ERROR,
    Severity.SEVERE,
)


def _filler_description(facility: Facility, fatal: bool, index: int) -> str:
    kind = "fatal condition" if fatal else "status condition"
    return f"{facility.value.lower()} {kind} class {index:03d}"


class EventCatalog:
    """Immutable collection of :class:`EventType` with fast lookups."""

    def __init__(self, types: list[EventType]) -> None:
        codes = [t.code for t in types]
        if len(set(codes)) != len(codes):
            dupes = sorted({c for c in codes if codes.count(c) > 1})
            raise ValueError(f"duplicate event-type codes: {dupes}")
        self._types: tuple[EventType, ...] = tuple(types)
        self._by_code: dict[str, EventType] = {t.code: t for t in types}
        self._index: dict[str, int] = {t.code: i for i, t in enumerate(types)}
        self._by_description: dict[tuple[Facility, str], EventType] = {
            (t.facility, t.description): t for t in types
        }

    def __len__(self) -> int:
        return len(self._types)

    def __iter__(self) -> Iterator[EventType]:
        return iter(self._types)

    def __contains__(self, code: str) -> bool:
        return code in self._by_code

    def get(self, code: str) -> EventType:
        try:
            return self._by_code[code]
        except KeyError:
            raise KeyError(f"unknown event-type code {code!r}") from None

    def index(self, code: str) -> int:
        """Dense integer id of a type code, for interning in hot paths."""
        try:
            return self._index[code]
        except KeyError:
            raise KeyError(f"unknown event-type code {code!r}") from None

    def by_description(self, facility: Facility, description: str) -> EventType:
        try:
            return self._by_description[(facility, description)]
        except KeyError:
            raise KeyError(
                f"no {facility.value} type with description {description!r}"
            ) from None

    @property
    def types(self) -> tuple[EventType, ...]:
        return self._types

    def fatal_types(self) -> list[EventType]:
        return [t for t in self._types if t.fatal]

    def nonfatal_types(self) -> list[EventType]:
        return [t for t in self._types if not t.fatal]

    def fake_fatal_types(self) -> list[EventType]:
        return [t for t in self._types if t.fake_fatal]

    def types_for(self, facility: Facility, fatal: bool | None = None) -> list[EventType]:
        out = [t for t in self._types if t.facility is facility]
        if fatal is not None:
            out = [t for t in out if t.fatal == fatal]
        return out

    def is_fatal_code(self, code: str) -> bool:
        return self.get(code).fatal

    def counts_by_facility(self) -> dict[Facility, tuple[int, int]]:
        """(fatal, non-fatal) type counts per facility — Table 3."""
        counts: dict[Facility, tuple[int, int]] = {}
        for facility in FACILITIES:
            fatal = sum(
                1 for t in self._types if t.facility is facility and t.fatal
            )
            nonfatal = sum(
                1 for t in self._types if t.facility is facility and not t.fatal
            )
            counts[facility] = (fatal, nonfatal)
        return counts


def build_catalog(
    counts: dict[Facility, tuple[int, int]] | None = None,
    include_fake_fatals: bool = True,
) -> EventCatalog:
    """Build a catalog with the given per-facility (fatal, non-fatal) counts.

    With default arguments this reproduces the paper's Table 3 catalog:
    219 types, 69 fatal and 150 non-fatal, including the fake-fatal types
    folded into the non-fatal totals.
    """
    counts = dict(TABLE3_COUNTS if counts is None else counts)
    types: list[EventType] = []
    for facility in FACILITIES:
        n_fatal, n_nonfatal = counts.get(facility, (0, 0))
        if n_fatal < 0 or n_nonfatal < 0:
            raise ValueError(
                f"negative type count for {facility.value}: "
                f"({n_fatal}, {n_nonfatal})"
            )

        fatal_seeds = list(_FATAL_SEEDS.get(facility, ()))[:n_fatal]
        for i in range(n_fatal):
            if i < len(fatal_seeds):
                description, severity = fatal_seeds[i]
            else:
                description = _filler_description(facility, True, i)
                severity = Severity.FATAL if i % 3 else Severity.FAILURE
            types.append(
                EventType(
                    code=f"{facility.value}-F-{i:03d}",
                    facility=facility,
                    severity=severity,
                    description=description,
                    fatal=True,
                )
            )

        fake_seeds = (
            list(_FAKE_FATAL_SEEDS.get(facility, ())) if include_fake_fatals else []
        )
        # Fake fatals occupy the head of the non-fatal allocation.
        fake_seeds = fake_seeds[:n_nonfatal]
        nonfatal_seeds = list(_NONFATAL_SEEDS.get(facility, ()))
        for i in range(n_nonfatal):
            if i < len(fake_seeds):
                description, severity = fake_seeds[i]
                fake = True
            elif i - len(fake_seeds) < len(nonfatal_seeds):
                description, severity = nonfatal_seeds[i - len(fake_seeds)]
                fake = False
            else:
                description = _filler_description(facility, False, i)
                severity = _FILLER_NONFATAL_SEVERITIES[
                    i % len(_FILLER_NONFATAL_SEVERITIES)
                ]
                fake = False
            types.append(
                EventType(
                    code=f"{facility.value}-N-{i:03d}",
                    facility=facility,
                    severity=severity,
                    description=description,
                    fatal=False,
                    fake_fatal=fake,
                )
            )
    return EventCatalog(types)


_DEFAULT: EventCatalog | None = None


def default_catalog() -> EventCatalog:
    """The canonical Table 3 catalog (cached; catalogs are immutable)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = build_catalog()
    return _DEFAULT
