"""Blue Gene/L RAS event model.

Mirrors the eight-attribute record layout of the CMCS event repository
(Table 1 of the paper): record id, event type (recording mechanism), event
time, job id, location, entry data, facility and severity.  Severity levels
follow the Blue Gene ordering INFO < WARNING < SEVERE < ERROR < FATAL <
FAILURE; FATAL and FAILURE records are failure *candidates*, but whether a
record is treated as a true failure is decided by the event catalog
(:mod:`repro.raslog.catalog`), which knows about the "fake fatal" types the
paper removes after consulting system administrators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Any


class Severity(enum.IntEnum):
    """Blue Gene RAS severity levels in increasing order of severity."""

    INFO = 0
    WARNING = 1
    SEVERE = 2
    ERROR = 3
    FATAL = 4
    FAILURE = 5

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}") from None

    @property
    def is_fatal_class(self) -> bool:
        """True for the FATAL/FAILURE severity classes (failure candidates)."""
        return self >= Severity.FATAL


class Facility(str, enum.Enum):
    """High-level event source, the Facility attribute of a RAS record."""

    APP = "APP"
    BGLMASTER = "BGLMASTER"
    CMCS = "CMCS"
    DISCOVERY = "DISCOVERY"
    HARDWARE = "HARDWARE"
    KERNEL = "KERNEL"
    LINKCARD = "LINKCARD"
    MMCS = "MMCS"
    MONITOR = "MONITOR"
    SERV_NET = "SERV_NET"

    @classmethod
    def parse(cls, text: str) -> "Facility":
        key = text.strip().upper().replace("-", "_").replace(" ", "_")
        try:
            return cls[key]
        except KeyError:
            raise ValueError(f"unknown facility {text!r}") from None


#: All facilities in Table 3 order.
FACILITIES: tuple[Facility, ...] = tuple(Facility)


@dataclass(frozen=True, slots=True)
class RASEvent:
    """One record of the RAS log (Table 1 of the paper).

    ``timestamp`` is seconds from the trace origin.  ``entry_data`` holds
    the short textual description; after categorization it is the low-level
    event-type code from the catalog, which is how the learners identify
    events.  ``location`` uses the Blue Gene naming convention
    (e.g. ``R02-M1-N0-C:J12-U11``); for synthetic logs a simplified
    ``R<rack>-M<midplane>-N<node>`` form is used.
    """

    record_id: int
    event_type: str
    timestamp: float
    job_id: int
    location: str
    entry_data: str
    facility: Facility
    severity: Severity

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError(f"negative timestamp {self.timestamp!r}")
        if self.record_id < 0:
            raise ValueError(f"negative record id {self.record_id!r}")

    @property
    def is_fatal_class(self) -> bool:
        """Severity-level fatality; catalog-level fatality may differ."""
        return self.severity.is_fatal_class

    def with_entry_data(self, entry_data: str) -> "RASEvent":
        """Copy of this event with ``entry_data`` replaced (categorization)."""
        return replace(self, entry_data=entry_data)

    def with_timestamp(self, timestamp: float) -> "RASEvent":
        return replace(self, timestamp=timestamp)

    def as_dict(self) -> dict[str, Any]:
        return {
            "record_id": self.record_id,
            "event_type": self.event_type,
            "timestamp": self.timestamp,
            "job_id": self.job_id,
            "location": self.location,
            "entry_data": self.entry_data,
            "facility": self.facility.value,
            "severity": self.severity.name,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RASEvent":
        """Inverse of :meth:`as_dict` (checkpoint round-trips)."""
        return cls(
            record_id=data["record_id"],
            event_type=data["event_type"],
            timestamp=data["timestamp"],
            job_id=data["job_id"],
            location=data["location"],
            entry_data=data["entry_data"],
            facility=Facility(data["facility"]),
            severity=Severity[data["severity"]],
        )
