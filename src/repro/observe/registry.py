"""Metric registry, span timing, and the swappable process default.

A :class:`MetricsRegistry` is a namespace of instruments created on
first use (``registry.counter("online.events")``).  Durations are
recorded with :meth:`MetricsRegistry.span` — a re-usable context manager
that feeds a histogram of the same name and exposes ``.seconds`` for
callers that also need the value (e.g. to fill ``RetrainEvent`` fields).

Instrumented library code records through :func:`get_registry`, the
current process-wide default; entry points that want an isolated view
(the ``repro metrics`` subcommand, the benchmark harness) install a
fresh registry with :func:`use_registry` around the measured work.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.observe.metrics import Counter, Gauge, Histogram


class Span:
    """Times one ``with`` block and records it into a histogram."""

    __slots__ = ("name", "seconds", "_histogram", "_start")

    def __init__(self, name: str, histogram: Histogram) -> None:
        self.name = name
        self._histogram = histogram
        self._start: float | None = None
        #: duration of the most recent completed block, seconds
        self.seconds = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None, "span exited without entering"
        self.seconds = time.perf_counter() - self._start
        self._start = None
        self._histogram.observe(self.seconds)


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, cls):
        if not name:
            raise ValueError("instrument name must be non-empty")
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name)
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {cls.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def span(self, name: str) -> Span:
        """Context manager timing a block into histogram ``name``."""
        return Span(name, self.histogram(name))

    #: ``timer`` reads better at call sites that ignore ``.seconds``.
    timer = span

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def snapshot(self) -> dict[str, dict]:
        """All instruments as a JSON-ready ``{name: summary}`` mapping."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {name: inst.snapshot() for name, inst in instruments}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Drop every instrument (a fresh, empty namespace)."""
        with self._lock:
            self._instruments.clear()


_default_registry = MetricsRegistry()
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The registry instrumented library code currently records into."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process default; returns the old one."""
    global _default_registry
    with _registry_lock:
        previous = _default_registry
        _default_registry = registry
        return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope the default registry to a ``with`` block (re-entrant)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def counter(name: str) -> Counter:
    return get_registry().counter(name)


def gauge(name: str) -> Gauge:
    return get_registry().gauge(name)


def histogram(name: str) -> Histogram:
    return get_registry().histogram(name)


def span(name: str) -> Span:
    return get_registry().span(name)


def timer(name: str) -> Span:
    return get_registry().timer(name)
