"""Metric registry, span timing, labels, and the swappable process default.

A :class:`MetricsRegistry` is a namespace of instruments created on
first use (``registry.counter("online.events")``).  Instruments may
carry **labels** — ``registry.counter("service.events", shard="R01")``
— which create one independent time series per label set under the same
metric name, rendered Prometheus-style as
``service.events{shard="R01"}``.  Unlabeled instruments keep their bare
name, so snapshots of label-free workloads are byte-identical to the
pre-label format (backward-compatible flat snapshots).

Durations are recorded with :meth:`MetricsRegistry.span` — a re-usable
context manager that feeds a histogram of the same name and exposes
``.seconds`` for callers that also need the value (e.g. to fill
``RetrainEvent`` fields).

Snapshots are deterministic: series are ordered by metric name, then by
sorted label set, so two runs of the same workload export identical
JSON and benchmark diffs stay stable.

Instrumented library code records through :func:`get_registry`, the
current process-wide default; entry points that want an isolated view
(the ``repro metrics`` subcommand, the benchmark harness) install a
fresh registry with :func:`use_registry` around the measured work.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.observe.metrics import Counter, Gauge, Histogram

#: Canonical, hashable form of a label set: sorted (key, value) pairs.
LabelSet = tuple[tuple[str, str], ...]


def labels_key(labels: dict[str, object]) -> LabelSet:
    """Canonicalize ``labels``: values stringified, keys sorted."""
    for key in labels:
        if not key:
            raise ValueError("label names must be non-empty")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def render_name(name: str, labels: LabelSet = ()) -> str:
    """Rendered series name: ``name`` or ``name{k="v",...}``."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Span:
    """Times one ``with`` block and records it into a histogram."""

    __slots__ = ("name", "seconds", "_histogram", "_start")

    def __init__(self, name: str, histogram: Histogram) -> None:
        self.name = name
        self._histogram = histogram
        self._start: float | None = None
        #: duration of the most recent completed block, seconds
        self.seconds = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None, "span exited without entering"
        self.seconds = time.perf_counter() - self._start
        self._start = None
        self._histogram.observe(self.seconds)


class MetricsRegistry:
    """Named (and optionally labeled) instruments, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[
            tuple[str, LabelSet], Counter | Gauge | Histogram
        ] = {}

    def _get_or_create(self, name: str, cls, labels: dict[str, object]):
        if not name:
            raise ValueError("instrument name must be non-empty")
        key = (name, labels_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(render_name(*key))
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {render_name(*key)!r} is a "
                    f"{type(instrument).__name__}, not a {cls.__name__}"
                )
            return instrument

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get_or_create(name, Counter, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get_or_create(name, Gauge, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get_or_create(name, Histogram, labels)

    def span(self, name: str, **labels: object) -> Span:
        """Context manager timing a block into histogram ``name``."""
        return Span(name, self.histogram(name, **labels))

    #: ``timer`` reads better at call sites that ignore ``.seconds``.
    timer = span

    def _sorted_items(self):
        with self._lock:
            return sorted(self._instruments.items())

    def names(self) -> list[str]:
        """Rendered series names, ordered by (name, label set)."""
        return [render_name(*key) for key, _ in self._sorted_items()]

    def series(
        self, name: str
    ) -> list[tuple[dict[str, str], Counter | Gauge | Histogram]]:
        """All label sets recorded under ``name``, in label-set order."""
        return [
            (dict(labels), inst)
            for (base, labels), inst in self._sorted_items()
            if base == name
        ]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            keys = list(self._instruments)
        return any(
            name == base or name == render_name(base, labels)
            for base, labels in keys
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def snapshot(self) -> dict[str, dict]:
        """All series as a JSON-ready ``{rendered name: summary}`` mapping.

        Deterministically ordered by metric name, then label set.
        Unlabeled instruments keep the flat pre-label summary shape;
        labeled series additionally carry a ``"labels"`` mapping so
        consumers need not parse the rendered name.
        """
        out: dict[str, dict] = {}
        for (base, labels), inst in self._sorted_items():
            summary = inst.snapshot()
            if labels:
                summary["labels"] = dict(labels)
            out[render_name(base, labels)] = summary
        return out

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def dump(self) -> list[dict]:
        """Every series' full mergeable state, in deterministic order.

        Unlike :meth:`snapshot`, entries carry the *base* name and label
        mapping separately (so a merge can re-key them) and histograms
        include their reservoirs.  This is the payload shard worker
        processes ship to the parent under the subprocess backend.
        """
        return [
            {"name": base, "labels": dict(labels), **inst.dump()}
            for (base, labels), inst in self._sorted_items()
        ]

    def merge(self, dump: list[dict]) -> None:
        """Fold a :meth:`dump` from another registry into this one.

        Series are matched by (base name, label set) — a worker's
        ``service.events{shard="R01"}`` lands on the parent's series of
        exactly that name — and merged per instrument type: counters
        sum, gauges last-write, histograms combine count/sum/min/max and
        resample the reservoir union.  Series this registry has never
        seen are created.
        """
        classes = {
            "counter": Counter,
            "gauge": Gauge,
            "histogram": Histogram,
        }
        for entry in dump:
            cls = classes.get(entry.get("type"))
            if cls is None:
                raise ValueError(
                    f"cannot merge metric entry of type "
                    f"{entry.get('type')!r}"
                )
            inst = self._get_or_create(
                entry["name"], cls, entry.get("labels", {})
            )
            inst.merge(entry)

    def merged_snapshot(self, dumps: list[list[dict]]) -> dict[str, dict]:
        """A :meth:`snapshot`-shaped view of this registry with every
        dump in ``dumps`` folded in, without mutating this registry."""
        view = MetricsRegistry()
        view.merge(self.dump())
        for dump in dumps:
            view.merge(dump)
        return view.snapshot()

    def reset(self) -> None:
        """Drop every instrument (a fresh, empty namespace)."""
        with self._lock:
            self._instruments.clear()


_default_registry = MetricsRegistry()
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The registry instrumented library code currently records into."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process default; returns the old one."""
    global _default_registry
    with _registry_lock:
        previous = _default_registry
        _default_registry = registry
        return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope the default registry to a ``with`` block (re-entrant)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def counter(name: str, **labels: object) -> Counter:
    return get_registry().counter(name, **labels)


def gauge(name: str, **labels: object) -> Gauge:
    return get_registry().gauge(name, **labels)


def histogram(name: str, **labels: object) -> Histogram:
    return get_registry().histogram(name, **labels)


def span(name: str, **labels: object) -> Span:
    return get_registry().span(name, **labels)


def timer(name: str, **labels: object) -> Span:
    return get_registry().timer(name, **labels)
