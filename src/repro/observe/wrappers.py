"""Metrics as a composable session layer.

:class:`MeteredSession` wraps any
:class:`~repro.core.session.StreamSession` layer and records labeled
instruments around it — per-call latency histograms, event/warning
counters, and a degraded-state gauge — without the wrapped layer knowing
it is being observed.  The fleet service wraps each shard's stack with
``MeteredSession(stack, shard=key)``, which is what makes per-shard
throughput visible in ``repro metrics`` output and benchmark JSON::

    service.ingest{shard="R01-M0-N04"}   # latency histogram
    service.events{shard="R01-M0-N04"}   # ingested-event counter
    service.degraded{shard="R01-M0-N04"} # 1.0 while retraining is owed
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import observe

if TYPE_CHECKING:
    from repro.alerts import FailureWarning
    from repro.core.session import StreamSession
    from repro.raslog.events import RASEvent


class MeteredSession:
    """Record labeled throughput/latency/degraded metrics around a layer.

    ``prefix`` namespaces the instruments (default ``"session"``);
    ``labels`` become metric labels on every instrument, e.g.
    ``MeteredSession(stack, prefix="service", shard="R00")`` records
    ``service.events{shard="R00"}``.  ``degraded_of`` optionally names an
    object whose ``degraded`` attribute is mirrored into a gauge after
    every call (defaults to the wrapped layer itself).
    """

    def __init__(
        self,
        inner: "StreamSession",
        prefix: str = "session",
        degraded_of: object | None = None,
        **labels: object,
    ) -> None:
        self.inner = inner
        self.prefix = prefix
        self.labels = labels
        self._degraded_of = degraded_of if degraded_of is not None else inner

    def _record(self, new: "list[FailureWarning]", n_events: int) -> None:
        if n_events:
            observe.counter(f"{self.prefix}.events", **self.labels).inc(
                n_events
            )
        if new:
            observe.counter(f"{self.prefix}.warnings", **self.labels).inc(
                len(new)
            )
        degraded = getattr(self._degraded_of, "degraded", None)
        if degraded is not None:
            observe.gauge(f"{self.prefix}.degraded", **self.labels).set(
                1.0 if degraded else 0.0
            )

    def ingest(self, event: "RASEvent") -> "list[FailureWarning]":
        with observe.timer(f"{self.prefix}.ingest", **self.labels):
            new = self.inner.ingest(event)
        self._record(new, 1)
        return new

    def ingest_batch(self, events: "list[RASEvent]") -> "list[FailureWarning]":
        batch = getattr(self.inner, "ingest_batch", None)
        with observe.timer(f"{self.prefix}.ingest", **self.labels):
            if batch is not None:
                new = batch(events)
            else:
                new = []
                for event in events:
                    new.extend(self.inner.ingest(event))
        self._record(new, len(events))
        return new

    def advance(self, now: float) -> "list[FailureWarning]":
        new = self.inner.advance(now)
        self._record(new, 0)
        return new

    def flush(self) -> "list[FailureWarning]":
        new = self.inner.flush()
        self._record(new, 0)
        return new


__all__ = ["MeteredSession"]
