"""Lightweight metrics and tracing for the prediction pipeline.

The paper's framework is an *online* monitor: it lives next to a
production system and must prove that rule matching stays far below the
event inter-arrival time (Table 5) while retraining runs off the
critical path.  This package provides the measurement substrate for
those claims — a process-local :class:`MetricsRegistry` holding named
:class:`Counter`/:class:`Gauge`/:class:`Histogram` instruments, a
``span()``/``timer()`` context-manager API that records wall-clock
durations into histograms, and JSON export for benchmark artifacts.

Hot paths record through the *current* registry (a module-level default,
swappable with :func:`set_registry` or scoped with :func:`use_registry`)
so instrumentation needs no constructor plumbing::

    from repro import observe

    with observe.span("meta.train") as sp:
        output = meta.train(log, window)
    print(sp.seconds)

    observe.counter("online.events").inc()
    observe.counter("service.events", shard="R01-M0").inc()  # labeled series
    print(observe.get_registry().to_json(indent=2))

Instruments are cheap (a lock plus O(1) reservoir updates), so it is
safe to leave them on in production; a fresh registry starts empty and
:meth:`MetricsRegistry.snapshot` renders everything recorded since.
"""

from repro.observe.metrics import Counter, Gauge, Histogram
from repro.observe.registry import (
    MetricsRegistry,
    Span,
    counter,
    gauge,
    get_registry,
    histogram,
    labels_key,
    render_name,
    set_registry,
    span,
    timer,
    use_registry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "labels_key",
    "render_name",
    "set_registry",
    "span",
    "timer",
    "use_registry",
]
