"""Instrument types: counters, gauges and streaming histograms.

Each instrument is thread-safe (the executors may train learners on
worker threads) and snapshots to a plain-JSON dict.  The histogram keeps
exact count/sum/min/max plus a fixed-size uniform reservoir (Vitter's
Algorithm R) so p50/p95/p99 stay O(1) memory over unbounded streams.
The reservoir RNG is seeded from the instrument name, keeping snapshots
reproducible run-to-run for deterministic workloads.

Instruments are **mergeable**: :meth:`dump` exports an instrument's full
state (for a histogram, including its reservoir) and :meth:`merge` folds
such a dump into a live instrument — counters sum, gauges last-write,
histograms combine exact count/sum/min/max and resample the union of the
two reservoirs.  This is how per-shard worker processes report metrics
back to the parent registry under the subprocess service backend.
"""

from __future__ import annotations

import random
import threading
import zlib

DEFAULT_RESERVOIR_SIZE = 1024


class Counter:
    """Monotonically increasing count of occurrences."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self._value}

    def dump(self) -> dict:
        """Full mergeable state (same shape as :meth:`snapshot`)."""
        return self.snapshot()

    def merge(self, state: dict) -> None:
        """Fold another counter's dump into this one: counts sum."""
        self.inc(state["value"])


class Gauge:
    """Last-written value of a quantity that can go up and down."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self._value}

    def dump(self) -> dict:
        """Full mergeable state (same shape as :meth:`snapshot`)."""
        return self.snapshot()

    def merge(self, state: dict) -> None:
        """Fold another gauge's dump into this one: last write wins —
        the dump being merged is the more recent observation."""
        self.set(state["value"])


class Histogram:
    """Streaming distribution summary with reservoir-sampled quantiles."""

    __slots__ = (
        "name", "_count", "_sum", "_min", "_max",
        "_reservoir", "_capacity", "_rng", "_lock",
    )

    def __init__(
        self, name: str, reservoir_size: int = DEFAULT_RESERVOIR_SIZE
    ) -> None:
        if reservoir_size < 1:
            raise ValueError(
                f"reservoir_size must be >= 1, got {reservoir_size}"
            )
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._reservoir: list[float] = []
        self._capacity = reservoir_size
        # hash() is salted per-process; crc32 keeps the seed stable.
        self._rng = random.Random(zlib.crc32(name.encode()))
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._reservoir) < self._capacity:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < self._capacity:
                    self._reservoir[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1) from the reservoir."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        with self._lock:
            sample = sorted(self._reservoir)
        if not sample:
            return 0.0
        # Nearest-rank on the sampled values.
        index = min(len(sample) - 1, int(q * len(sample)))
        return sample[index]

    def snapshot(self) -> dict:
        with self._lock:
            # min/max must be copied under the same lock as count/sum and
            # the reservoir: reading them after release races a concurrent
            # observe() from an executor worker and can tear the snapshot
            # (e.g. min > p50).
            count, total = self._count, self._sum
            low, high = self._min, self._max
            sample = sorted(self._reservoir)
        if not count:
            return {"type": "histogram", "count": 0}

        def q(frac: float) -> float:
            return sample[min(len(sample) - 1, int(frac * len(sample)))]

        out = {
            "type": "histogram",
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": low,
            "max": high,
            "p50": q(0.50),
            "p95": q(0.95),
            "p99": q(0.99),
        }
        if total > 0:
            # For duration histograms: observations per second of
            # measured time, i.e. sustained throughput of the stage.
            out["per_second"] = count / total
        return out

    def dump(self) -> dict:
        """Full mergeable state: exact aggregates plus the reservoir."""
        with self._lock:
            state = {
                "type": "histogram",
                "count": self._count,
                "sum": self._sum,
                "reservoir": list(self._reservoir),
                "capacity": self._capacity,
            }
            if self._count:
                state["min"] = self._min
                state["max"] = self._max
        return state

    def merge(self, state: dict) -> None:
        """Fold another histogram's dump into this one.

        count/sum/min/max merge exactly.  The reservoirs are combined by
        weighted resampling (Efraimidis–Spirakis A-Res): each retained
        sample represents ``population / len(reservoir)`` original
        observations, so drawing ``capacity`` items with those weights
        keeps the merged reservoir an (approximately) uniform sample of
        the union stream.  Deterministic given this instrument's seeded
        RNG.
        """
        other_count = state["count"]
        if not other_count:
            return
        sample = [float(v) for v in state["reservoir"]]
        with self._lock:
            prior_count = self._count
            self._count += other_count
            self._sum += state["sum"]
            if state["min"] < self._min:
                self._min = state["min"]
            if state["max"] > self._max:
                self._max = state["max"]
            if not self._reservoir:
                merged = sample
            elif len(self._reservoir) + len(sample) <= self._capacity:
                merged = self._reservoir + sample
            else:
                w_self = prior_count / len(self._reservoir)
                w_other = other_count / len(sample)
                pool = [(w_self, v) for v in self._reservoir]
                pool += [(w_other, v) for v in sample]
                keyed = sorted(
                    ((self._rng.random() ** (1.0 / w), v) for w, v in pool),
                    reverse=True,
                )
                merged = [v for _, v in keyed[: self._capacity]]
            if len(merged) > self._capacity:
                merged = [
                    merged[i]
                    for i in sorted(
                        self._rng.sample(range(len(merged)), self._capacity)
                    )
                ]
            self._reservoir = merged
