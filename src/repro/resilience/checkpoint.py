"""Versioned, atomic checkpoint files for the online session.

A monitor that runs for months next to a production machine will be
restarted — deploys, node reboots, OOM kills — and must come back
without losing its monitoring state or re-streaming half a year of
events.  :meth:`OnlinePredictionSession.checkpoint` serializes the full
session (rules with provenance, predictor monitoring state, retrain
schedule and degraded-mode bookkeeping, accumulated warnings, fatal
bookkeeping, the event-history tail future retrainings need, and any
reorder-buffer residue) into one JSON document written atomically
(temp file + ``os.replace``), and :meth:`OnlinePredictionSession.resume`
rebuilds a session that continues *byte-identically* to one that never
stopped — the equivalence is pinned by tests.

The document carries a format name, a schema version and a digest of
the session's :class:`~repro.core.framework.FrameworkConfig`; loading
rejects unknown versions and mismatched configs instead of silently
resuming with different semantics.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.core.serialization import (
    record_from_dict,
    record_to_dict,
    warning_from_dict,
    warning_to_dict,
)
from repro.core.tracking import ChurnRecord
from repro.raslog.events import RASEvent
from repro.resilience.degrade import (
    RetrainFailure,
    failure_from_dict,
    failure_to_dict,
)

CHECKPOINT_FORMAT = "repro-session-checkpoint"
#: Version written by this build.  v2 added the ``journal`` field (the
#: write-ahead-log position covered by the snapshot); v3 added the
#: ``adapt`` field (drift-detector and adaptive-retrain-policy state).
#: Older files — which simply predate those subsystems — are still
#: readable: a missing field means the feature was off or absent.
CHECKPOINT_VERSION = 3
CHECKPOINT_READABLE_VERSIONS = (1, 2, 3)


class CheckpointError(ValueError):
    """A checkpoint file that cannot (or must not) be resumed."""


def fsync_directory(path: str | Path) -> None:
    """Best-effort fsync of a directory entry.

    ``os.replace`` makes a rename atomic, but the *directory entry*
    itself only becomes durable once the directory is fsynced — without
    it a power loss can make a just-renamed file vanish.  Platforms
    without directory fds (no ``os.O_DIRECTORY``) silently skip.
    """
    flag = getattr(os, "O_DIRECTORY", None)
    if flag is None:  # pragma: no cover - non-POSIX platforms
        return
    try:
        fd = os.open(path, os.O_RDONLY | flag)
    except OSError:  # pragma: no cover - unreadable parent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


def atomic_write_json(path: str | Path, payload: dict[str, Any]) -> None:
    """Write JSON durably: temp file + fsync + ``os.replace`` + dir fsync.

    A crash mid-write leaves either the previous checkpoint or none —
    never a torn file — and the directory fsync after the rename makes
    the *new* file survive a power loss too.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent or "."
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=None, separators=(",", ":"))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_directory(path.parent or ".")


def read_checkpoint(path: str | Path) -> dict[str, Any]:
    """Load and validate a checkpoint document."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"{path}: not a {CHECKPOINT_FORMAT} file")
    version = payload.get("version")
    if version not in CHECKPOINT_READABLE_VERSIONS:
        raise CheckpointError(
            f"{path}: unsupported checkpoint version {version!r} "
            f"(this build reads versions "
            f"{', '.join(map(str, CHECKPOINT_READABLE_VERSIONS))})"
        )
    return payload


# -- config identity ------------------------------------------------------


def config_to_dict(config) -> dict[str, Any]:
    """JSON-ready form of a :class:`FrameworkConfig`.

    ``learner_params`` must be JSON-serializable (it is for every
    registry learner); exotic param objects make a config un-checkpointable.

    The adaptive-retraining fields are emitted only when
    ``retrain_trigger`` is not ``"fixed"``: with the fixed trigger they
    are inert, and omitting them keeps the digest of every pre-existing
    (fixed-cadence) checkpoint valid under this build.
    """
    data = {
        "prediction_window": config.prediction_window,
        "retrain_weeks": config.retrain_weeks,
        "policy": {
            "kind": config.policy.kind,
            "length_weeks": config.policy.length_weeks,
        },
        "initial_train_weeks": config.initial_train_weeks,
        "use_reviser": config.use_reviser,
        "min_roc": config.min_roc,
        "ensemble": config.ensemble,
        "tick": config.tick,
        "dist_horizon_cap": config.dist_horizon_cap,
        "learners": list(config.learners),
        "learner_params": config.learner_params,
        "on_retrain_error": config.on_retrain_error,
        "reorder_slack": config.reorder_slack,
        "retrain_backoff_base": config.retrain_backoff_base,
        "retrain_backoff_cap": config.retrain_backoff_cap,
    }
    if config.retrain_trigger != "fixed":
        data["retrain_trigger"] = config.retrain_trigger
        data["adapt"] = {
            "mix_threshold": config.adapt_mix_threshold,
            "gap_threshold": config.adapt_gap_threshold,
            "rule_threshold": config.adapt_rule_threshold,
            "cooldown_weeks": config.adapt_cooldown_weeks,
            "max_interval_weeks": config.adapt_max_interval_weeks,
            "window_events": config.adapt_window_events,
            "hysteresis": config.adapt_hysteresis,
        }
    return data


def config_from_dict(data: dict[str, Any]):
    """Rebuild a :class:`FrameworkConfig` from :func:`config_to_dict`."""
    from repro.core.framework import FrameworkConfig
    from repro.core.windows import TrainingPolicy

    data = dict(data)
    policy = data.pop("policy")
    adapt = data.pop("adapt", None)
    if adapt is not None:
        data.update({f"adapt_{key}": value for key, value in adapt.items()})
    return FrameworkConfig(
        policy=TrainingPolicy(
            kind=policy["kind"], length_weeks=policy["length_weeks"]
        ),
        learners=tuple(data.pop("learners")),
        **data,
    )


def config_digest(config) -> str:
    """Stable identity of a config, for checkpoint/resume compatibility."""
    blob = json.dumps(config_to_dict(config), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- component codecs -----------------------------------------------------


def event_to_dict(event: RASEvent) -> dict[str, Any]:
    return event.as_dict()


def event_from_dict(data: dict[str, Any]) -> RASEvent:
    return RASEvent.from_dict(data)


def churn_to_dict(churn: ChurnRecord) -> dict[str, Any]:
    return {
        "week": churn.week,
        "unchanged": churn.unchanged,
        "added": churn.added,
        "removed_by_meta": churn.removed_by_meta,
        "removed_by_reviser": churn.removed_by_reviser,
    }


def churn_from_dict(data: dict[str, Any]) -> ChurnRecord:
    return ChurnRecord(
        week=data["week"],
        unchanged=data["unchanged"],
        added=data["added"],
        removed_by_meta=data["removed_by_meta"],
        removed_by_reviser=data["removed_by_reviser"],
    )


def retrain_event_to_dict(event) -> dict[str, Any]:
    return {
        "week": event.week,
        "train_span": list(event.train_span),
        "n_candidates": event.n_candidates,
        "n_kept": event.n_kept,
        "churn": churn_to_dict(event.churn),
        "generation_seconds": event.generation_seconds,
        "revise_seconds": event.revise_seconds,
        "learner_seconds": event.learner_seconds,
    }


def retrain_event_from_dict(data: dict[str, Any]):
    from repro.core.framework import RetrainEvent

    return RetrainEvent(
        week=data["week"],
        train_span=tuple(data["train_span"]),
        n_candidates=data["n_candidates"],
        n_kept=data["n_kept"],
        churn=churn_from_dict(data["churn"]),
        generation_seconds=data["generation_seconds"],
        revise_seconds=data["revise_seconds"],
        learner_seconds=dict(data["learner_seconds"]),
    )


__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_READABLE_VERSIONS",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "atomic_write_json",
    "fsync_directory",
    "churn_from_dict",
    "churn_to_dict",
    "config_digest",
    "config_from_dict",
    "config_to_dict",
    "event_from_dict",
    "event_to_dict",
    "failure_from_dict",
    "failure_to_dict",
    "read_checkpoint",
    "record_from_dict",
    "record_to_dict",
    "retrain_event_from_dict",
    "retrain_event_to_dict",
    "warning_from_dict",
    "warning_to_dict",
    "RetrainFailure",
]
