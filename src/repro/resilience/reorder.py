"""Bounded re-sequencing of late events.

Real cluster traces arrive late, duplicated and occasionally out of
order (network retries, per-node clock skew, batched forwarders).  A
strict monitor that raises on the first out-of-order event poisons the
whole stream; :class:`ReorderBuffer` instead holds events for up to
``slack`` seconds of disorder and releases them in timestamp order.

The watermark is ``max_seen - slack``: an event older than the watermark
arrived too late to re-sequence and is *quarantined* (returned as
dropped, never raised); everything else is buffered and released — in
sorted order, ties by arrival — once the watermark passes it.  The
watermark is monotone, so released events are guaranteed non-decreasing
in time, which is exactly the contract the downstream predictor needs.
"""

from __future__ import annotations

import heapq

from repro.raslog.events import RASEvent


class ReorderBuffer:
    """Min-heap buffer releasing events once they clear the slack window."""

    def __init__(self, slack: float) -> None:
        if slack <= 0:
            raise ValueError(f"slack must be positive, got {slack}")
        self.slack = float(slack)
        self.max_seen = float("-inf")
        self.n_reordered = 0
        self.n_quarantined = 0
        self._seq = 0
        #: (timestamp, arrival sequence, event) min-heap
        self._heap: list[tuple[float, int, RASEvent]] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def watermark(self) -> float:
        return self.max_seen - self.slack

    def push(self, event: RASEvent) -> tuple[list[RASEvent], list[RASEvent]]:
        """Accept one arrival; returns ``(ready, dropped)``.

        ``ready`` are buffered events now clear of the slack window, in
        timestamp order; ``dropped`` is the event itself when it arrived
        beyond the slack (quarantined).
        """
        if event.timestamp < self.watermark:
            self.n_quarantined += 1
            return [], [event]
        if event.timestamp < self.max_seen:
            self.n_reordered += 1
        heapq.heappush(self._heap, (event.timestamp, self._seq, event))
        self._seq += 1
        self.max_seen = max(self.max_seen, event.timestamp)
        return self._release(self.watermark), []

    def release_until(self, t: float) -> list[RASEvent]:
        """Release everything at or before ``t`` (a clock advance).

        The clock reaching ``t`` moves the watermark up to ``t`` itself:
        a deployment timer observed ``t``, so an event arriving later
        with a timestamp before ``t`` can no longer be re-sequenced and
        is quarantined — releasing it would hand the consumer an event
        older than everything already released at this call.
        """
        self.max_seen = max(self.max_seen, t + self.slack)
        return self._release(t)

    def drain(self) -> list[RASEvent]:
        """Release everything still buffered (end of stream / flush)."""
        return self._release(float("inf"))

    def _release(self, horizon: float) -> list[RASEvent]:
        ready: list[RASEvent] = []
        while self._heap and self._heap[0][0] <= horizon:
            ready.append(heapq.heappop(self._heap)[2])
        return ready

    def pending(self) -> list[RASEvent]:
        """Buffered events in release order, without removing them."""
        return [item[2] for item in sorted(self._heap)]
