"""Composable durability/delivery wrappers around a session core.

Each wrapper implements the same three-method
:class:`~repro.core.session.StreamSession` protocol it wraps, so layers
stack by plain composition::

    core  = SessionCore(config, catalog)
    stack = JournalingSession(ReorderingSession(core, slack), journal)

* :class:`ReorderingSession` re-sequences out-of-order events through a
  bounded :class:`~repro.resilience.reorder.ReorderBuffer` and
  quarantines anything later than the slack, so the inner layer only
  ever sees an ordered stream;
* :class:`JournalingSession` appends every accepted input to an
  :class:`~repro.resilience.journal.EventJournal` *before* delegating,
  giving the stack write-ahead durability; replay sets ``suppress`` so
  re-fed records are not journaled twice.

Input *validation* (origin/order checks that must reject an event before
it is journaled) is the responsibility of whoever owns the stack — the
``OnlinePredictionSession`` facade — because a rejected event must never
reach the write-ahead log.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro import observe
from repro.raslog.events import RASEvent
from repro.resilience.journal import EventJournal
from repro.resilience.reorder import ReorderBuffer

if TYPE_CHECKING:
    from repro.alerts import FailureWarning
    from repro.core.session import StreamSession

#: How many quarantined (too-late) events are kept for inspection.
QUARANTINE_KEEP = 100


class ReorderingSession:
    """Bounded re-sequencing of late events in front of an ordered core.

    Events within ``slack`` seconds of the newest seen are buffered and
    released in time order; later ones are quarantined (counted, kept in
    :attr:`quarantined`, never raised).  :meth:`advance` forces out
    anything the observed clock has overtaken before delegating, and
    :meth:`flush` drains the buffer at end of stream.
    """

    def __init__(self, inner: "StreamSession", slack: float) -> None:
        if slack <= 0:
            raise ValueError(f"reorder slack must be positive, got {slack}")
        self.inner = inner
        self.buffer = ReorderBuffer(slack)
        #: most recent events dropped as later than the slack
        self.quarantined: deque[RASEvent] = deque(maxlen=QUARANTINE_KEEP)
        self.n_quarantined = 0

    def ingest(self, event: RASEvent) -> "list[FailureWarning]":
        ready, dropped = self.buffer.push(event)
        if dropped:
            self.n_quarantined += len(dropped)
            self.quarantined.extend(dropped)
            observe.counter("online.quarantined").inc(len(dropped))
        new: "list[FailureWarning]" = []
        for e in ready:
            new.extend(self.inner.ingest(e))
        return new

    def advance(self, now: float) -> "list[FailureWarning]":
        # The clock overtaking a buffered event forces it out: the
        # deployment timer observed "now", so nothing before it may
        # still be pending.
        new: "list[FailureWarning]" = []
        for e in self.buffer.release_until(now):
            new.extend(self.inner.ingest(e))
        new.extend(self.inner.advance(now))
        return new

    def flush(self) -> "list[FailureWarning]":
        new: "list[FailureWarning]" = []
        for e in self.buffer.drain():
            new.extend(self.inner.ingest(e))
        new.extend(self.inner.flush())
        return new


class JournalingSession:
    """Write-ahead journaling in front of any session layer.

    Every input is appended to the journal *before* the inner layer may
    change state, so a crash mid-call is recovered by replaying the
    journal record.  During recovery the replayer sets :attr:`suppress`
    while re-feeding records through the stack, so replayed inputs are
    not appended a second time.
    """

    def __init__(self, inner: "StreamSession", journal: EventJournal) -> None:
        self.inner = inner
        self.journal = journal
        #: True while recovery replays records through this stack
        self.suppress = False

    def _append(self, record: dict) -> None:
        if not self.suppress:
            self.journal.append(record)

    def ingest(self, event: RASEvent) -> "list[FailureWarning]":
        self._append({"kind": "ingest", "event": event.as_dict()})
        return self.inner.ingest(event)

    def ingest_batch(self, events: "list[RASEvent]") -> "list[FailureWarning]":
        """Journal a whole batch with one group commit, then feed it.

        Write-ahead ordering is preserved batch-wise: every record is
        durable (one ``os.write`` + one group fsync via
        :meth:`~repro.resilience.journal.EventJournal.append_batch`)
        before the *first* event may change inner state, so recovery
        replays at least as much as was processed.
        """
        if not self.suppress:
            self.journal.append_batch(
                [{"kind": "ingest", "event": e.as_dict()} for e in events]
            )
        new: "list[FailureWarning]" = []
        for e in events:
            new.extend(self.inner.ingest(e))
        return new

    def advance(self, now: float) -> "list[FailureWarning]":
        self._append({"kind": "advance", "now": now})
        return self.inner.advance(now)

    def flush(self) -> "list[FailureWarning]":
        self._append({"kind": "flush"})
        return self.inner.flush()


__all__ = ["JournalingSession", "QUARANTINE_KEEP", "ReorderingSession"]
