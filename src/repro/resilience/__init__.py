"""Fault tolerance for long-lived online sessions.

Three capabilities, all wired through
:class:`~repro.core.online.OnlinePredictionSession`:

* **degraded-mode retraining** (:mod:`repro.resilience.degrade`) — a
  crashing retrain no longer kills the session; it keeps predicting
  with the previous rule set, records a :class:`RetrainFailure` and
  retries with capped exponential backoff;
* **checkpoint/resume** (:mod:`repro.resilience.checkpoint`) — the full
  session state round-trips through a versioned JSON file written
  atomically, and a resumed session continues byte-identically to an
  uninterrupted one;
* **late-event tolerance** (:mod:`repro.resilience.reorder`) — a bounded
  :class:`ReorderBuffer` re-sequences events that arrive within a
  configured slack and quarantines anything later, instead of raising;
* **write-ahead journaling** (:mod:`repro.resilience.journal`) — a
  segmented, checksummed :class:`EventJournal` records every accepted
  input before it is processed, so recovery (checkpoint + journal
  replay) is crash-consistent: no event between the last checkpoint and
  the crash is lost.

The matching chaos harness lives in :mod:`repro.faults`.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_READABLE_VERSIONS,
    CHECKPOINT_VERSION,
    CheckpointError,
    atomic_write_json,
    config_digest,
    config_from_dict,
    config_to_dict,
    fsync_directory,
    read_checkpoint,
)
from repro.resilience.degrade import RetrainFailure, backoff_delay
from repro.resilience.journal import (
    EventJournal,
    JournalCorruption,
    JournalError,
    parse_fsync_policy,
)
from repro.resilience.reorder import ReorderBuffer
from repro.resilience.wrappers import (
    QUARANTINE_KEEP,
    JournalingSession,
    ReorderingSession,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_READABLE_VERSIONS",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "EventJournal",
    "JournalCorruption",
    "JournalError",
    "JournalingSession",
    "QUARANTINE_KEEP",
    "ReorderBuffer",
    "ReorderingSession",
    "RetrainFailure",
    "atomic_write_json",
    "backoff_delay",
    "config_digest",
    "config_from_dict",
    "config_to_dict",
    "fsync_directory",
    "parse_fsync_policy",
    "read_checkpoint",
]
