"""Fault tolerance for long-lived online sessions.

Three capabilities, all wired through
:class:`~repro.core.online.OnlinePredictionSession`:

* **degraded-mode retraining** (:mod:`repro.resilience.degrade`) — a
  crashing retrain no longer kills the session; it keeps predicting
  with the previous rule set, records a :class:`RetrainFailure` and
  retries with capped exponential backoff;
* **checkpoint/resume** (:mod:`repro.resilience.checkpoint`) — the full
  session state round-trips through a versioned JSON file written
  atomically, and a resumed session continues byte-identically to an
  uninterrupted one;
* **late-event tolerance** (:mod:`repro.resilience.reorder`) — a bounded
  :class:`ReorderBuffer` re-sequences events that arrive within a
  configured slack and quarantines anything later, instead of raising.

The matching chaos harness lives in :mod:`repro.faults`.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointError,
    atomic_write_json,
    config_digest,
    config_from_dict,
    config_to_dict,
    read_checkpoint,
)
from repro.resilience.degrade import RetrainFailure, backoff_delay
from repro.resilience.reorder import ReorderBuffer

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "ReorderBuffer",
    "RetrainFailure",
    "atomic_write_json",
    "backoff_delay",
    "config_digest",
    "config_from_dict",
    "config_to_dict",
    "read_checkpoint",
]
