"""Durable write-ahead event journal for the online session.

Periodic checkpoints (:mod:`repro.resilience.checkpoint`) bound recovery
to the last snapshot — every event ingested *since* is lost on a crash,
which on a live RAS feed means missed precursors and missed warnings.
The :class:`EventJournal` closes that gap: the session appends every
accepted input (events, clock advances, flushes) to the journal *before*
acting on it, so after a crash the checkpoint restores the last snapshot
and replaying the journal records past the checkpoint's recorded
position reconstructs the exact pre-crash state — warning for warning
(pinned by the kill-at-any-event-index chaos tests).

On-disk layout: a directory of size-rotated segment files named
``journal-<start>.seg`` where ``<start>`` is the global index of the
segment's first record.  Each record is length-prefixed and checksummed
(``<u32 length><u32 crc32><payload>``, payload = compact JSON), so
recovery can tell the two corruption modes apart:

* a **torn tail** — the record the crash interrupted, recognisable as a
  short read at the end of the *last* segment — is truncated away and
  counted (``journal.torn_tail_truncated``); the event it held was never
  durable and its source will re-deliver it;
* **bit rot** — a complete record whose CRC32 does not match, anywhere —
  raises :class:`JournalCorruption` naming the segment and byte offset,
  because silently skipping an event the session *did* process would
  break replay equivalence.

Durability is tunable per deployment through the fsync policy:
``"always"`` (fsync every append — survives power loss), a positive
integer N (fsync every N appends — bounded loss window on power loss),
or ``"never"`` (OS page cache only — survives process crashes, not power
loss).  Appends use raw ``os.write`` on the segment fd, so even under
``"never"`` a killed *process* loses nothing that ``append`` returned
for.  After a checkpoint, :meth:`compact` deletes segments wholly
covered by it.

Counters (current :mod:`repro.observe` registry): ``journal.appends``,
``journal.fsyncs``, ``journal.torn_tail_truncated``,
``journal.replayed_events``, ``journal.compacted_segments``.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any, Iterator

from repro import faults, observe
from repro.resilience.checkpoint import fsync_directory

#: ``<u32 payload length><u32 crc32(payload)>`` little-endian.
_HEADER = struct.Struct("<II")

#: Sanity cap on a single record; a larger claimed length is corruption
#: (a real record is a few hundred bytes of JSON).
MAX_RECORD_BYTES = 16 * 1024 * 1024

_SEGMENT_PREFIX = "journal-"
_SEGMENT_SUFFIX = ".seg"

#: Default segment rotation size.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024


class JournalError(RuntimeError):
    """A journal that cannot be opened or appended to."""


class JournalCorruption(JournalError):
    """A complete journal record failed validation (bit rot, framing).

    Distinct from a torn tail, which is expected after a crash and is
    silently truncated; corruption *inside* the committed prefix means
    replay can no longer reproduce the pre-crash session and must be
    surfaced to the operator.
    """

    def __init__(
        self, message: str, *, segment: str | None = None, offset: int | None = None
    ) -> None:
        where = ""
        if segment is not None:
            where = f" [segment {segment}" + (
                f", offset {offset}]" if offset is not None else "]"
            )
        super().__init__(message + where)
        self.segment = segment
        self.offset = offset


def parse_fsync_policy(value: str | int) -> str | int:
    """Validate an fsync policy: ``"always"``, ``"never"`` or int N >= 1."""
    if value in ("always", "never"):
        return value
    try:
        interval = int(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"invalid fsync policy {value!r}: expected 'always', 'never' "
            f"or a positive integer"
        ) from None
    if interval < 1:
        raise ValueError(
            f"invalid fsync interval {interval}: must be >= 1 "
            f"(use 'never' to disable fsync)"
        )
    return interval


def _segment_path(directory: Path, start: int) -> Path:
    return directory / f"{_SEGMENT_PREFIX}{start:020d}{_SEGMENT_SUFFIX}"


def _segment_start(path: Path) -> int | None:
    name = path.name
    if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
        return None
    digits = name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def _parse_record(
    data: bytes, offset: int, segment: str, final: bool
) -> tuple[bytes | None, int]:
    """Parse one framed record at ``offset``; returns ``(payload, end)``.

    ``(None, offset)`` marks a torn tail: a record cut short by a crash,
    legal only at the end of the newest segment.  A complete record with
    a CRC mismatch — or any anomaly inside a sealed segment — raises
    :class:`JournalCorruption`.
    """
    if offset + _HEADER.size > len(data):
        if final:
            return None, offset
        raise JournalCorruption(
            "truncated record header inside a sealed segment",
            segment=segment,
            offset=offset,
        )
    length, crc = _HEADER.unpack_from(data, offset)
    if length > MAX_RECORD_BYTES:
        raise JournalCorruption(
            f"implausible record length {length}",
            segment=segment,
            offset=offset,
        )
    end = offset + _HEADER.size + length
    if end > len(data):
        if final:
            return None, offset
        raise JournalCorruption(
            "truncated record payload inside a sealed segment",
            segment=segment,
            offset=offset,
        )
    payload = data[offset + _HEADER.size : end]
    if zlib.crc32(payload) != crc:
        # A *complete* record with a bad checksum is bit rot, not a
        # torn write — never silently dropped.
        raise JournalCorruption(
            "record CRC32 mismatch", segment=segment, offset=offset
        )
    return payload, end


class EventJournal:
    """Segmented, checksummed write-ahead log of session inputs.

    Opening a directory scans the newest segment, truncates any torn
    tail left by a crash, and positions new appends after the last
    committed record; an empty or missing directory starts a fresh
    journal at position 0.  ``position`` is the global count of
    committed records — the value a checkpoint stores so recovery knows
    where replay must start.
    """

    def __init__(
        self,
        directory: str | Path,
        fsync: str | int = "always",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        retain: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.fsync_policy = parse_fsync_policy(fsync)
        if segment_bytes < 1:
            raise ValueError(f"segment_bytes must be >= 1, got {segment_bytes}")
        self.segment_bytes = segment_bytes
        #: keep checkpoint-covered segments (:meth:`compact` becomes a
        #: no-op) — live resharding rebuilds shards by replaying their
        #: journals from record 0, which a compacted journal cannot do.
        self.retain = retain
        self.directory.mkdir(parents=True, exist_ok=True)
        #: torn records truncated when this journal was opened
        self.n_torn_truncated = 0
        self._appends_since_sync = 0
        self._fd: int | None = None
        self._open_tail()

    # -- opening / scanning ------------------------------------------------

    def _segments(self) -> list[tuple[int, Path]]:
        """All segment files, sorted by their starting record index."""
        found = []
        for path in self.directory.iterdir():
            start = _segment_start(path)
            if start is not None:
                found.append((start, path))
        found.sort()
        return found

    def _open_tail(self) -> None:
        segments = self._segments()
        if not segments:
            self._start_segment(0)
            self._position = 0
            return
        start, path = segments[-1]
        n_records, valid_end = self._scan_segment(path, final=True)
        if valid_end < path.stat().st_size:
            with open(path, "r+b") as fh:
                fh.truncate(valid_end)
                fh.flush()
                os.fsync(fh.fileno())
            self.n_torn_truncated += 1
            observe.counter("journal.torn_tail_truncated").inc()
        self._segment_size = valid_end
        self._segment_path = path
        self._fd = os.open(path, os.O_WRONLY | os.O_APPEND)
        self._position = start + n_records

    def _scan_segment(self, path: Path, final: bool) -> tuple[int, int]:
        """Validate a segment; returns ``(n_records, valid_end_offset)``."""
        data = path.read_bytes()
        offset = 0
        n_records = 0
        while offset < len(data):
            payload, end = _parse_record(data, offset, path.name, final)
            if payload is None:
                break
            n_records += 1
            offset = end
        return n_records, offset

    def _start_segment(self, start: int) -> None:
        path = _segment_path(self.directory, start)
        self._fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        self._segment_size = 0
        self._segment_path = path
        fsync_directory(self.directory)

    # -- appending ---------------------------------------------------------

    @property
    def position(self) -> int:
        """Global index one past the last committed record."""
        return self._position

    @property
    def start_position(self) -> int:
        """Global index of the earliest record still on disk.

        0 for a journal that has never been compacted (or was opened
        with ``retain=True``); resharding checks this before promising a
        from-the-beginning replay.
        """
        segments = self._segments()
        return segments[0][0] if segments else self._position

    @property
    def closed(self) -> bool:
        return self._fd is None

    def append(self, record: dict[str, Any]) -> int:
        """Frame, checksum and write one record; returns the new position.

        The write is a single raw ``os.write`` (no user-space buffering),
        so a process crash immediately after ``append`` returns loses
        nothing; whether a *power* loss can is governed by the fsync
        policy.
        """
        if self._fd is None:
            raise JournalError("journal is closed")
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        framed = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        plan = faults.active()
        kill_message = None
        if plan is not None:
            framed, kill_message = plan.on_journal_append(self._position, framed)
        os.write(self._fd, framed)
        if kill_message is not None:
            # Simulated crash mid-write: the partial bytes are on disk
            # and this journal is dead, exactly like the real process.
            os.close(self._fd)
            self._fd = None
            raise faults.FaultInjected(kill_message)
        self._position += 1
        self._segment_size += len(framed)
        observe.counter("journal.appends").inc()
        self._maybe_sync()
        if self._segment_size >= self.segment_bytes:
            self._rotate()
        return self._position

    def append_batch(self, records: "list[dict[str, Any]]") -> int:
        """Frame and write a batch with one ``os.write`` + one group fsync.

        Group commit: under ``fsync="always"`` the whole batch is made
        durable by a *single* fsync instead of one per record, which is
        where the per-event WAL overhead lives.  Durability semantics
        are unchanged — the batch is written (and synced) before any of
        its records is processed, and a crash mid-write leaves a torn
        tail whose truncated suffix was never durable, exactly as with
        per-record appends; recovery replays the committed prefix and
        the source re-delivers the rest.

        With a fault-injection plan active, falls back to per-record
        :meth:`append` so ``on_journal_append`` hooks still see every
        record index.
        """
        if self._fd is None:
            raise JournalError("journal is closed")
        if not records:
            return self._position
        if faults.active() is not None:
            for record in records:
                self.append(record)
            return self._position
        frames = []
        for record in records:
            payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
            frames.append(
                _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
            )
        buffer = b"".join(frames)
        os.write(self._fd, buffer)
        self._position += len(frames)
        self._segment_size += len(buffer)
        observe.counter("journal.appends").inc(len(frames))
        observe.counter("journal.batched_appends").inc(len(frames))
        policy = self.fsync_policy
        if policy == "always":
            self.sync()
        elif policy != "never":
            self._appends_since_sync += len(frames)
            if self._appends_since_sync >= policy:
                self.sync()
        if self._segment_size >= self.segment_bytes:
            self._rotate()
        return self._position

    def _maybe_sync(self) -> None:
        policy = self.fsync_policy
        if policy == "never":
            return
        if policy == "always":
            self.sync()
            return
        self._appends_since_sync += 1
        if self._appends_since_sync >= policy:
            self.sync()

    def sync(self) -> None:
        """Force the current segment to stable storage."""
        if self._fd is None:
            return
        os.fsync(self._fd)
        self._appends_since_sync = 0
        observe.counter("journal.fsyncs").inc()

    def _rotate(self) -> None:
        assert self._fd is not None
        if self.fsync_policy != "never":
            self.sync()
        os.close(self._fd)
        self._start_segment(self._position)

    def reset_position(self, position: int) -> None:
        """Fast-forward to ``position`` by opening a segment named for it.

        Used by recovery when a checkpoint records a position *beyond*
        the journal's committed tail — possible after a power loss under
        a relaxed fsync policy, where page-cached appends vanished but
        the (always-fsynced) checkpoint survived.  Rotating to a segment
        named ``position`` keeps record indices monotonic and aligned
        with checkpoints instead of re-using indices the snapshot
        already covers.
        """
        if position < self._position:
            raise JournalError(
                f"cannot move the journal position backwards "
                f"({position} < {self._position})"
            )
        if position == self._position:
            return
        if self._fd is None:
            raise JournalError("journal is closed")
        self._position = position
        self._rotate()

    def close(self) -> None:
        """Sync (unless policy ``"never"``) and release the segment fd."""
        if self._fd is None:
            return
        if self.fsync_policy != "never":
            self.sync()
        os.close(self._fd)
        self._fd = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- replay / compaction -----------------------------------------------

    def replay(self, from_position: int = 0) -> Iterator[tuple[int, dict[str, Any]]]:
        """Yield ``(index, record)`` for every committed record >= position.

        Segments wholly below ``from_position`` are skipped without
        reading; every record that is read is CRC-validated (a mismatch
        raises :class:`JournalCorruption`).
        """
        segments = self._segments()
        for i, (start, path) in enumerate(segments):
            next_start = (
                segments[i + 1][0] if i + 1 < len(segments) else self._position
            )
            if next_start <= from_position:
                continue
            final = i == len(segments) - 1
            data = path.read_bytes()
            offset = 0
            index = start
            while offset < len(data):
                payload, end = _parse_record(data, offset, path.name, final)
                if payload is None:
                    break
                if index >= from_position:
                    yield index, json.loads(payload.decode("utf-8"))
                index += 1
                offset = end

    def compact(self, covered_position: int) -> int:
        """Delete segments wholly covered by a checkpoint at ``position``.

        A segment may go once *every* record in it is below
        ``covered_position``; the active tail segment always stays.
        Returns the number of segments removed.  A ``retain=True``
        journal never compacts — its full history is the handoff
        substrate for live resharding.
        """
        if self.retain:
            return 0
        segments = self._segments()
        removed = 0
        for i, (start, path) in enumerate(segments[:-1]):
            next_start = segments[i + 1][0]
            if next_start <= covered_position:
                path.unlink()
                removed += 1
        if removed:
            observe.counter("journal.compacted_segments").inc(removed)
            fsync_directory(self.directory)
        return removed


__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "EventJournal",
    "JournalCorruption",
    "JournalError",
    "MAX_RECORD_BYTES",
    "parse_fsync_policy",
]
