"""Degraded-mode bookkeeping for failed retrainings.

A long-lived monitor cannot afford to die because one retraining round
crashed (a learner bug, a broken worker pool, a reviser error).  With
``FrameworkConfig.on_retrain_error="degrade"`` the session keeps
predicting with the previous rule set, records a :class:`RetrainFailure`
and retries with capped exponential backoff.  This module holds the
shared record type and the backoff schedule; the state machine lives in
:class:`~repro.core.online.OnlinePredictionSession`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class RetrainFailure:
    """One failed retraining attempt, kept for post-mortem analysis.

    ``attempt`` counts consecutive failures since the last successful
    retraining (1 = first failure); ``time`` is the stream time at which
    the attempt ran.  The exception itself is kept as ``repr`` text so
    failure records serialize into checkpoints.
    """

    week: int
    error: str
    error_type: str
    attempt: int
    time: float


def backoff_delay(attempt: int, base: float, cap: float) -> float:
    """Capped exponential backoff: ``min(base * 2**(attempt-1), cap)``."""
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    # Guard the shift: past ~60 doublings the float is astronomically
    # beyond any cap anyway, and 2.0**big overflows to inf harmlessly.
    exponent = min(attempt - 1, 64)
    return min(base * 2.0**exponent, cap)


def failure_to_dict(failure: RetrainFailure) -> dict[str, Any]:
    return {
        "week": failure.week,
        "error": failure.error,
        "error_type": failure.error_type,
        "attempt": failure.attempt,
        "time": failure.time,
    }


def failure_from_dict(data: dict[str, Any]) -> RetrainFailure:
    return RetrainFailure(
        week=data["week"],
        error=data["error"],
        error_type=data["error_type"],
        attempt=data["attempt"],
        time=data["time"],
    )
