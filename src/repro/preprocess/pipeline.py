"""End-to-end data preprocessing (Figure 1, left half).

Chains the two components of the paper's preprocessing stage — the event
categorizer and the event filter — turning a raw RAS dump into the list of
unique, categorized events the prediction stage consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import observe
from repro.preprocess.categorizer import CategorizationReport, Categorizer
from repro.preprocess.filtering import FilterStats, compress, deduplicate_exact
from repro.raslog.catalog import EventCatalog
from repro.raslog.store import EventLog

#: The paper's chosen coalescence threshold (seconds).
DEFAULT_THRESHOLD = 300.0


@dataclass
class PreprocessResult:
    """Output of one pipeline run."""

    clean: EventLog
    categorization: CategorizationReport
    filtering: FilterStats

    @property
    def compression_rate(self) -> float:
        return self.filtering.compression_rate


class PreprocessingPipeline:
    """Categorize, then compress.

    Order matters: categorization first maps free-text descriptions onto
    stable codes, so the filter's event-identity key is insensitive to
    per-instance detail in the message text (addresses, counts).
    """

    def __init__(
        self,
        catalog: EventCatalog | None = None,
        threshold: float = DEFAULT_THRESHOLD,
        unknown: str = "skip",
        drop_exact_duplicates: bool = True,
    ) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        self.categorizer = Categorizer(catalog, unknown=unknown)
        self.threshold = threshold
        self.drop_exact_duplicates = drop_exact_duplicates

    @property
    def catalog(self) -> EventCatalog:
        return self.categorizer.catalog

    def run(self, raw: EventLog) -> PreprocessResult:
        with observe.span("preprocess.run"):
            report = CategorizationReport()
            categorized = self.categorizer.categorize(raw, report)
            if self.drop_exact_duplicates:
                categorized = deduplicate_exact(categorized)
            clean, _ = compress(categorized, self.threshold)
            stats = FilterStats.from_logs(self.threshold, raw, clean)
        observe.counter("preprocess.events_in").inc(len(raw))
        observe.counter("preprocess.events_out").inc(len(clean))
        observe.gauge("preprocess.compression_rate").set(stats.compression_rate)
        return PreprocessResult(
            clean=clean, categorization=report, filtering=stats
        )
