"""Event categorization (Section 3.1).

Maps raw RAS records onto the hierarchical catalog: the Facility attribute
selects the high-level category, and the Severity + Entry Data attributes
select the low-level event type.  After categorization an event's
``entry_data`` holds the catalog *code*, which is the identity the learners
and the predictor operate on.

Fake-fatal handling: the paper removes events whose logged severity is
FATAL/FAILURE but which administrators classified as benign.  Those types
carry ``fatal=False`` in the catalog, so simply classifying through the
catalog performs the removal; the report counts how many records were
demoted this way.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.raslog.catalog import EventCatalog, EventType, default_catalog
from repro.raslog.events import Facility, RASEvent
from repro.raslog.store import EventLog

_WS = re.compile(r"\s+")


def normalize_description(text: str) -> str:
    """Canonical form used for description lookup: case- and
    whitespace-insensitive, with trailing numeric details stripped
    (e.g. ``"ddr error ... at 0x0bc0"`` → the generic type text)."""
    text = _WS.sub(" ", text.strip().lower())
    # Strip bracketed or hex/numeric tails that encode per-instance detail.
    text = re.sub(r"\s*\[[^\]]*\]$", "", text)
    text = re.sub(r"\s*(0x[0-9a-f]+|\d+)$", "", text)
    return text.strip()


@dataclass
class CategorizationReport:
    """Tallies from one categorization pass."""

    matched: int = 0
    unmatched: int = 0
    #: records logged FATAL/FAILURE but classified benign (fake fatals)
    demoted_fatals: int = 0
    unmatched_by_facility: dict[Facility, int] = field(default_factory=dict)

    def record_unmatched(self, facility: Facility) -> None:
        self.unmatched += 1
        self.unmatched_by_facility[facility] = (
            self.unmatched_by_facility.get(facility, 0) + 1
        )

    @property
    def total(self) -> int:
        return self.matched + self.unmatched

    @property
    def match_rate(self) -> float:
        return self.matched / self.total if self.total else 1.0


class Categorizer:
    """Hierarchical event classifier backed by an :class:`EventCatalog`.

    ``unknown`` controls what happens to records whose description matches
    no catalog type: ``"skip"`` drops them (the paper's cleaning behaviour),
    ``"error"`` raises, ``"keep"`` passes them through uncategorized.
    """

    def __init__(
        self,
        catalog: EventCatalog | None = None,
        unknown: str = "skip",
    ) -> None:
        if unknown not in ("skip", "error", "keep"):
            raise ValueError(f"unknown policy must be skip/error/keep, got {unknown!r}")
        self.catalog = catalog or default_catalog()
        self.unknown = unknown
        self._by_key: dict[tuple[Facility, str], EventType] = {}
        for t in self.catalog:
            self._by_key[(t.facility, normalize_description(t.description))] = t
        # Codes are also accepted as-is so already-categorized logs pass
        # through unchanged (idempotence).
        self._codes = {t.code for t in self.catalog}

    def classify(self, event: RASEvent) -> EventType | None:
        """Find the low-level type of a record, or None when unmatched."""
        if event.entry_data in self._codes:
            return self.catalog.get(event.entry_data)
        key = (event.facility, normalize_description(event.entry_data))
        return self._by_key.get(key)

    def is_fatal(self, event: RASEvent) -> bool:
        """Catalog-level fatality of a record (False when unmatched)."""
        etype = self.classify(event)
        return etype.fatal if etype is not None else False

    def categorize(
        self, log: EventLog, report: CategorizationReport | None = None
    ) -> EventLog:
        """Rewrite ``entry_data`` to catalog codes; apply the unknown policy."""
        out: list[RASEvent] = []
        for event in log:
            etype = self.classify(event)
            if etype is None:
                if self.unknown == "error":
                    raise ValueError(
                        f"uncategorizable event: facility={event.facility.value} "
                        f"entry_data={event.entry_data!r}"
                    )
                if report is not None:
                    report.record_unmatched(event.facility)
                if self.unknown == "keep":
                    out.append(event)
                continue
            if report is not None:
                report.matched += 1
                if event.severity.is_fatal_class and not etype.fatal:
                    report.demoted_fatals += 1
            out.append(event.with_entry_data(etype.code))
        return EventLog(out, origin=log.origin, _presorted=True)

    def fatal_codes(self) -> frozenset[str]:
        """Codes in the (cleaned) failure list — fake fatals excluded."""
        return frozenset(t.code for t in self.catalog.fatal_types())
