"""Event filtering (Section 3.2): temporal and spatial compression.

*Temporal compression at a single location*: records with identical Job ID,
Location and event identity reported within a threshold of each other are
coalesced into one entry (chain-based tupling, following Hansen & Siewiorek's
time-coalescence model: a record joins the current tuple when its gap to the
previous record of the tuple is within the threshold; the earliest record of
each tuple is kept).

*Spatial compression across locations*: records with identical event
identity and Job ID but *different* locations, close to each other within
the threshold, are reduced to the earliest report.

Event identity is the ``entry_data`` field — the free-text description in a
raw log, or the catalog code after categorization; both work.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.raslog.events import Facility, RASEvent
from repro.raslog.store import EventLog


@dataclass
class FilterStats:
    """Input/output record accounting for one compression pass."""

    threshold: float
    n_input: int = 0
    n_output: int = 0
    by_facility: dict[Facility, tuple[int, int]] = field(default_factory=dict)

    @property
    def compression_rate(self) -> float:
        """Fraction of records removed (the paper reports ≥ 98 % at 300 s)."""
        if self.n_input == 0:
            return 0.0
        return 1.0 - self.n_output / self.n_input

    @staticmethod
    def from_logs(
        threshold: float, before: EventLog, after: EventLog
    ) -> "FilterStats":
        before_counts = before.counts_by_facility()
        after_counts = after.counts_by_facility()
        return FilterStats(
            threshold=threshold,
            n_input=len(before),
            n_output=len(after),
            by_facility={
                fac: (before_counts.get(fac, 0), after_counts.get(fac, 0))
                for fac in set(before_counts) | set(after_counts)
            },
        )


def _coalesce(
    log: EventLog,
    threshold: float,
    key_fn,
) -> EventLog:
    """Keep the earliest record of every chain-tuple under ``key_fn``.

    Records sharing a key form tuples: consecutive records (in time) whose
    gap is ≤ ``threshold`` belong to the same tuple.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    if threshold == 0 or len(log) == 0:
        return log

    groups: dict[object, list[int]] = defaultdict(list)
    for i, event in enumerate(log):
        groups[key_fn(event)].append(i)

    keep = np.zeros(len(log), dtype=bool)
    times = log.timestamps
    for indices in groups.values():
        idx = np.asarray(indices)
        ts = times[idx]
        # EventLog is time-sorted, so ts is non-decreasing within a group.
        starts = np.empty(len(idx), dtype=bool)
        starts[0] = True
        if len(idx) > 1:
            np.greater(np.diff(ts), threshold, out=starts[1:])
        keep[idx[starts]] = True

    kept = tuple(e for i, e in enumerate(log.events) if keep[i])
    return EventLog(kept, origin=log.origin, _presorted=True)


def temporal_compress(
    log: EventLog, threshold: float
) -> tuple[EventLog, FilterStats]:
    """Coalesce repeated reports from the same location/job/event."""
    out = _coalesce(
        log, threshold, key_fn=lambda e: (e.location, e.job_id, e.entry_data)
    )
    return out, FilterStats.from_logs(threshold, log, out)


def spatial_compress(
    log: EventLog, threshold: float
) -> tuple[EventLog, FilterStats]:
    """Coalesce reports of the same event/job from different locations."""
    out = _coalesce(log, threshold, key_fn=lambda e: (e.job_id, e.entry_data))
    return out, FilterStats.from_logs(threshold, log, out)


def compress(
    log: EventLog, threshold: float
) -> tuple[EventLog, FilterStats]:
    """Full filter: temporal compression, then spatial compression.

    The returned stats are end-to-end (raw input vs final output).
    """
    after_temporal, _ = temporal_compress(log, threshold)
    out, _ = spatial_compress(after_temporal, threshold)
    return out, FilterStats.from_logs(threshold, log, out)


def deduplicate_exact(log: EventLog) -> EventLog:
    """Remove byte-identical records with the same timestamp.

    The logging granularity is sub-millisecond but recorded times are
    second-resolution, so raw logs contain exact-duplicate rows even before
    window-based compression (Section 3).
    """
    seen: set[tuple[float, str, int, str]] = set()
    kept: list[RASEvent] = []
    for e in log:
        sig = (e.timestamp, e.location, e.job_id, e.entry_data)
        if sig in seen:
            continue
        seen.add(sig)
        kept.append(e)
    return EventLog(kept, origin=log.origin, _presorted=True)
