"""Event filtering (Section 3.2): temporal and spatial compression.

*Temporal compression at a single location*: records with identical Job ID,
Location and event identity reported within a threshold of each other are
coalesced into one entry (chain-based tupling, following Hansen & Siewiorek's
time-coalescence model: a record joins the current tuple when its gap to the
previous record of the tuple is within the threshold; the earliest record of
each tuple is kept).

*Spatial compression across locations*: records with identical event
identity and Job ID but *different* locations, close to each other within
the threshold, are reduced to the earliest report.

Event identity is the ``entry_data`` field — the free-text description in a
raw log, or the catalog code after categorization; both work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import compress as _itcompress

import numpy as np

from repro.raslog.events import Facility
from repro.raslog.store import EventLog


@dataclass
class FilterStats:
    """Input/output record accounting for one compression pass."""

    threshold: float
    n_input: int = 0
    n_output: int = 0
    by_facility: dict[Facility, tuple[int, int]] = field(default_factory=dict)

    @property
    def compression_rate(self) -> float:
        """Fraction of records removed (the paper reports ≥ 98 % at 300 s)."""
        if self.n_input == 0:
            return 0.0
        return 1.0 - self.n_output / self.n_input

    @staticmethod
    def from_logs(
        threshold: float, before: EventLog, after: EventLog
    ) -> "FilterStats":
        before_counts = before.counts_by_facility()
        after_counts = after.counts_by_facility()
        return FilterStats(
            threshold=threshold,
            n_input=len(before),
            n_output=len(after),
            by_facility={
                fac: (before_counts.get(fac, 0), after_counts.get(fac, 0))
                for fac in set(before_counts) | set(after_counts)
            },
        )


def _factorize(values, n: int) -> tuple[np.ndarray, int]:
    """Hash-factorize a column of hashables into dense int64 codes.

    A dict build is O(n) with C-speed hashing, which beats sort-based
    ``np.unique`` on object arrays (those compare elements in Python).
    """
    table: dict[object, int] = {}
    codes = np.fromiter(
        (table.setdefault(v, len(table)) for v in values),
        dtype=np.int64,
        count=n,
    )
    return codes, max(len(table), 1)


def _group_ids(columns) -> np.ndarray:
    """Fold ``(codes, cardinality)`` columns into one dense group id.

    Rows are in the same group iff they are equal in every column.  The
    combined id is re-compressed (``np.unique`` over int64, a C-speed
    sort) after every fold, so ids stay dense and the mixed-radix
    product can never overflow int64.
    """
    columns = list(columns)
    gid, _ = columns[0]
    for codes, cardinality in columns[1:]:
        gid = gid * np.int64(cardinality) + codes
        _, gid = np.unique(gid, return_inverse=True)
    return gid


def _key_columns(log: EventLog, with_location: bool):
    n = len(log)
    columns = [
        _factorize((e.job_id for e in log), n),
        _factorize((e.entry_data for e in log), n),
    ]
    if with_location:
        columns.append(_factorize((e.location for e in log), n))
    return columns


def _select(log: EventLog, keep: np.ndarray) -> EventLog:
    if keep.all():
        return log
    kept = tuple(_itcompress(log.events, keep))
    times = log.timestamps[keep]
    times.setflags(write=False)
    return EventLog._from_parts(kept, times, log.origin)


def _coalesce(
    log: EventLog,
    threshold: float,
    with_location: bool,
) -> EventLog:
    """Keep the earliest record of every chain-tuple of a key group.

    Records sharing a key (Job ID + event identity, plus Location when
    ``with_location``) form tuples: consecutive records (in time) whose
    gap is ≤ ``threshold`` belong to the same tuple.  Fully vectorized:
    one stable argsort groups rows by key while preserving time order
    inside each group, then a tuple starts wherever the group id changes
    or the gap to the previous record exceeds the threshold.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    if threshold == 0 or len(log) == 0:
        return log

    gid = _group_ids(_key_columns(log, with_location))
    # Stable sort by group id: EventLog is time-sorted, so within each
    # group the original (time) order is preserved.
    order = np.argsort(gid, kind="stable")
    ts = log.timestamps[order]
    gid_sorted = gid[order]

    starts = np.empty(len(order), dtype=bool)
    starts[0] = True
    np.not_equal(gid_sorted[1:], gid_sorted[:-1], out=starts[1:])
    starts[1:] |= np.diff(ts) > threshold

    keep = np.zeros(len(order), dtype=bool)
    keep[order[starts]] = True
    return _select(log, keep)


def temporal_compress(
    log: EventLog, threshold: float
) -> tuple[EventLog, FilterStats]:
    """Coalesce repeated reports from the same location/job/event."""
    out = _coalesce(log, threshold, with_location=True)
    return out, FilterStats.from_logs(threshold, log, out)


def spatial_compress(
    log: EventLog, threshold: float
) -> tuple[EventLog, FilterStats]:
    """Coalesce reports of the same event/job from different locations."""
    out = _coalesce(log, threshold, with_location=False)
    return out, FilterStats.from_logs(threshold, log, out)


def compress(
    log: EventLog, threshold: float
) -> tuple[EventLog, FilterStats]:
    """Full filter: temporal compression, then spatial compression.

    The returned stats are end-to-end (raw input vs final output).
    """
    after_temporal, _ = temporal_compress(log, threshold)
    out, _ = spatial_compress(after_temporal, threshold)
    return out, FilterStats.from_logs(threshold, log, out)


def deduplicate_exact(log: EventLog) -> EventLog:
    """Remove byte-identical records with the same timestamp.

    The logging granularity is sub-millisecond but recorded times are
    second-resolution, so raw logs contain exact-duplicate rows even before
    window-based compression (Section 3).
    """
    if len(log) == 0:
        return log
    # Timestamps are float64 and sort at C speed, so np.unique is the
    # fast factorizer here (unlike the string columns).
    ts_uniques, ts_codes = np.unique(log.timestamps, return_inverse=True)
    times = (ts_codes.astype(np.int64, copy=False), max(len(ts_uniques), 1))
    gid = _group_ids([times, *_key_columns(log, with_location=True)])
    # First occurrence (lowest original index) of each signature wins,
    # exactly like the first-seen-wins set scan this replaces.
    _, first = np.unique(gid, return_index=True)
    keep = np.zeros(len(log), dtype=bool)
    keep[first] = True
    return _select(log, keep)
