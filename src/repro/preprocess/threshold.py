"""Filtering-threshold selection (Section 3.2, Table 4).

The paper picks the coalescence threshold iteratively: start small,
increase, and stop when the compression rate no longer changes
significantly; 300 s is chosen for both logs (≥ 98 % compression), since
higher values risk merging genuinely distinct events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.preprocess.filtering import compress
from repro.raslog.events import FACILITIES, Facility
from repro.raslog.store import EventLog
from repro.utils.tables import TableResult

#: The thresholds reported in Table 4 (seconds).
TABLE4_THRESHOLDS: tuple[float, ...] = (0.0, 10.0, 60.0, 120.0, 200.0, 300.0, 400.0)


@dataclass
class SweepResult:
    """Per-threshold surviving-record counts, overall and per facility."""

    thresholds: tuple[float, ...]
    totals: list[int] = field(default_factory=list)
    by_facility: dict[Facility, list[int]] = field(default_factory=dict)

    def compression_rates(self) -> list[float]:
        base = self.totals[0] if self.totals else 0
        if base == 0:
            return [0.0 for _ in self.totals]
        return [1.0 - n / base for n in self.totals]

    def as_table(self, title: str = "Events per filtering threshold") -> TableResult:
        columns = ["facility"] + [f"{int(t)}s" for t in self.thresholds]
        table = TableResult(title=title, columns=columns)
        for fac in FACILITIES:
            if fac not in self.by_facility:
                continue
            row = {"facility": fac.value}
            row.update(
                {
                    f"{int(t)}s": self.by_facility[fac][i]
                    for i, t in enumerate(self.thresholds)
                }
            )
            table.add_row(**row)
        total_row = {"facility": "TOTAL"}
        total_row.update(
            {f"{int(t)}s": self.totals[i] for i, t in enumerate(self.thresholds)}
        )
        table.add_row(**total_row)
        return table


def threshold_sweep(
    log: EventLog, thresholds: tuple[float, ...] = TABLE4_THRESHOLDS
) -> SweepResult:
    """Apply the full filter at each threshold and count survivors.

    Threshold 0 is the raw log (no compression), matching Table 4's first
    column.
    """
    if not thresholds:
        raise ValueError("need at least one threshold")
    if sorted(thresholds) != list(thresholds):
        raise ValueError("thresholds must be ascending")
    result = SweepResult(thresholds=tuple(float(t) for t in thresholds))
    facilities = sorted(log.counts_by_facility(), key=lambda f: f.value)
    for fac in facilities:
        result.by_facility[fac] = []
    for t in thresholds:
        filtered, _ = compress(log, t)
        result.totals.append(len(filtered))
        counts = filtered.counts_by_facility()
        for fac in facilities:
            result.by_facility[fac].append(counts.get(fac, 0))
    return result


def find_threshold(
    log: EventLog,
    candidates: tuple[float, ...] = TABLE4_THRESHOLDS,
    min_gain: float = 0.005,
) -> tuple[float, SweepResult]:
    """Iterative threshold search.

    Walk the ascending candidate list; stop at the first threshold whose
    *additional* compression over the previous one is below ``min_gain``
    (fraction of the raw log).  Returns the last threshold that still
    produced a significant gain, plus the full sweep for inspection.
    """
    if len(candidates) < 2:
        raise ValueError("need at least two candidate thresholds")
    sweep = threshold_sweep(log, candidates)
    base = sweep.totals[0]
    if base == 0:
        return candidates[0], sweep
    chosen = candidates[1] if len(candidates) > 1 else candidates[0]
    for i in range(1, len(candidates)):
        gain = (sweep.totals[i - 1] - sweep.totals[i]) / base
        if gain >= min_gain:
            chosen = candidates[i]
        else:
            break
    return chosen, sweep
