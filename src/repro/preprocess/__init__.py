"""Data preprocessing: event categorization and filtering (Section 3)."""

from repro.preprocess.categorizer import (
    CategorizationReport,
    Categorizer,
    normalize_description,
)
from repro.preprocess.filtering import (
    FilterStats,
    compress,
    deduplicate_exact,
    spatial_compress,
    temporal_compress,
)
from repro.preprocess.pipeline import (
    DEFAULT_THRESHOLD,
    PreprocessingPipeline,
    PreprocessResult,
)
from repro.preprocess.threshold import (
    TABLE4_THRESHOLDS,
    SweepResult,
    find_threshold,
    threshold_sweep,
)

__all__ = [
    "DEFAULT_THRESHOLD",
    "TABLE4_THRESHOLDS",
    "CategorizationReport",
    "Categorizer",
    "FilterStats",
    "PreprocessResult",
    "PreprocessingPipeline",
    "SweepResult",
    "compress",
    "deduplicate_exact",
    "find_threshold",
    "normalize_description",
    "spatial_compress",
    "temporal_compress",
    "threshold_sweep",
]
