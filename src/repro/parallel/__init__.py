"""Parallel execution substrate for rule generation."""

from repro.parallel.chunking import chunk_bounds, even_chunks
from repro.parallel.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)

__all__ = [
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "chunk_bounds",
    "even_chunks",
    "make_executor",
]
