"""Execution backends for rule generation.

The paper notes (Section 5.2.4) that rule generation "can be conducted in
parallel when the production system is in operation" — base learners are
independent of each other, so the meta-learner can train them concurrently.
These executors give that a uniform interface:

* :class:`SerialExecutor` — plain in-process mapping (default; the task
  sizes here are dominated by NumPy work, so this is often fastest);
* :class:`ProcessExecutor` — a ``concurrent.futures`` process pool for
  CPU-bound mining on large training sets;
* :class:`ThreadExecutor` — threads, useful when the mapped function
  releases the GIL (NumPy reductions) or for overlap with I/O.

Functions and arguments submitted to :class:`ProcessExecutor` must be
picklable (top-level functions, no lambdas).
"""

from __future__ import annotations

import abc
import os
import weakref
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class ExecutorBroken(RuntimeError):
    """The backing worker pool died mid-map.

    Raised in place of ``concurrent.futures.BrokenProcessPool`` (or
    ``BrokenThreadPool``) so callers can tell *infrastructure* failure —
    a worker process killed by the OOM killer, a segfaulting extension —
    apart from an exception raised by the mapped function itself (which
    propagates unchanged).  The dead pool is closed before raising; the
    executor cannot be reused.
    """


class Executor(abc.ABC):
    """Maps a function over tasks, preserving input order."""

    @abc.abstractmethod
    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every task and return results in task order."""

    def starmap(
        self, fn: Callable[..., R], task_args: Sequence[tuple]
    ) -> list[R]:
        return self.map(lambda args: fn(*args), task_args)

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run everything inline, in order."""

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        return [fn(t) for t in tasks]


class _PooledExecutor(Executor):
    """Shared lifecycle for the ``concurrent.futures``-backed executors.

    Pools are leaked when callers skip the context manager, so every
    pooled executor registers a :func:`weakref.finalize` safety net: if
    the executor is garbage-collected (or the interpreter exits) without
    :meth:`close` having been called, the pool is still shut down.  An
    explicit :meth:`close` detaches the finalizer and waits for running
    work; calling it again is a no-op.
    """

    def __init__(self, pool: ThreadPoolExecutor | ProcessPoolExecutor) -> None:
        self._pool = pool
        self._finalizer = weakref.finalize(self, pool.shutdown, wait=False)

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        if self.closed:
            # ExecutorBroken, not a bare RuntimeError: a broken pool is
            # closed by the first holder that hits it, so every *other*
            # session sharing the pool reaches this branch on its next
            # retrain.  They must get the same typed error so the
            # resilience layer's serial fallback engages — never a fresh
            # nested pool per retrain.
            raise ExecutorBroken(f"{type(self).__name__} is closed")
        from repro import faults

        try:
            plan = faults.active()
            if plan is not None:
                plan.on_executor_map(self)
            return list(self._pool.map(fn, tasks))
        except BrokenExecutor as exc:
            # The pool is unusable from here on; shut it down so worker
            # handles are reaped, then surface a typed error the
            # resilience layer can match on.
            self.close()
            raise ExecutorBroken(
                f"{type(self).__name__} worker pool broke mid-map: {exc!r}"
            ) from exc

    def close(self) -> None:
        if self._finalizer.detach() is not None:
            self._pool.shutdown(wait=True)


class ThreadExecutor(_PooledExecutor):
    """Thread-pool backend."""

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__(ThreadPoolExecutor(max_workers=max_workers))


class ProcessExecutor(_PooledExecutor):
    """Process-pool backend for CPU-bound mining.

    ``starmap`` here uses a picklable splat wrapper rather than the
    lambda-based default.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is None:
            max_workers = max(1, (os.cpu_count() or 2) - 1)
        super().__init__(ProcessPoolExecutor(max_workers=max_workers))

    def starmap(
        self, fn: Callable[..., R], task_args: Sequence[tuple]
    ) -> list[R]:
        if self.closed:
            raise ExecutorBroken(f"{type(self).__name__} is closed")
        try:
            return list(self._pool.map(_Splat(fn), task_args))
        except BrokenExecutor as exc:
            self.close()
            raise ExecutorBroken(
                f"{type(self).__name__} worker pool broke mid-map: {exc!r}"
            ) from exc


class _Splat:
    """Picklable ``args -> fn(*args)`` adapter for process pools."""

    def __init__(self, fn: Callable[..., Any]) -> None:
        self.fn = fn

    def __call__(self, args: Iterable[Any]) -> Any:
        return self.fn(*args)


def make_executor(kind: str = "serial", max_workers: int | None = None) -> Executor:
    """Factory: ``serial``, ``thread`` or ``process``."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(max_workers)
    if kind == "process":
        return ProcessExecutor(max_workers)
    raise ValueError(f"unknown executor kind {kind!r}")
