"""Work-partitioning helpers for parallel rule generation."""

from __future__ import annotations

from collections.abc import Sequence
from typing import TypeVar

T = TypeVar("T")


def even_chunks(items: Sequence[T], n_chunks: int) -> list[Sequence[T]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, near-equal parts.

    Never returns empty chunks; fewer chunks come back when there are fewer
    items than requested chunks.
    """
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    n = len(items)
    if n == 0:
        return []
    n_chunks = min(n_chunks, n)
    base, extra = divmod(n, n_chunks)
    chunks: list[Sequence[T]] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def chunk_bounds(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Index ranges ``[start, end)`` of :func:`even_chunks` partitions."""
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    if n_items == 0:
        return []
    n_chunks = min(n_chunks, n_items)
    base, extra = divmod(n_items, n_chunks)
    bounds: list[tuple[int, int]] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds
