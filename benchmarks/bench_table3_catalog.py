"""Bench T3 — regenerate Table 3 (event categories).

Exact reproduction: the hierarchical catalog must have the paper's
per-facility fatal / non-fatal low-level type counts (69 / 150 overall).
"""

from conftest import run_once

from repro.experiments import table3


def test_table3_event_categories(benchmark, show):
    table = run_once(benchmark, table3.run)

    for row in table.rows:
        assert row["fatal"] == row["paper_fatal"], row
        assert row["nonfatal"] == row["paper_nonfatal"], row
    total = table.rows[-1]
    assert total["fatal"] == 69
    assert total["nonfatal"] == 150

    show(table)
