"""Bench — fleet service throughput, 1 shard vs N shards.

Streams one synthetic multi-week trace through the online path twice:
unsharded (a single ``OnlinePredictionSession``) and location-sharded
(a ``PredictionService`` with hash routing folding the trace's locations
into N shards).  Reports events/sec for both and asserts the routing
contract: the sharded fleet ingests every event exactly once, and the
per-shard labeled series sum to the fleet total.

Wall-clock parity is the honest claim on one process: sharding here buys
stream isolation and blast-radius containment, not parallel speedup (the
shards share the executor, and matching is CPU-bound in-process).  The
per-shard timings in the attached metrics snapshot are what a deployment
would use to size a real fleet.
"""

import time

from conftest import BENCH_SEED, run_once

from repro.core.framework import FrameworkConfig
from repro.core.online import OnlinePredictionSession
from repro.preprocess.pipeline import PreprocessingPipeline
from repro.raslog.generator import GeneratorConfig, generate_log
from repro.raslog.profiles import SDSC_PROFILE
from repro.service import PredictionService

N_SHARDS = 4


def _trace():
    trace = generate_log(
        SDSC_PROFILE,
        GeneratorConfig(scale=0.5, weeks=16, seed=BENCH_SEED),
    )
    log = PreprocessingPipeline().run(trace.raw).clean
    return log.with_origin(trace.raw.origin)


def _config():
    return FrameworkConfig(initial_train_weeks=4, retrain_weeks=4)


def _stream_single(log):
    session = OnlinePredictionSession(_config(), origin=log.origin)
    start = time.perf_counter()
    for event in log:
        session.ingest(event)
    elapsed = time.perf_counter() - start
    return session.summary(), elapsed


def _stream_sharded(log, n_shards):
    service = PredictionService(_config(), shards=n_shards, origin=log.origin)
    start = time.perf_counter()
    for event in log:
        service.ingest(event)
    service.flush()
    elapsed = time.perf_counter() - start
    return service.summary(), elapsed


def test_service_throughput_1_vs_n_shards(benchmark, show):
    log = _trace()

    def run():
        single, t_single = _stream_single(log)
        fleet, t_fleet = _stream_sharded(log, N_SHARDS)
        return single, t_single, fleet, t_fleet

    single, t_single, fleet, t_fleet = run_once(benchmark, run)

    # every event lands in exactly one shard
    assert fleet.n_events == single.n_events == len(log)
    assert fleet.n_fatal == single.n_fatal
    assert 1 <= fleet.n_shards <= N_SHARDS

    eps_single = len(log) / t_single
    eps_fleet = len(log) / t_fleet
    benchmark.extra_info["events_per_sec_1_shard"] = round(eps_single, 1)
    benchmark.extra_info[f"events_per_sec_{N_SHARDS}_shards"] = round(
        eps_fleet, 1
    )
    benchmark.extra_info["n_shards"] = fleet.n_shards

    # per-shard labeled counters must sum to the fleet total
    metrics = benchmark.extra_info["metrics"]
    shard_series = [
        summary["value"]
        for name, summary in metrics.items()
        if name.startswith("service.events{")
    ]
    assert len(shard_series) == fleet.n_shards
    assert sum(shard_series) == fleet.n_events

    show(
        f"events: {len(log)}  "
        f"1 shard: {eps_single:,.0f} ev/s  "
        f"{fleet.n_shards} shards: {eps_fleet:,.0f} ev/s  "
        f"(fleet warnings: {fleet.n_warnings}, single: {single.n_warnings})"
    )
