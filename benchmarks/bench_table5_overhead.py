"""Bench T5 — regenerate Table 5 (operation overhead vs training size).

Absolute times are hardware-bound (the paper used a 1.6 GHz Pentium); the
reproduced shape: rule-generation cost grows with the training set,
association-rule mining dominates generation, and the online rule-matching
cost is trivial (the paper: < 1 minute; here: milliseconds) and roughly
independent of training size.
"""

from conftest import BENCH_SEED, run_once

from repro.experiments import table5


def test_table5_operation_overhead(benchmark, show):
    table, records = run_once(
        benchmark,
        table5.run,
        system="SDSC",
        scale=1.0,
        seed=BENCH_SEED,
        months=(3, 6, 12, 18, 24, 30),
        matching_weeks=4,
    )

    asso = [r.generation["association"] for r in records]
    # growth with training size (ignore the warmup-contaminated first row)
    assert asso[-1] > asso[1]
    events = [r.n_training_events for r in records]
    assert events == sorted(events)
    for r in records[1:]:
        # association mining dominates the other per-learner costs
        assert r.generation["association"] >= max(
            r.generation["statistical"], r.generation["distribution"]
        )
        # matching stays trivially cheap
        assert r.rule_matching < 1.0

    show(table)
