"""Bench F11 — regenerate Figure 11 (is dynamic revising necessary?).

Paper claim: the reviser improves prediction accuracy by up to ~6 % by
filtering out misleading rules that the permissive mining parameters
admit.  Reproduced shape: revised precision is at or above unrevised
precision, and the reviser does not cost meaningful recall.
"""

from conftest import BENCH_SEED, run_once

from repro.evaluation.timeline import mean_accuracy
from repro.experiments import q2_reviser


def test_fig11_reviser_effect(benchmark, show):
    table, results = run_once(
        benchmark, q2_reviser.run, system="SDSC", seed=BENCH_SEED
    )

    p_rev, r_rev = mean_accuracy(results["revised"].weekly)
    p_unrev, r_unrev = mean_accuracy(results["unrevised"].weekly)

    # the reviser buys substantial precision at a small recall cost, a net
    # win (the paper reports up to 6 % improvement on both metrics; on
    # this substrate the gain concentrates in precision)
    assert p_rev > p_unrev + 0.03
    assert r_rev >= r_unrev - 0.12

    def f1(p, r):
        return 2 * p * r / (p + r) if (p + r) else 0.0

    assert f1(p_rev, r_rev) > f1(p_unrev, r_unrev)
    # the reviser actually removed rules on this workload
    removed = sum(
        e.churn.removed_by_reviser for e in results["revised"].retrains
    )
    assert removed > 0

    show(table)
