"""Bench T4 — regenerate Table 4 (events per filtering threshold).

Shape checks against the paper: survivor counts fall monotonically with
the threshold, compression at 300 s exceeds 98 % (the paper's headline for
both logs), and the 300 → 400 s step shows the diminishing returns that
made the authors stop at 300 s.
"""

import pytest
from conftest import BENCH_SEED, run_once

from repro.experiments import table4

SCALE = 0.02


@pytest.mark.parametrize("system", ["ANL", "SDSC"])
def test_table4_filtering_sweep(benchmark, show, system):
    table, sweep = run_once(
        benchmark, table4.run, system=system, scale=SCALE, seed=BENCH_SEED
    )

    assert sweep.totals == sorted(sweep.totals, reverse=True)
    rates = sweep.compression_rates()
    idx_300 = list(sweep.thresholds).index(300.0)
    # the paper reports > 98 % on both logs; the synthetic SDSC log gives
    # sparse (lightly duplicated) events a larger share, landing ~95 %
    assert rates[idx_300] > (0.98 if system == "ANL" else 0.94)
    # diminishing returns beyond 300 s
    last_gain = (sweep.totals[idx_300] - sweep.totals[-1]) / sweep.totals[0]
    assert last_gain < 0.005

    show(table)
