"""Ablation — MinROC sweep for the reviser's rule filter.

DESIGN.md calls out the ROC-norm filter as a design choice.  Sweeping
MinROC from permissive to strict shows the trade-off the paper's 0.7
setting balances: low thresholds keep noisy rules (more recall, less
precision); very strict thresholds starve the rule set.
"""

from conftest import BENCH_SEED, run_once

from repro.core.framework import DynamicMetaLearningFramework, FrameworkConfig
from repro.evaluation.timeline import mean_accuracy
from repro.experiments.config import make_log
from repro.utils.tables import TableResult

MIN_ROCS = (0.1, 0.7, 1.2)


def _run_sweep():
    syn = make_log("SDSC", seed=BENCH_SEED, weeks=56)
    results = {}
    for min_roc in MIN_ROCS:
        config = FrameworkConfig(min_roc=min_roc)
        results[min_roc] = DynamicMetaLearningFramework(
            config, catalog=syn.catalog
        ).run(syn.clean)
    return results


def test_ablation_min_roc(benchmark, show):
    results = run_once(benchmark, _run_sweep)

    table = TableResult(
        title="Ablation: reviser MinROC sweep (SDSC, 56 weeks)",
        columns=["min_roc", "precision", "recall", "rules_kept"],
    )
    kept = {}
    stats = {}
    for min_roc, result in results.items():
        p, r = mean_accuracy(result.weekly)
        n_kept = round(
            sum(e.n_kept for e in result.retrains) / len(result.retrains)
        )
        stats[min_roc] = (p, r)
        kept[min_roc] = n_kept
        table.add_row(
            min_roc=min_roc,
            precision=round(p, 3),
            recall=round(r, 3),
            rules_kept=n_kept,
        )

    # stricter filtering keeps fewer rules
    assert kept[0.1] >= kept[0.7] >= kept[1.2]
    # the strict end loses recall relative to the paper's setting
    assert stats[1.2][1] <= stats[0.7][1] + 0.02
    # the paper's setting does not lose precision vs permissive filtering
    assert stats[0.7][0] >= stats[0.1][0] - 0.02

    show(table)
