"""Ablation — serial vs parallel rule generation.

The paper notes rule generation can run in parallel while the machine
operates.  Base learners are independent, so the meta-learner fans their
training out through an executor; this bench compares backends on a large
training set and checks they produce identical rule sets.
"""

import time

from conftest import BENCH_SEED, run_once

from repro.core.meta import MetaLearner
from repro.experiments.config import make_log
from repro.parallel.executor import SerialExecutor, ThreadExecutor
from repro.utils.tables import TableResult


def _run_backends():
    syn = make_log("SDSC", seed=BENCH_SEED, weeks=104)
    train_log = syn.clean.slice_weeks(0, 104)
    timings = {}
    outputs = {}
    for name, executor in (
        ("serial", SerialExecutor()),
        ("thread", ThreadExecutor(max_workers=3)),
    ):
        meta = MetaLearner(catalog=syn.catalog, executor=executor)
        t0 = time.perf_counter()
        outputs[name] = meta.train(train_log, 300.0)
        timings[name] = time.perf_counter() - t0
        executor.close()
    return timings, outputs


def test_ablation_parallel_rule_generation(benchmark, show):
    timings, outputs = run_once(benchmark, _run_backends)

    table = TableResult(
        title="Ablation: rule-generation executors (SDSC, 104 weeks)",
        columns=["executor", "seconds", "n_rules"],
    )
    for name, seconds in timings.items():
        table.add_row(
            executor=name,
            seconds=round(seconds, 3),
            n_rules=outputs[name].n_rules,
        )

    # identical rule sets regardless of backend
    keys = {
        name: {
            r.key
            for rules in out.rules_by_learner.values()
            for r in rules
        }
        for name, out in outputs.items()
    }
    assert keys["serial"] == keys["thread"]
    # no pathological slowdown from the parallel path
    assert timings["thread"] < 10 * max(timings["serial"], 1e-3)

    show(table)
