"""Bench F9 — regenerate Figure 9 (training-set size policies).

Paper claims: dynamic retraining beats the static policy, whose accuracy
decays monotonically; dynamic-whole and dynamic-6 mo track each other
within a small band, which is why the authors recommend retraining on the
most recent six months.  On this substrate the static decay expresses
primarily through precision (stale rules keep firing, increasingly
wrongly) — see EXPERIMENTS.md.
"""

from conftest import BENCH_SEED, run_once

from repro.evaluation.timeline import mean_accuracy, rolling_metrics, trend_slope
from repro.experiments import q2_training_size


def _f1(p, r):
    return 2 * p * r / (p + r) if (p + r) else 0.0


def test_fig9_training_size_policies(benchmark, show):
    table, results = run_once(
        benchmark, q2_training_size.run, system="SDSC", seed=BENCH_SEED
    )

    recall = {}
    late_f1 = {}
    n = len(results["static"].weekly)
    for name, result in results.items():
        _, recall[name] = mean_accuracy(result.weekly)
        lp, lr = mean_accuracy(result.weekly[n // 2 :])
        late_f1[name] = _f1(lp, lr)

    # dynamic-6mo tracks dynamic-whole within a small band overall
    assert abs(recall["dynamic-whole"] - recall["dynamic-6mo"]) < 0.1
    # on the late half — where drift has accumulated — the recommended
    # 6-month sliding window beats the never-retrained static policy
    assert late_f1["dynamic-6mo"] > late_f1["static"] + 0.03

    # static precision decays over the trace
    static_series = [
        w.precision for w in rolling_metrics(results["static"].weekly, 6)
    ]
    dyn_series = [
        w.precision for w in rolling_metrics(results["dynamic-6mo"].weekly, 6)
    ]
    assert trend_slope(static_series) < trend_slope(dyn_series) + 1e-4
    m = len(static_series)
    early = sum(static_series[: m // 4]) / (m // 4)
    late = sum(static_series[-(m // 4) :]) / (m // 4)
    assert late < early - 0.02

    show(table)
