"""Bench T2 — regenerate Table 2 (log description) from synthetic raw logs.

Paper rows: ANL 112 weeks / 5,887,771 events / 2.27 GB; SDSC 132 weeks /
517,247 events / 463 MB.  Shape checks: ANL produces an order of magnitude
more raw records than SDSC despite having a third of the racks (the
KERNEL duplication storm), and the scaled-up projections land near the
published counts.
"""

from conftest import BENCH_SEED, run_once

from repro.experiments import table2

SCALE = 0.02


def test_table2_log_description(benchmark, show):
    table = run_once(benchmark, table2.run, scale=SCALE, seed=BENCH_SEED)
    rows = {r["log"]: r for r in table.rows}

    assert rows["ANL"]["weeks"] == 112
    assert rows["SDSC"]["weeks"] == 132
    # ANL raw volume dominates SDSC (paper ratio ≈ 11.4×)
    assert rows["ANL"]["events"] > 4 * rows["SDSC"]["events"]
    # projections within 2× of the published counts
    for system in ("ANL", "SDSC"):
        projected = rows[system]["events_scaled_up"]
        published = rows[system]["paper_events"]
        assert 0.5 * published < projected < 2.0 * published

    show(table)
