"""Ablation — adaptive prediction-window tuning (Section 7 future work).

The paper's stated goal for adaptive windows: "automatically tune its size
to reduce the training cost, without sacrificing the prediction accuracy."
This bench compares the fixed 5-minute window, a fixed 2-hour window, and
the adaptive tuner: the tuner must stay within a small F1 band of the best
fixed window while choosing small windows when they suffice.
"""

from conftest import BENCH_SEED, run_once

from repro.core.adaptive import AdaptiveWindowFramework, AdaptiveWindowTuner
from repro.core.framework import DynamicMetaLearningFramework, FrameworkConfig
from repro.evaluation.timeline import mean_accuracy
from repro.experiments.config import make_log
from repro.utils.tables import TableResult


def _f1(p, r):
    return 2 * p * r / (p + r) if (p + r) else 0.0


def _run_variants():
    syn = make_log("SDSC", seed=BENCH_SEED, weeks=72)
    results = {}
    for name, window in (("fixed-5min", 300.0), ("fixed-2hr", 7200.0)):
        config = FrameworkConfig(prediction_window=window)
        results[name] = (
            DynamicMetaLearningFramework(config, catalog=syn.catalog).run(
                syn.clean
            ),
            None,
        )
    config = FrameworkConfig()
    adaptive = AdaptiveWindowFramework(
        config,
        catalog=syn.catalog,
        tuner=AdaptiveWindowTuner(candidates=(300.0, 1800.0, 7200.0)),
    )
    results["adaptive"] = (adaptive.run(syn.clean), adaptive.decisions)
    return results


def test_ablation_adaptive_window(benchmark, show):
    results = run_once(benchmark, _run_variants)

    table = TableResult(
        title="Ablation: adaptive prediction-window tuning (SDSC, 72 weeks)",
        columns=["variant", "precision", "recall", "f1", "windows_chosen"],
    )
    f1s = {}
    for name, (result, decisions) in results.items():
        p, r = mean_accuracy(result.weekly)
        f1s[name] = _f1(p, r)
        chosen = (
            "-"
            if decisions is None
            else "/".join(f"{d.chosen / 60:.0f}m" for d in decisions)
        )
        table.add_row(
            variant=name,
            precision=round(p, 3),
            recall=round(r, 3),
            f1=round(f1s[name], 3),
            windows_chosen=chosen,
        )

    # the tuner must not sacrifice accuracy relative to the best fixed size
    assert f1s["adaptive"] > max(f1s["fixed-5min"], f1s["fixed-2hr"]) - 0.08
    # and it must actually exercise the tuning machinery
    decisions = results["adaptive"][1]
    assert decisions and all(
        d.chosen in (300.0, 1800.0, 7200.0) for d in decisions
    )

    show(table)
