"""Bench F8 — regenerate Figure 8 (Venn coverage of the base learners).

The paper's SDSC weeks 44–48: association 23.7 %, statistical 37.2 %,
probability distribution 56.4 % of 156 fatal events, 67 captured by more
than one learner, and none of the learners captures everything.
Reproduced shape: the same coverage ordering, substantial multi-learner
overlap, and a non-empty uncaptured remainder (Observation #1).
"""

from conftest import BENCH_SEED, run_once

from repro.experiments import figure8


def test_fig8_venn_coverage(benchmark, show):
    table, venn = run_once(
        benchmark, figure8.run, system="SDSC", seed=BENCH_SEED, span=(44, 48)
    )

    cov = {name: venn.coverage_fraction(name) for name in venn.names}
    # the paper's coverage ordering: distribution > statistical >
    # association (their shares: 56.4 % / 37.2 % / 23.7 %; this substrate
    # gives the association learner a smaller slice — see EXPERIMENTS.md)
    assert cov["distribution"] >= cov["statistical"] >= cov["association"]
    assert cov["association"] > 0.005
    assert 0.05 < cov["statistical"] < 0.9
    assert 0.25 < cov["distribution"] < 0.95
    # learners overlap but none is universal (Observation #1)
    assert venn.multi_captured > 0
    assert venn.uncaptured > 0

    show(table)
