"""Bench F5 — regenerate Figure 5 (inter-arrival CDFs and fitted models).

The paper fits Weibull / exponential / log-normal by MLE and finds a
heavy-tailed (shape < 1) distribution describes the failure inter-arrival
times (SDSC example shape ≈ 0.508).  Checks: the Weibull fit over the full
gap mixture has shape < 1, the exponential is never the best fit (the data
is far from memoryless), and the best fit tracks the empirical CDF at the
reference points.
"""

import pytest
from conftest import BENCH_SEED, run_once

from repro.experiments import figure5


@pytest.mark.parametrize("system", ["ANL", "SDSC"])
def test_fig5_interarrival_fits(benchmark, show, system):
    fit_table, cdf_table = run_once(
        benchmark, figure5.run, system=system, seed=BENCH_SEED
    )

    by_family = {r["family"]: r for r in fit_table.rows}
    weibull_shape = by_family["weibull"]["params"][0]
    assert weibull_shape < 1.0  # clustered failures, as in the paper
    assert not by_family["exponential"]["best"]

    for row in cdf_table.rows:
        assert abs(row["empirical"] - row["fitted_best"]) < 0.25

    show(fit_table, cdf_table)
