"""Bench F13 — regenerate Figure 13 (prediction-window sensitivity).

Paper claims: the larger the prediction window, the higher the recall
(up to ≈ 0.82 at two hours) and the lower the precision; the precision
spread across windows stays within ~0.25 and recall within ~0.15, and
both metrics stay above ≈ 0.55 in most settings.
"""

from conftest import BENCH_SEED, run_once

from repro.evaluation.timeline import trend_slope
from repro.experiments import q3_window


def test_fig13_prediction_window(benchmark, show):
    table, _ = run_once(
        benchmark, q3_window.run, system="SDSC", seed=BENCH_SEED
    )

    recalls = table.column("recall")
    precisions = table.column("precision")

    # recall rises with the window (the paper's headline sensitivity)
    assert recalls[-1] > recalls[0] + 0.03
    assert trend_slope(recalls) > 0
    # the paper's recall reaches 0.82 at the two-hour window; this
    # substrate peaks lower (see EXPERIMENTS.md) but well above the
    # usefulness bar for runtime fault tolerance (~0.3 per the authors'
    # prior work)
    assert recalls[-1] > 0.55
    # precision spread bounded (paper: < 0.25).  NOTE: the paper reports
    # precision *decreasing* with the window; under this harness's
    # horizon-credit matching, larger windows also make each warning more
    # likely to be credited, so precision stays flat instead of falling —
    # see EXPERIMENTS.md for the accounting discussion.
    assert max(precisions) - min(precisions) < 0.25
    assert all(p > 0.45 for p in precisions)
    assert all(r > 0.4 for r in recalls)

    show(table)
