"""Ablation — mixture-of-experts vs union-of-experts combination.

DESIGN.md calls out the ensemble policy as a design choice: the paper's
mixture-of-experts consults one expert per instance (association on
non-fatal events, statistical on fatal events, distribution as fallback),
whereas a union policy lets every expert fire.  The union necessarily
emits at least as many warnings; the mixture trades a little recall for
fewer redundant alarms.
"""

from conftest import BENCH_SEED, run_once

from repro.core.framework import DynamicMetaLearningFramework, FrameworkConfig
from repro.evaluation.timeline import mean_accuracy
from repro.experiments.config import make_log
from repro.utils.tables import TableResult


def _run_both():
    syn = make_log("SDSC", seed=BENCH_SEED, weeks=60)
    results = {}
    for policy in ("experts", "union"):
        config = FrameworkConfig(ensemble=policy)
        results[policy] = DynamicMetaLearningFramework(
            config, catalog=syn.catalog
        ).run(syn.clean)
    return results


def test_ablation_ensemble_policy(benchmark, show):
    results = run_once(benchmark, _run_both)

    table = TableResult(
        title="Ablation: expert-combination policy (SDSC, 60 weeks)",
        columns=["policy", "precision", "recall", "n_warnings"],
    )
    stats = {}
    for policy, result in results.items():
        p, r = mean_accuracy(result.weekly)
        stats[policy] = (p, r, len(result.warnings))
        table.add_row(
            policy=policy,
            precision=round(p, 3),
            recall=round(r, 3),
            n_warnings=len(result.warnings),
        )

    # the union fires at least as often and never recalls less
    assert stats["union"][2] >= stats["experts"][2]
    assert stats["union"][1] >= stats["experts"][1] - 0.02
    # both remain useful predictors
    assert stats["experts"][0] > 0.5 and stats["union"][0] > 0.4

    show(table)
