"""Bench F12 — regenerate Figure 12 (number of rules changed).

Paper claims: rules churn constantly (change ratio 44 %–212 % per
retraining for most rounds); the repository accumulates rules over the
first year; the reviser's removals are non-trivial; and the SDSC
reconfiguration around week 60–64 triggers an outsized spike of
additions/removals.
"""

from conftest import BENCH_SEED, run_once

from repro.experiments import q2_rule_churn


def test_fig12_rule_churn(benchmark, show):
    table, result = run_once(
        benchmark, q2_rule_churn.run, system="SDSC", seed=BENCH_SEED
    )
    records = result.churn.records

    # steady churn after the initial training round
    steady = records[2:]
    assert all(r.added + r.removed_by_meta + r.removed_by_reviser > 0 for r in steady)
    ratios = [r.change_ratio for r in steady if r.unchanged]
    assert ratios and max(ratios) > 0.4

    # the reviser's removals are non-trivial overall
    assert sum(r.removed_by_reviser for r in steady) > 10

    # rule accumulation: the repository grows past its initial size at
    # some point of the trace (the paper: > 100 rules within a year)
    assert max(r.total_active for r in records) > records[0].total_active
    assert max(r.total_active for r in records) > 100

    # reconfiguration churn: as post-reconfiguration data fills the
    # six-month training window (weeks ~62-90), rule movement exceeds the
    # steady-state median (the paper saw 57 added / 148 removed at the
    # week-64 retraining)
    def churn_of(r):
        return r.added + r.removed_by_meta

    spike = max(churn_of(r) for r in records if 62 <= r.week <= 90)
    normal = sorted(churn_of(r) for r in steady)[len(steady) // 2]
    assert spike > normal

    show(table)
