"""Bench F10 — regenerate Figure 10 (how often to trigger relearning).

Paper claims: accuracy is broadly similar for WR ∈ {2, 4, 8} weeks (the
spread is ≤ ~0.06, with more frequent retraining slightly ahead), and the
SDSC reconfiguration around week 60–64 produces a visible dip that heals
after a few retrainings.
"""

from conftest import BENCH_SEED, run_once

from repro.evaluation.timeline import mean_accuracy, rolling_metrics
from repro.experiments import q2_retrain_period


def test_fig10_retrain_period(benchmark, show):
    table, results = run_once(
        benchmark, q2_retrain_period.run, system="SDSC", seed=BENCH_SEED
    )

    recall = {wr: mean_accuracy(r.weekly)[1] for wr, r in results.items()}
    precision = {wr: mean_accuracy(r.weekly)[0] for wr, r in results.items()}
    # broadly similar across retraining periods
    assert max(recall.values()) - min(recall.values()) < 0.12
    assert max(precision.values()) - min(precision.values()) < 0.12
    # schedule honoured: WR=2 retrains ~4x as often as WR=8
    n2 = len(results[2].retrains)
    n8 = len(results[8].retrains)
    assert n2 > 2.5 * n8

    # reconfiguration dip (the paper: both metrics drop > 10 % around
    # week 64, healing after a few retrainings).  Which metric takes the
    # hit depends on how the process jumps — a rate drop starves recall, a
    # burst-structure change floods false alarms — so require a clear
    # dip-and-recovery in at least one metric.
    smoothed = rolling_metrics(results[4].weekly, 4)

    def band(w0, w1, metric):
        pts = [getattr(m, metric) for m in smoothed if w0 <= m.week < w1]
        return sum(pts) / len(pts)

    dipped = []
    for metric in ("precision", "recall"):
        before = band(46, 60, metric)
        during = band(62, 72, metric)
        after = band(84, 110, metric)
        if during < before - 0.08 and after > during + 0.05:
            dipped.append(metric)
    assert dipped, "no reconfiguration dip-and-recovery in either metric"

    show(table)
