"""Bench F7 — regenerate Figure 7 (meta-learning vs base methods).

Paper claims reproduced as shape checks: the static meta-learner's recall
substantially exceeds every individual base learner (the paper reports up
to ~3× improvement); the association learner has the worst recall (most
failures lack precursors); the statistical learner's precision is the
strongest of the base methods; and every static method's accuracy decays
over the test horizon.
"""

from conftest import BENCH_SEED, run_once

from repro.evaluation.timeline import mean_accuracy
from repro.experiments import q1_meta


def test_fig7_meta_vs_base(benchmark, show):
    table, results = run_once(
        benchmark, q1_meta.run, system="SDSC", seed=BENCH_SEED
    )

    precision = {}
    recall = {}
    for method, result in results.items():
        precision[method], recall[method] = mean_accuracy(result.weekly)

    # meta-learning boosts recall over every base learner
    base = ("association", "statistical", "distribution")
    assert recall["meta"] > max(recall[m] for m in base)
    assert recall["meta"] > 1.5 * recall["association"]
    # association worst at recall; statistical strongest base precision
    assert recall["association"] <= min(recall.values()) + 0.05
    assert precision["statistical"] >= max(precision[m] for m in base) - 0.05

    # static rules go stale over time.  Which metric takes the hit
    # depends on how the regime drifts — stale rules either keep firing
    # wrongly (precision erodes) or stop matching (recall erodes); the
    # paper's figures show both sliding.  Require a material decline in
    # at least one metric between the first and last quarter.
    from repro.evaluation.timeline import rolling_metrics

    smoothed = rolling_metrics(results["meta"].weekly, 6)
    n = len(smoothed)

    def quarter_mean(metric, quarter):
        seg = smoothed[quarter * n // 4 : (quarter + 1) * n // 4]
        return sum(getattr(w, metric) for w in seg) / len(seg)

    decayed = [
        metric
        for metric in ("precision", "recall")
        if quarter_mean(metric, 3) < quarter_mean(metric, 0) - 0.03
    ]
    assert decayed, "static meta-learner showed no decay in either metric"

    show(table)


def test_fig7_relations_hold_on_anl(benchmark, show):
    """The paper evaluates Figure 7 on both machines; the ANL system has a
    far denser non-fatal background (KERNEL error checking), which makes
    stale association rules decay especially hard — the base-learner
    ordering must still hold."""
    table, results = run_once(
        benchmark, q1_meta.run, system="ANL", seed=BENCH_SEED
    )
    precision = {}
    recall = {}
    for method, result in results.items():
        precision[method], recall[method] = mean_accuracy(result.weekly)

    base = ("association", "statistical", "distribution")
    assert recall["meta"] > max(recall[m] for m in base)
    assert recall["association"] <= min(recall.values()) + 0.05
    assert precision["statistical"] >= max(precision[m] for m in base) - 0.05

    show(table)
