"""Bench F4 — regenerate Figure 4 (fatal events per day).

The paper's observation: a significant number of failures happen in close
proximity.  Checks: daily counts are strongly over-dispersed relative to
a Poisson process, and a large share of inter-failure gaps fall within the
prediction window.
"""

import pytest
from conftest import BENCH_SEED, run_once

from repro.experiments import figure4


@pytest.mark.parametrize("system", ["ANL", "SDSC"])
def test_fig4_daily_fatal_counts(benchmark, show, system):
    table, daily = run_once(
        benchmark, figure4.run, system=system, seed=BENCH_SEED
    )
    stats = {r["statistic"]: r["value"] for r in table.rows}

    assert stats["index_of_dispersion"] > 2.0  # Poisson would be ≈ 1
    assert stats["frac_gaps_<=300s"] > 0.3
    assert stats["max_per_day"] > 3 * stats["mean_per_day"]
    assert len(daily) == stats["days"]

    show(table)
