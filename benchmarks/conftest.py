"""Benchmark harness conventions.

Each bench module regenerates one paper table/figure (see the DESIGN.md
experiment index): it runs the experiment driver once under
``benchmark.pedantic`` (these are multi-second end-to-end experiments, not
micro-benchmarks), asserts the *shape* claims the paper makes, and prints
the regenerated rows so they can be eyeballed against the paper.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

#: One shared seed so all figures describe the same pair of traces.
BENCH_SEED = 2008


@pytest.fixture
def show():
    """Print a TableResult (or text) past pytest's capture."""

    def _show(*tables) -> None:
        import sys

        for table in tables:
            text = table if isinstance(table, str) else table.render()
            sys.stdout.write("\n" + text + "\n")

    return _show


def run_once(benchmark, fn, *args, **kwargs):
    """Time one end-to-end run of an experiment driver.

    The run executes under a fresh :class:`repro.observe.MetricsRegistry`,
    and its snapshot — per-stage spans (preprocess, per-learner training,
    revision, predictor matching) plus throughput counters — is attached
    to the benchmark's ``extra_info``, so ``--benchmark-json`` artifacts
    carry the per-stage breakdown alongside the wall-clock total.
    """
    from repro.observe import MetricsRegistry, use_registry

    registry = MetricsRegistry()

    def instrumented(*a, **k):
        with use_registry(registry):
            return fn(*a, **k)

    result = benchmark.pedantic(
        instrumented, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
    benchmark.extra_info["metrics"] = registry.snapshot()
    return result
