"""Benchmark harness conventions.

Each bench module regenerates one paper table/figure (see the DESIGN.md
experiment index): it runs the experiment driver once under
``benchmark.pedantic`` (these are multi-second end-to-end experiments, not
micro-benchmarks), asserts the *shape* claims the paper makes, and prints
the regenerated rows so they can be eyeballed against the paper.

Run with::

    pytest benchmarks/ --benchmark-only

Every bench additionally routes through :mod:`repro.perf`: a teardown
hook appends the run (wall-clock plus every numeric ``extra_info``
scalar) to ``BENCH_<topic>.json`` at the repo root, topic = the module
name minus its ``bench_`` prefix.  That file is the run-over-run perf
trajectory gated by ``scripts/check_perf_regression.py``.  Point
``REPRO_BENCH_DIR`` somewhere else to redirect the artifacts, or set it
empty to disable recording.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: One shared seed so all figures describe the same pair of traces.
BENCH_SEED = 2008


@pytest.fixture
def show():
    """Print a TableResult (or text) past pytest's capture."""

    def _show(*tables) -> None:
        import sys

        for table in tables:
            text = table if isinstance(table, str) else table.render()
            sys.stdout.write("\n" + text + "\n")

    return _show


def run_once(benchmark, fn, *args, **kwargs):
    """Time one end-to-end run of an experiment driver.

    The run executes under a fresh :class:`repro.observe.MetricsRegistry`,
    and its snapshot — per-stage spans (preprocess, per-learner training,
    revision, predictor matching) plus throughput counters — is attached
    to the benchmark's ``extra_info``, so ``--benchmark-json`` artifacts
    carry the per-stage breakdown alongside the wall-clock total.
    """
    from repro.observe import MetricsRegistry, use_registry

    registry = MetricsRegistry()

    def instrumented(*a, **k):
        with use_registry(registry):
            return fn(*a, **k)

    result = benchmark.pedantic(
        instrumented, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
    benchmark.extra_info["metrics"] = registry.snapshot()
    return result


def _bench_topic(item: pytest.Item) -> str:
    stem = Path(str(item.fspath)).stem
    return stem.removeprefix("bench_")


def pytest_runtest_teardown(item: pytest.Item, nextitem) -> None:
    """Append each bench run to its BENCH_<topic>.json trajectory."""
    fixture = getattr(item, "funcargs", {}).get("benchmark")
    if fixture is None:
        return
    out_dir = os.environ.get(
        "REPRO_BENCH_DIR", str(Path(__file__).resolve().parent.parent)
    )
    if not out_dir:
        return
    try:
        wall_seconds = fixture.stats.stats.mean
    except AttributeError:
        return  # benchmark never ran (skipped / collection error)

    from repro.perf.harness import Metric, record_run

    metrics = {"wall_seconds": Metric(wall_seconds, "s")}
    for name, value in fixture.extra_info.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue  # the registry snapshot dict and other non-scalars
        higher_is_better = "per_sec" in name or name.endswith("_rate")
        metrics[name] = Metric(
            float(value),
            "value/s" if higher_is_better else "value",
            higher_is_better,
        )
    record_run(
        _bench_topic(item),
        metrics,
        params={"source": "pytest-benchmark", "test": item.name},
        directory=out_dir,
    )
