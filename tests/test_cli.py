"""End-to-end tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def raw_log(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "raw.log"
    rc = main(
        [
            "generate",
            "--system",
            "SDSC",
            "--scale",
            "0.2",
            "--weeks",
            "12",
            "--seed",
            "4",
            "--output",
            str(path),
        ]
    )
    assert rc == 0
    return path


@pytest.fixture(scope="module")
def clean_log(raw_log, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "clean.log"
    rc = main(["preprocess", str(raw_log), "--output", str(path)])
    assert rc == 0
    return path


class TestGenerate:
    def test_writes_loghub_format(self, raw_log):
        lines = raw_log.read_text().splitlines()
        assert len(lines) > 100
        fields = lines[0].split()
        assert fields[6] == "RAS"

    def test_clean_flag(self, tmp_path, capsys):
        path = tmp_path / "clean_gen.log"
        rc = main(
            [
                "generate", "--system", "ANL", "--scale", "0.1",
                "--weeks", "4", "--clean", "--output", str(path),
            ]
        )
        assert rc == 0
        assert "clean (categorized)" in capsys.readouterr().out
        assert path.exists()


class TestPreprocess:
    def test_compresses(self, raw_log, clean_log):
        n_raw = len(raw_log.read_text().splitlines())
        n_clean = len(clean_log.read_text().splitlines())
        assert 0 < n_clean < n_raw / 5

    def test_reports_stats(self, raw_log, tmp_path, capsys):
        out = tmp_path / "c.log"
        main(["preprocess", str(raw_log), "--output", str(out)])
        text = capsys.readouterr().out
        assert "compression" in text
        assert "0 skipped" in text


class TestTrainPredict:
    def test_train_writes_rule_json(self, clean_log, tmp_path):
        rules = tmp_path / "rules.json"
        rc = main(["train", str(clean_log), "--output", str(rules)])
        assert rc == 0
        payload = json.loads(rules.read_text())
        assert payload["format_version"] == 1
        assert payload["n_rules"] == len(payload["records"])

    def test_predict_consumes_rules(self, clean_log, tmp_path, capsys):
        rules = tmp_path / "rules.json"
        main(["train", str(clean_log), "--output", str(rules)])
        rc = main(
            ["predict", str(clean_log), "--rules", str(rules), "--verbose"]
        )
        assert rc == 0
        assert "warnings" in capsys.readouterr().out

    def test_train_no_reviser_keeps_all(self, clean_log, tmp_path, capsys):
        with_r = tmp_path / "with.json"
        without = tmp_path / "without.json"
        main(["train", str(clean_log), "--output", str(with_r)])
        main(["train", str(clean_log), "--no-reviser", "--output", str(without)])
        n_with = json.loads(with_r.read_text())["n_rules"]
        n_without = json.loads(without.read_text())["n_rules"]
        assert n_without >= n_with


class TestRun:
    def test_full_loop(self, tmp_path, capsys):
        log = tmp_path / "run.log"
        main(
            [
                "generate", "--system", "SDSC", "--scale", "0.5",
                "--weeks", "20", "--seed", "7", "--clean",
                "--output", str(log),
            ]
        )
        rc = main(
            [
                "run", str(log), "--initial-weeks", "12",
                "--retrain-weeks", "4",
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "precision=" in text
        assert "weekly accuracy" in text


class TestSharding:
    def test_sharded_run_reports_per_shard(self, clean_log, capsys):
        rc = main(
            [
                "run", str(clean_log), "--shards", "2",
                "--initial-weeks", "2", "--retrain-weeks", "2",
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "across 2 shard(s)" in text
        assert "shard shard-000:" in text
        assert "shard shard-001:" in text

    def test_shard_by_location_spawns_per_location_shards(
        self, clean_log, capsys
    ):
        rc = main(
            [
                "run", str(clean_log), "--shard-by", "location",
                "--initial-weeks", "2", "--retrain-weeks", "2",
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "shard(s)" in text
        assert "shard R" in text  # location-keyed shard lines

    def test_fleet_run_then_recover_matches(self, clean_log, tmp_path, capsys):
        fleet = tmp_path / "fleet"
        args = [
            str(clean_log), "--shards", "2", "--fleet-dir", str(fleet),
            "--initial-weeks", "2", "--retrain-weeks", "2",
            "--journal-fsync", "never",
        ]
        rc = main(["run", *args, "--checkpoint-every", "50"])
        assert rc == 0
        first = capsys.readouterr().out
        assert (fleet / "manifest.json").exists()

        rc = main(["recover", *args])
        assert rc == 0
        captured = capsys.readouterr()
        assert "recovered fleet" in captured.err
        # nothing new to stream: the recovered fleet reports the same run
        assert captured.out == first

    def test_sharded_metrics_emits_labeled_series(self, clean_log, capsys):
        rc = main(
            [
                "metrics", str(clean_log), "--shards", "2",
                "--initial-weeks", "2", "--retrain-weeks", "2",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert 'service.events{shard="shard-000"}' in payload
        assert payload['service.events{shard="shard-000"}']["labels"] == {
            "shard": "shard-000"
        }
        assert list(payload) == sorted(payload)

    def test_sharding_conflicts_with_single_session_flags(
        self, clean_log, tmp_path, capsys
    ):
        with pytest.raises(SystemExit):
            main(
                [
                    "run", str(clean_log), "--shards", "2",
                    "--journal", str(tmp_path / "j"),
                ]
            )
        assert "cannot be combined" in capsys.readouterr().err

    def test_recover_requires_fleet_or_checkpoint_journal(
        self, clean_log, capsys
    ):
        with pytest.raises(SystemExit):
            main(["recover", str(clean_log)])
        assert "--fleet-dir" in capsys.readouterr().err

    def test_checkpoint_every_accepts_fleet_dir(self, clean_log, capsys):
        with pytest.raises(SystemExit):
            main(["run", str(clean_log), "--checkpoint-every", "10"])
        assert "--checkpoint-every requires" in capsys.readouterr().err


class TestMetrics:
    def test_emits_per_stage_breakdown(self, clean_log, capsys):
        rc = main(
            [
                "metrics", str(clean_log),
                "--initial-weeks", "6", "--retrain-weeks", "4",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        # Per-stage spans from the observe registry.
        assert payload["preprocess.run"]["count"] == 1
        assert payload["meta.train"]["count"] >= 1
        assert payload["reviser.revise"]["count"] >= 1
        assert payload["online.retrain"]["count"] >= 1
        assert payload["predictor.feed"]["count"] > 0
        # Per-learner training breakdown.
        for learner in ("association", "statistical", "distribution"):
            assert payload[f"meta.train.{learner}"]["count"] >= 1
        # Throughput counters.
        assert payload["online.events"]["value"] > 0
        assert payload["preprocess.events_in"]["value"] >= (
            payload["preprocess.events_out"]["value"]
        )

    def test_writes_output_file(self, clean_log, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        rc = main(
            [
                "metrics", str(clean_log),
                "--initial-weeks", "6", "--retrain-weeks", "4",
                "--output", str(out),
            ]
        )
        assert rc == 0
        payload = json.loads(out.read_text())
        assert "meta.train" in payload
        assert "wrote" in capsys.readouterr().out


class TestExperiment:
    def test_known_driver(self, capsys):
        rc = main(["experiment", "table3"])
        assert rc == 0
        assert "Table 3" in capsys.readouterr().out

    def test_unknown_driver(self, capsys):
        rc = main(["experiment", "figure99"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestStrictParsing:
    @pytest.fixture(scope="class")
    def dirty_log(self, clean_log, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "dirty.log"
        lines = clean_log.read_text().splitlines()
        lines.insert(len(lines) // 2, "\x00\x01 not a log line")
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_lenient_run_surfaces_skip_report(self, dirty_log, capsys):
        rc = main(
            ["run", str(dirty_log), "--initial-weeks", "4",
             "--retrain-weeks", "4"]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "skipped 1 malformed line" in err

    def test_strict_run_exits_nonzero(self, dirty_log, capsys):
        rc = main(
            ["run", str(dirty_log), "--strict", "--initial-weeks", "4",
             "--retrain-weeks", "4"]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_strict_metrics_exits_nonzero(self, dirty_log, capsys):
        rc = main(["metrics", str(dirty_log), "--strict"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestCheckpointResume:
    def test_checkpoint_then_resume_completes_run(self, tmp_path, capsys):
        log = tmp_path / "ckpt_run.log"
        main(
            [
                "generate", "--system", "SDSC", "--scale", "0.3",
                "--weeks", "12", "--seed", "9", "--clean",
                "--output", str(log),
            ]
        )
        capsys.readouterr()  # discard the generate banner
        ckpt = tmp_path / "session.ckpt"
        rc = main(
            [
                "run", str(log), "--initial-weeks", "4",
                "--retrain-weeks", "4", "--checkpoint", str(ckpt),
                "--checkpoint-every", "500",
            ]
        )
        assert rc == 0
        assert ckpt.exists()
        first = capsys.readouterr().out
        assert "streamed" in first

        # resuming from the final checkpoint is a no-op replay: same totals
        rc = main(
            [
                "run", str(log), "--initial-weeks", "4",
                "--retrain-weeks", "4", "--resume", str(ckpt),
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "resumed from" in captured.err
        assert captured.out == first

    def test_checkpoint_every_requires_checkpoint(self, clean_log, capsys):
        with pytest.raises(SystemExit):
            main(["run", str(clean_log), "--checkpoint-every", "100"])

    @pytest.mark.parametrize("bad", ["0", "-5", "many"])
    def test_nonpositive_checkpoint_every_rejected(self, clean_log, bad):
        """Nonsense checkpoint schedules exit 2, never stream."""
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["run", str(clean_log), "--checkpoint", "s.ckpt",
                 "--checkpoint-every", bad]
            )
        assert excinfo.value.code == 2

    @pytest.mark.parametrize("bad", ["0", "-1", "sometimes", "1.5"])
    def test_invalid_journal_fsync_rejected(self, clean_log, bad):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["run", str(clean_log), "--journal", "wal",
                 "--journal-fsync", bad]
            )
        assert excinfo.value.code == 2

    def test_journal_run_then_recover_matches(self, tmp_path, capsys):
        """An uninterrupted journaled run and a `repro recover` over its
        leftovers report identical totals."""
        log = tmp_path / "wal_run.log"
        main(
            [
                "generate", "--system", "SDSC", "--scale", "0.3",
                "--weeks", "12", "--seed", "11", "--clean",
                "--output", str(log),
            ]
        )
        capsys.readouterr()
        ckpt = tmp_path / "session.ckpt"
        wal = tmp_path / "wal"
        rc = main(
            [
                "run", str(log), "--initial-weeks", "4",
                "--retrain-weeks", "4", "--checkpoint", str(ckpt),
                "--checkpoint-every", "500", "--journal", str(wal),
                "--journal-fsync", "never",
            ]
        )
        assert rc == 0
        first = capsys.readouterr().out
        assert "streamed" in first
        assert any(wal.iterdir())  # segments were written

        rc = main(
            [
                "recover", str(log), "--initial-weeks", "4",
                "--retrain-weeks", "4", "--checkpoint", str(ckpt),
                "--journal", str(wal),
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "recovered from" in captured.err
        assert captured.out == first

    def test_recover_without_checkpoint_file_replays_journal(
        self, tmp_path, capsys
    ):
        """A crash before the first checkpoint leaves only the journal;
        recover starts fresh and replays the whole thing."""
        log = tmp_path / "wal_run.log"
        main(
            [
                "generate", "--system", "SDSC", "--scale", "0.2",
                "--weeks", "10", "--seed", "13", "--clean",
                "--output", str(log),
            ]
        )
        capsys.readouterr()
        wal = tmp_path / "wal"
        rc = main(
            [
                "run", str(log), "--initial-weeks", "4",
                "--retrain-weeks", "4", "--journal", str(wal),
                "--journal-fsync", "never",
            ]
        )
        assert rc == 0
        first = capsys.readouterr().out
        rc = main(
            [
                "recover", str(log), "--initial-weeks", "4",
                "--retrain-weeks", "4",
                "--checkpoint", str(tmp_path / "never-written.ckpt"),
                "--journal", str(wal),
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "recovered from" in captured.err
        assert captured.out == first

    def test_resume_missing_checkpoint_is_clean_error(
        self, clean_log, tmp_path, capsys
    ):
        rc = main(
            ["run", str(clean_log), "--resume", str(tmp_path / "absent.ckpt")]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_resume_corrupt_checkpoint_is_clean_error(
        self, clean_log, tmp_path, capsys
    ):
        bad = tmp_path / "torn.ckpt"
        bad.write_text('{"format": "repro-session-ch')
        rc = main(["run", str(clean_log), "--resume", str(bad)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
