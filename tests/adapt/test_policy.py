"""Unit tests for the adaptive retrain policy and the drift monitor."""

from __future__ import annotations

import pytest

from repro import observe
from repro.adapt.policy import (
    CAUSE_INITIAL,
    CAUSE_MAX_INTERVAL,
    AdaptiveRetrainPolicy,
    DriftMonitor,
)
from repro.alerts import FailureWarning
from repro.core.framework import FrameworkConfig

QUIET = {"event_mix": 0.0, "interarrival": 0.0, "rule_hit_rate": 0.0}


def policy(**overrides):
    kwargs = dict(
        thresholds={"event_mix": 0.4, "interarrival": 0.4, "rule_hit_rate": 0.6},
        cooldown_weeks=2,
        max_interval_weeks=8,
        hysteresis=0.6,
    )
    kwargs.update(overrides)
    return AdaptiveRetrainPolicy(**kwargs)


class TestPolicyValidation:
    def test_needs_thresholds(self):
        with pytest.raises(ValueError, match="at least one"):
            AdaptiveRetrainPolicy(thresholds={})

    def test_threshold_bounds(self):
        with pytest.raises(ValueError, match="threshold"):
            policy(thresholds={"event_mix": 0.0})
        with pytest.raises(ValueError, match="threshold"):
            policy(thresholds={"event_mix": 1.5})

    def test_cooldown_non_negative(self):
        with pytest.raises(ValueError, match="cooldown_weeks"):
            policy(cooldown_weeks=-1)

    def test_max_interval_exceeds_cooldown(self):
        with pytest.raises(ValueError, match="must exceed"):
            policy(cooldown_weeks=4, max_interval_weeks=4)

    def test_hysteresis_bounds(self):
        with pytest.raises(ValueError, match="hysteresis"):
            policy(hysteresis=0.0)


class TestPolicyDecisions:
    def test_first_decision_is_initial_training(self):
        p = policy()
        decision = p.decide(2, QUIET)
        assert decision.retrain and decision.cause == CAUSE_INITIAL
        assert p.trigger_log == [(2, CAUSE_INITIAL)]

    def test_quiet_weeks_skip(self):
        p = policy()
        p.retrained(2)
        for week in range(3, 8):
            assert not p.decide(week, QUIET).retrain
        assert p.n_skipped == 5

    def test_drift_over_threshold_triggers(self):
        p = policy()
        p.retrained(2)
        decision = p.decide(5, {**QUIET, "event_mix": 0.5})
        assert decision.retrain and decision.cause == "event_mix"

    def test_cooldown_suppresses_drift(self):
        p = policy(cooldown_weeks=3)
        p.retrained(4)
        hot = {**QUIET, "event_mix": 0.9}
        assert not p.decide(5, hot).retrain
        assert not p.decide(6, hot).retrain
        assert p.decide(7, hot).retrain

    def test_blames_detector_furthest_over_threshold(self):
        p = policy()
        p.retrained(0)
        # rule_hit_rate is 1.5x its threshold, event_mix only 1.25x
        decision = p.decide(4, {"event_mix": 0.5, "rule_hit_rate": 0.9})
        assert decision.cause == "rule_hit_rate"

    def test_hysteresis_prevents_thrash(self):
        """A detector hovering at its threshold fires once, then stays
        silent until its score falls below hysteresis x threshold."""
        p = policy(cooldown_weeks=0)
        p.retrained(0)
        hover = {**QUIET, "event_mix": 0.41}
        assert p.decide(1, hover).retrain
        p.retrained(1)
        # still hovering: disarmed, no second trigger despite cooldown=0
        assert not p.decide(2, hover).retrain
        assert not p.decide(3, hover).retrain
        # falls below 0.6 * 0.4 = 0.24: re-arms (quietly)...
        assert not p.decide(4, {**QUIET, "event_mix": 0.1}).retrain
        # ...so the next excursion fires again
        assert p.decide(5, hover).retrain

    def test_max_interval_fires_on_quiet_stream(self):
        p = policy(max_interval_weeks=8)
        p.retrained(2)
        for week in range(3, 10):
            assert not p.decide(week, QUIET).retrain
        decision = p.decide(10, QUIET)
        assert decision.retrain and decision.cause == CAUSE_MAX_INTERVAL

    def test_defer_records_without_triggering(self):
        p = policy()
        p.retrained(2)
        decision = p.defer(5)
        assert decision.deferred and not decision.retrain
        assert p.n_deferred == 1
        assert p.trigger_log == []

    def test_failed_retraining_does_not_reset_clock(self):
        """Only ``retrained()`` (a *successful* retraining) restarts the
        cooldown; a trigger alone leaves the max-interval clock running."""
        p = policy(max_interval_weeks=4)
        p.retrained(2)
        assert p.decide(6, QUIET).cause == CAUSE_MAX_INTERVAL
        # no retrained() call (the attempt failed): next boundary fires again
        assert p.decide(7, QUIET).cause == CAUSE_MAX_INTERVAL

    def test_snapshot_round_trip(self):
        p = policy(cooldown_weeks=0)
        p.decide(2, QUIET)
        p.retrained(2)
        p.decide(3, QUIET)
        p.decide(4, {**QUIET, "event_mix": 0.9})
        p.defer(5)

        q = policy(cooldown_weeks=0)
        q.restore(p.snapshot())
        assert q.last_retrain_week == p.last_retrain_week
        assert q.trigger_log == p.trigger_log
        assert (q.n_skipped, q.n_deferred) == (p.n_skipped, p.n_deferred)
        assert q._armed == p._armed
        # equal futures
        assert (
            q.decide(6, {**QUIET, "event_mix": 0.9}).retrain
            == p.decide(6, {**QUIET, "event_mix": 0.9}).retrain
        )


class TestDriftMonitor:
    def feed_baseline(self, monitor, t=0.0):
        """Enough varied events + rule fires to arm every detector."""
        for i in range(64):
            t += 700.0
            monitor.observe_event(f"old-{i % 8}", t, f"loc-{i % 4}")
        monitor.observe_warnings(
            [
                FailureWarning(
                    time=t,
                    predicted="KERNEL-F-000",
                    window=3600.0,
                    rule_key=(f"rule-{i % 2}",),
                    learner="association",
                )
                for i in range(12)
            ]
        )
        return t

    def test_initial_then_skip_then_drift(self):
        # window of 64: the post-shift feed displaces the old mix fully
        monitor = DriftMonitor(cooldown_weeks=0, window_events=64)
        t = self.feed_baseline(monitor)
        assert monitor.evaluate(2).cause == CAUSE_INITIAL
        monitor.retrained(2)

        t = self.feed_baseline(monitor, t)  # same regime: skip
        assert not monitor.evaluate(3).retrain

        for i in range(64):  # regime change: the code mix is rewritten
            t += 700.0  # wider than the burst-collapse bucket
            monitor.observe_event(f"new-{i % 8}", t, f"loc-{i % 4}")
        decision = monitor.evaluate(4)
        assert decision.retrain
        assert decision.cause in ("event_mix", "interarrival")

    def test_evaluate_emits_observe_series(self):
        registry = observe.MetricsRegistry()
        monitor = DriftMonitor()
        with observe.use_registry(registry):
            monitor.evaluate(2)
            monitor.retrained(2)
            monitor.evaluate(3)
            monitor.evaluate(4, deferred=True)
        assert registry.counter("adapt.evaluations").value == 3
        assert registry.counter("adapt.triggers", cause=CAUSE_INITIAL).value == 1
        assert registry.counter("adapt.skipped_retrains").value == 1
        assert registry.counter("adapt.deferred").value == 1
        assert registry.gauge("adapt.score", detector="event_mix").value == 0.0

    def test_retrained_rebaselines_every_detector(self):
        monitor = DriftMonitor()
        self.feed_baseline(monitor)
        monitor.evaluate(2)
        monitor.retrained(2)
        assert monitor.event_mix._baseline is not None
        assert monitor.interarrival._baseline is not None
        assert monitor.rule_hit_rate._ewma == {}  # rates restart from zero

    def test_status_shape(self):
        monitor = DriftMonitor()
        monitor.evaluate(2)
        monitor.retrained(2)
        status = monitor.status()
        assert set(status["scores"]) == {
            "event_mix",
            "interarrival",
            "rule_hit_rate",
        }
        assert status["last_retrain_week"] == 2
        assert status["evaluations"] == 1
        assert status["triggers"] == [{"week": 2, "cause": CAUSE_INITIAL}]

    def test_snapshot_round_trip_preserves_status_and_future(self):
        monitor = DriftMonitor(cooldown_weeks=0)
        t = self.feed_baseline(monitor)
        monitor.evaluate(2)
        monitor.retrained(2)
        t = self.feed_baseline(monitor, t)
        monitor.evaluate(3)

        clone = DriftMonitor(cooldown_weeks=0)
        clone.restore(monitor.snapshot())
        assert clone.status() == monitor.status()
        # identical evaluation on the same future stream
        for m in (monitor, clone):
            for i in range(64):
                m.observe_event(f"new-{i % 8}", t + 60.0 * (i + 1), "loc")
        ours, theirs = clone.evaluate(4), monitor.evaluate(4)
        assert ours.scores == theirs.scores
        assert ours.retrain == theirs.retrain and ours.cause == theirs.cause

    def test_from_config_maps_every_knob(self):
        config = FrameworkConfig(
            retrain_trigger="adaptive",
            adapt_mix_threshold=0.3,
            adapt_gap_threshold=0.35,
            adapt_rule_threshold=0.7,
            adapt_cooldown_weeks=1,
            adapt_max_interval_weeks=6,
            adapt_window_events=64,
            adapt_hysteresis=0.5,
        )
        monitor = DriftMonitor.from_config(config)
        assert monitor.policy.thresholds == {
            "event_mix": 0.3,
            "interarrival": 0.35,
            "rule_hit_rate": 0.7,
        }
        assert monitor.policy.cooldown_weeks == 1
        assert monitor.policy.max_interval_weeks == 6
        assert monitor.policy.hysteresis == 0.5
        assert monitor.event_mix.window_events == 64
