"""Integration tests: the drift monitor wired into the session layers.

Covers the scheduling semantics the tentpole promises — weekly drift
evaluations instead of a fixed cadence, degraded-mode deferral that
never double-fires, the static-policy path that schedules nothing at
all — and the durability contract: drift state rides checkpoint v3 and
a resumed session is warning-for-warning identical, drift bookkeeping
included.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.adapt import CAUSE_INITIAL, CAUSE_MAX_INTERVAL
from repro.core.framework import FrameworkConfig
from repro.core.online import OnlinePredictionSession
from repro.core.session import SessionCore
from repro.core.windows import TrainingPolicy
from repro.faults import FaultPlan, LearnerCrash
from repro.utils.timeutil import WEEK_SECONDS
from tests.adapt.conftest import adaptive_config, shift_log

DRIFT_CAUSES = ("event_mix", "interarrival", "rule_hit_rate")


def stream(session, events):
    for event in events:
        session.ingest(event)
    return session


@pytest.fixture(scope="module")
def shifted():
    return list(shift_log(weeks=10, shift_week=5))


class TestFixedTriggerUnchanged:
    def test_fixed_session_has_no_drift_state(self, catalog, shifted):
        session = SessionCore(
            FrameworkConfig(initial_train_weeks=2, retrain_weeks=2),
            catalog=catalog,
        )
        assert not session.adaptive
        assert session.drift_status() is None
        stream(session, shifted)
        # metronome cadence: every 2 weeks, drift or not
        assert [r.week for r in session.retrains] == [2, 4, 6, 8]


class TestAdaptiveScheduling:
    def test_retrains_on_drift_not_cadence(self, catalog, shifted):
        session = SessionCore(adaptive_config(), catalog=catalog)
        assert session.adaptive
        stream(session, shifted)
        status = session.drift_status()

        # initial training, then exactly one drift-triggered retraining
        # after the week-5 shift — and far fewer than the fixed cadence
        causes = [t["cause"] for t in status["triggers"]]
        assert causes[0] == CAUSE_INITIAL
        assert len(causes) == 2 and causes[1] in DRIFT_CAUSES
        drift_week = status["triggers"][1]["week"]
        assert drift_week > 5
        assert [r.week for r in session.retrains] == [2, drift_week]

        # every crossed boundary was an evaluation (weeks 2..9, the
        # initial-training boundary included): quiet weeks were skipped,
        # not silently missed
        assert status["evaluations"] == 8
        assert status["skipped_retrains"] == status["evaluations"] - 2
        assert status["deferred"] == 0

    def test_keeps_predicting_after_drift_retrain(self, catalog, shifted):
        session = SessionCore(adaptive_config(), catalog=catalog)
        stream(session, shifted)
        drift_week = session.retrains[-1].week
        post = [
            w
            for w in session.warnings
            if w.time >= drift_week * WEEK_SECONDS
        ]
        # the new rules fire on the new pattern's fatal type
        assert post and any(w.predicted == "APP-F-000" for w in post)

    def test_max_interval_safety_net(self, catalog):
        """A stationary stream never shows drift, yet the WR_max net
        still retrains it on schedule."""
        stationary = list(shift_log(weeks=8, shift_week=99))
        session = SessionCore(
            adaptive_config(adapt_max_interval_weeks=3), catalog=catalog
        )
        stream(session, stationary)
        status = session.drift_status()
        causes = [t["cause"] for t in status["triggers"]]
        assert causes[0] == CAUSE_INITIAL
        assert set(causes[1:]) == {CAUSE_MAX_INTERVAL}
        assert [r.week for r in session.retrains] == [2, 5]  # 2 + 3k


class TestStaticPolicySchedulesNothing:
    @pytest.mark.parametrize("trigger", ["fixed", "adaptive"])
    def test_no_boundary_after_initial_training(self, catalog, trigger):
        """``policy.retrains`` off: the initial training is the only one
        and ``_next_retrain_week`` parks at None (not a sentinel week)."""
        config = FrameworkConfig(
            initial_train_weeks=2,
            retrain_weeks=2,
            policy=TrainingPolicy(kind="static", length_weeks=2),
            retrain_trigger=trigger,
        )
        session = SessionCore(config, catalog=catalog)
        assert session._next_retrain_week == 2
        stream(session, shift_log(weeks=8, shift_week=99))
        assert session._next_retrain_week is None
        assert [r.week for r in session.retrains] == [2]
        # the initial rules keep predicting for the rest of the trace
        assert any(w.time > 6 * WEEK_SECONDS for w in session.warnings)


class TestDegradedDefer:
    def test_defers_while_owed_and_never_double_fires(
        self, catalog, shifted
    ):
        """Drift fires, the retraining crashes, and the backoff stretches
        across later week boundaries: those evaluations defer (counted),
        no second retraining is queued for the same regime change, and
        the eventual success is the *originally* triggered week."""
        reference = SessionCore(adaptive_config(), catalog=catalog)
        stream(reference, shifted)
        drift_week = reference.drift_status()["triggers"][1]["week"]

        config = adaptive_config(
            on_retrain_error="degrade",
            retrain_backoff_base=1.5 * WEEK_SECONDS,
            retrain_backoff_cap=2.0 * WEEK_SECONDS,
        )
        session = SessionCore(config, catalog=catalog)
        plan = FaultPlan(
            learner_crashes=[LearnerCrash(week=drift_week, attempts=1)]
        )
        with faults.install(plan):
            stream(session, shifted)

        status = session.drift_status()
        assert [f.week for f in session.retrain_failures] == [drift_week]
        # the boundary crossed during the backoff evaluated as deferred
        assert status["deferred"] >= 1
        # exactly one drift trigger despite the failure + deferrals
        assert [t["cause"] for t in status["triggers"]] == [
            CAUSE_INITIAL,
            reference.drift_status()["triggers"][1]["cause"],
        ]
        # the retry succeeded for the originally owed week
        assert [r.week for r in session.retrains] == [2, drift_week]
        assert not session.degraded


class TestCheckpointRoundTrip:
    def test_resume_preserves_drift_state(self, catalog, shifted, tmp_path):
        """Checkpoint mid-trace (detectors primed, one retrain behind),
        resume, finish: warnings, retrains and the full drift status all
        match an uninterrupted run."""
        config = adaptive_config()
        reference = OnlinePredictionSession(config, catalog=catalog)
        stream(reference, shifted)
        reference.flush()

        cut = next(
            i
            for i, e in enumerate(shifted)
            if e.timestamp >= 4 * WEEK_SECONDS
        )
        first = OnlinePredictionSession(config, catalog=catalog)
        stream(first, shifted[:cut])
        path = tmp_path / "adaptive.ckpt"
        payload = first.checkpoint(path)
        assert payload["version"] == 3
        assert payload["adapt"] is not None

        resumed = OnlinePredictionSession.resume(path, config, catalog=catalog)
        assert resumed.adaptive
        stream(resumed, shifted[resumed.n_ingested :])
        resumed.flush()

        assert resumed.warnings == reference.warnings
        assert [r.week for r in resumed.retrains] == [
            r.week for r in reference.retrains
        ]
        assert resumed.drift_status() == reference.drift_status()

    def test_fixed_checkpoint_carries_no_drift_state(
        self, catalog, shifted, tmp_path
    ):
        config = FrameworkConfig(initial_train_weeks=2, retrain_weeks=2)
        session = OnlinePredictionSession(config, catalog=catalog)
        stream(session, shifted[:200])
        payload = session.checkpoint(tmp_path / "fixed.ckpt")
        assert payload["version"] == 3
        assert payload["adapt"] is None
