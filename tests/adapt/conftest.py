"""Shared helpers for the adaptive-retraining tests: a deterministic
trace whose failure pattern flips wholesale at a known week."""

from __future__ import annotations

from repro.core.framework import FrameworkConfig
from repro.utils.timeutil import WEEK_SECONDS
from tests.conftest import make_log

OLD_PATTERN = ("KERNEL-N-002", "KERNEL-N-003", "KERNEL-F-000")
NEW_PATTERN = ("APP-N-001", "APP-N-002", "APP-F-000")


def shift_log(weeks: int = 10, shift_week: int = 5):
    """A -> B -> FATAL every three hours, with the whole pattern (codes
    and fatal type alike) replaced at ``shift_week``."""
    period = 10_800.0
    specs = []
    t = 600.0
    while t + 120.0 < weeks * WEEK_SECONDS:
        pattern = OLD_PATTERN if t < shift_week * WEEK_SECONDS else NEW_PATTERN
        a, b, fatal = pattern
        specs += [(t, a), (t + 60.0, b), (t + 120.0, fatal)]
        t += period
    return make_log(specs)


def adaptive_config(**overrides) -> FrameworkConfig:
    kwargs = dict(
        initial_train_weeks=2,
        retrain_trigger="adaptive",
        adapt_cooldown_weeks=1,
        # far beyond the trace: any non-initial trigger is a drift signal
        adapt_max_interval_weeks=20,
    )
    kwargs.update(overrides)
    return FrameworkConfig(**kwargs)
