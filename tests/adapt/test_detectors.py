"""Unit tests for the online drift detectors (``repro.adapt.detectors``)."""

from __future__ import annotations

import pytest

from repro.adapt.detectors import (
    MIN_SAMPLES,
    EventMixDetector,
    InterArrivalDetector,
    RuleHitRateDetector,
    js_divergence,
    ks_statistic,
)
from repro.alerts import FailureWarning


def warning(rule_key, time=100.0):
    return FailureWarning(
        time=time,
        predicted="KERNEL-F-000",
        window=3600.0,
        rule_key=rule_key,
        learner="association",
    )


class TestJSDivergence:
    def test_identical_histograms_score_zero(self):
        h = {"a": 3, "b": 5, "c": 1}
        assert js_divergence(h, h) == 0.0

    def test_disjoint_histograms_score_one(self):
        assert js_divergence({"a": 4}, {"b": 4}) == 1.0

    def test_empty_side_scores_zero(self):
        assert js_divergence({}, {"a": 1}) == 0.0
        assert js_divergence({"a": 1}, {}) == 0.0

    def test_symmetric_and_bounded(self):
        p, q = {"a": 9, "b": 1}, {"a": 2, "b": 5, "c": 3}
        assert js_divergence(p, q) == pytest.approx(js_divergence(q, p))
        assert 0.0 < js_divergence(p, q) < 1.0

    def test_scale_invariant(self):
        p = {"a": 1, "b": 3}
        scaled = {"a": 10, "b": 30}
        assert js_divergence(p, {"a": 2, "b": 1}) == pytest.approx(
            js_divergence(scaled, {"a": 2, "b": 1})
        )


class TestKSStatistic:
    def test_empty_side_scores_zero(self):
        assert ks_statistic([], [1.0]) == 0.0
        assert ks_statistic([1.0], []) == 0.0

    def test_identical_continuous_samples_score_zero(self):
        a = [float(i) for i in range(40)]
        assert ks_statistic(a, list(a)) == 0.0

    def test_identical_tied_samples_score_zero(self):
        """Heavy ties (periodic inter-arrival gaps) must not inflate the
        statistic: two identical samples are distance zero even when two
        thirds of their mass sits on one exact value."""
        a = [60.0] * 100 + [10_680.0] * 50
        assert ks_statistic(a, list(a)) == 0.0

    def test_disjoint_samples_score_one(self):
        assert ks_statistic([1.0, 2.0], [3.0, 4.0]) == 1.0

    def test_half_shifted_samples(self):
        assert ks_statistic(
            [1.0, 2.0, 3.0, 4.0], [3.0, 4.0, 5.0, 6.0]
        ) == pytest.approx(0.5)

    def test_symmetric(self):
        a = [1.0, 1.0, 2.0, 5.0]
        b = [1.0, 3.0, 3.0, 3.0, 8.0]
        assert ks_statistic(a, b) == pytest.approx(ks_statistic(b, a))


class TestEventMixDetector:
    def test_validation(self):
        with pytest.raises(ValueError, match="window_events"):
            EventMixDetector(window_events=MIN_SAMPLES - 1)
        with pytest.raises(ValueError, match="bucket_seconds"):
            EventMixDetector(bucket_seconds=-1.0)

    def test_zero_without_baseline(self):
        det = EventMixDetector(window_events=16, bucket_seconds=0.0)
        for i in range(32):
            det.observe(f"code-{i % 4}", float(i))
        assert det.score() == 0.0

    def test_burst_collapse(self):
        """A code repeated within ``bucket_seconds`` enters the window
        once; after a longer gap it is admitted again."""
        det = EventMixDetector(bucket_seconds=600.0)
        for i in range(50):
            det.observe("burst", 100.0 + i)  # 50 events in 50 seconds
        det.observe("burst", 100.0 + 700.0)
        assert list(det._window) == ["burst", "burst"]

    def test_detects_mix_change(self):
        det = EventMixDetector(window_events=16, bucket_seconds=0.0)
        t = 0.0
        for i in range(32):
            det.observe(f"old-{i % 4}", t := t + 1.0)
        det.rebaseline()
        assert det.score() == 0.0
        for i in range(32):
            det.observe(f"new-{i % 4}", t := t + 1.0)
        assert det.score() == pytest.approx(1.0)

    def test_rebaseline_needs_min_samples(self):
        det = EventMixDetector(bucket_seconds=0.0)
        for i in range(MIN_SAMPLES - 1):
            det.observe(f"c{i}", float(i))
        det.rebaseline()
        assert det._baseline is None
        assert det.score() == 0.0

    def test_snapshot_round_trip(self):
        det = EventMixDetector(window_events=16, bucket_seconds=300.0)
        t = 0.0
        for i in range(40):
            det.observe(f"c{i % 6}", t := t + 400.0)
        det.rebaseline()
        for i in range(10):
            det.observe(f"d{i}", t := t + 400.0)

        clone = EventMixDetector(window_events=16, bucket_seconds=300.0)
        clone.restore(det.snapshot())
        assert clone.score() == det.score()
        # future behaviour matches too: bucketing state survived
        det.observe("c0", t + 1.0)
        clone.observe("c0", t + 1.0)
        assert list(clone._window) == list(det._window)


class TestInterArrivalDetector:
    def test_validation(self):
        with pytest.raises(ValueError, match="window_gaps"):
            InterArrivalDetector(window_gaps=MIN_SAMPLES - 1)

    def test_gaps_are_per_location(self):
        det = InterArrivalDetector()
        # two interleaved locations, each logging every 100s; the
        # aggregate stream has 50s gaps but per-location gaps are 100s
        for i in range(10):
            det.observe(float(i * 100), "rack-A")
            det.observe(float(i * 100 + 50), "rack-B")
        assert set(det._window) == {100.0}

    def test_detects_gap_scale_change(self):
        det = InterArrivalDetector(window_gaps=16)
        t = 0.0
        for _ in range(40):
            det.observe(t := t + 10.0, "loc")
        det.rebaseline()
        assert det.score() == 0.0
        for _ in range(40):
            det.observe(t := t + 1000.0, "loc")
        assert det.score() == pytest.approx(1.0)

    def test_snapshot_round_trip(self):
        det = InterArrivalDetector(window_gaps=16)
        t = 0.0
        for i in range(40):
            det.observe(t := t + 10.0 + (i % 3), "loc")
        det.rebaseline()
        for _ in range(5):
            det.observe(t := t + 50.0, "loc")

        clone = InterArrivalDetector(window_gaps=16)
        clone.restore(det.snapshot())
        assert clone.score() == det.score()
        det.observe(t + 7.0, "loc")
        clone.observe(t + 7.0, "loc")
        assert list(clone._window) == list(det._window)


class TestRuleHitRateDetector:
    def test_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            RuleHitRateDetector(alpha=0.0)
        with pytest.raises(ValueError, match="decay_ratio"):
            RuleHitRateDetector(decay_ratio=1.0)
        with pytest.raises(ValueError, match="baseline_periods"):
            RuleHitRateDetector(baseline_periods=0)
        with pytest.raises(ValueError, match="min_rate"):
            RuleHitRateDetector(min_rate=-0.5)

    def feed_period(self, det, fires):
        for rule_key, n in fires.items():
            for _ in range(n):
                det.observe_warning(warning(rule_key))
        det.fold_period()

    def test_baseline_freezes_after_baseline_periods(self):
        det = RuleHitRateDetector(baseline_periods=2)
        self.feed_period(det, {("a",): 10, ("b",): 8})
        assert det._baseline is None
        self.feed_period(det, {("a",): 10, ("b",): 8})
        assert det._baseline is not None
        assert set(det._baseline) == {repr(("a",)), repr(("b",))}

    def test_min_rate_excludes_rare_rules(self):
        """A once-a-fortnight rule must not make the baseline: its
        natural quiet weeks would read as decay."""
        det = RuleHitRateDetector(
            baseline_periods=2, min_rules=2, min_rate=1.0, alpha=0.5
        )
        self.feed_period(det, {("hot",): 10, ("warm",): 6, ("rare",): 1})
        self.feed_period(det, {("hot",): 10, ("warm",): 6})  # rare quiet
        # rare's EWMA is 0.5 < min_rate, so only the workhorses qualify
        assert set(det._baseline) == {repr(("hot",)), repr(("warm",))}

    def test_score_counts_decayed_rules(self):
        det = RuleHitRateDetector(
            baseline_periods=1, min_rules=2, decay_ratio=0.5, alpha=0.5
        )
        self.feed_period(det, {("a",): 8, ("b",): 8})
        assert det.score() == 0.0
        # rule a falls silent: two quiet periods put its EWMA at a
        # quarter of baseline, under the 0.5 decay ratio
        self.feed_period(det, {("b",): 8})
        self.feed_period(det, {("b",): 8})
        assert det.score() == pytest.approx(0.5)

    def test_needs_min_rules(self):
        det = RuleHitRateDetector(baseline_periods=1, min_rules=2)
        self.feed_period(det, {("only",): 20})
        assert det._baseline is None
        assert det.score() == 0.0

    def test_rebaseline_clears_history(self):
        det = RuleHitRateDetector(baseline_periods=1, min_rules=2)
        self.feed_period(det, {("a",): 8, ("b",): 8})
        self.feed_period(det, {})
        self.feed_period(det, {})
        assert det.score() > 0.0
        det.rebaseline()
        assert det.score() == 0.0
        assert det._ewma == {} and det._periods == 0

    def test_snapshot_round_trip(self):
        det = RuleHitRateDetector(baseline_periods=1, min_rules=2)
        self.feed_period(det, {("a",): 8, ("b",): 8})
        self.feed_period(det, {("b",): 8})
        det.observe_warning(warning(("a",)))  # un-folded fires survive too

        clone = RuleHitRateDetector(baseline_periods=1, min_rules=2)
        clone.restore(det.snapshot())
        assert clone.score() == det.score()
        self.feed_period(det, {("b",): 8})
        self.feed_period(clone, {("b",): 8})
        assert clone.score() == det.score()
        assert clone._ewma == det._ewma
