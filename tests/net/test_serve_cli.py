"""Subprocess tests for ``repro serve``: banner, drain, lossless handoff."""

import os
import re
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.net.client import PredictionClient
from repro.service import PredictionService
from repro.service.partition import HashRouter
from tests.net.conftest import fast_config, fleet_events, reference_run

pytestmark = pytest.mark.net

SERVE_TIMEOUT = 120


def start_serve(*extra, cwd):
    """Launch ``repro serve --port 0`` and parse the readiness banner."""
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parents[2] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = repo_src + (os.pathsep + existing if existing else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=cwd,
    )
    banner = proc.stdout.readline()
    match = re.search(r"serving on ([\d.]+):(\d+) ", banner)
    assert match, f"no readiness banner, stderr: {proc.stderr.read()}"
    return proc, match.group(1), int(match.group(2))


def finish(proc):
    """SIGTERM the server and return (exit code, stdout, stderr)."""
    proc.send_signal(signal.SIGTERM)
    out, err = proc.communicate(timeout=SERVE_TIMEOUT)
    return proc.returncode, out, err


class TestServeVerb:
    def test_banner_drain_and_exit_zero(self, tmp_path):
        proc, host, port = start_serve(cwd=tmp_path)
        events = fleet_events(weeks=3)
        with PredictionClient(host, port, timeout=SERVE_TIMEOUT) as client:
            assert client.stream(events) == len(events)
            assert client.health()["status"] == "ok"
        code, out, err = finish(proc)
        assert code == 0, err
        assert f"drained: {len(events)} events accepted" in out

    def test_idle_serve_drains_clean(self, tmp_path):
        proc, host, port = start_serve(cwd=tmp_path)
        try:
            assert proc.poll() is None
        finally:
            code, out, _ = finish(proc)
        assert code == 0
        assert "drained: 0 events" in out

    def test_lossless_handoff_across_sigterm_and_recovery(self, tmp_path):
        """The flagship contract, end to end.

        N concurrent producers stream into ``repro serve`` with a fleet
        directory; the server is SIGTERMed mid-stream.  Every sent event
        is then either acked (and must be in the recovered fleet) or in
        a producer's unacknowledged tail (and must be replayable).
        Recovery plus tail replay must end warning-for-warning identical
        to an in-process run that never crashed: zero loss, zero
        duplication.
        """
        events = fleet_events(weeks=5)
        n_shards, n_producers = 2, 2
        router = HashRouter(n_shards)
        # each shard is owned by exactly one producer, so per-shard
        # event order is preserved end to end (reorder slack is 0)
        shard_owner: dict[str, int] = {}
        partitions: list[list] = [[] for _ in range(n_producers)]
        for event in events:
            key = router.key(event)
            owner = shard_owner.setdefault(
                key, len(shard_owner) % n_producers
            )
            partitions[owner].append(event)
        assert all(partitions), "workload must exercise every producer"

        proc, host, port = start_serve(
            "--fleet-dir", "fleet", "--shards", str(n_shards),
            "--initial-weeks", "2", "--retrain-weeks", "2",
            cwd=tmp_path,
        )

        cut = [int(len(part) * 0.6) for part in partitions]
        tails: list[list] = [[] for _ in range(n_producers)]
        barrier = threading.Barrier(n_producers + 1)

        def produce(i):
            part, client = partitions[i], None
            sent = 0
            try:
                client = PredictionClient(host, port, timeout=SERVE_TIMEOUT)
                # phase 1: fully acknowledged before the kill
                assert client.stream(part[: cut[i]]) == cut[i]
                barrier.wait(timeout=SERVE_TIMEOUT)
                # phase 2: racing the SIGTERM; rejections, silence, and
                # a connection that died before we finished sending all
                # mean "mine to replay"
                for event in part[cut[i] :]:
                    client.send_event(event)
                    sent += 1
                tails[i].extend(
                    r.event for r in client.wait_all()
                )
            except (ConnectionError, OSError):
                pass
            finally:
                if client is not None:
                    # keyed by record id: a send that died halfway may
                    # have registered its event as unacked already
                    tail = {
                        e.record_id: e for e in part[cut[i] + sent :]
                    }
                    for e in client.unacked_events:
                        tail[e.record_id] = e
                    # rejections wait_all classified but never returned
                    # (the connection died mid-retry) are ours too
                    for r in client.rejected:
                        tail[r.event.record_id] = r.event
                    tails[i].extend(tail.values())
                    client.close()

        threads = [
            threading.Thread(target=produce, args=(i,))
            for i in range(n_producers)
        ]
        for t in threads:
            t.start()
        barrier.wait(timeout=SERVE_TIMEOUT)  # all phase-1 acks are in
        code, out, err = finish(proc)  # SIGTERM mid-phase-2
        for t in threads:
            t.join(timeout=SERVE_TIMEOUT)
        assert code == 0, err
        assert "drained:" in out

        # recover the fleet: acked events survived, nothing else did
        recovered = PredictionService.recover(
            tmp_path / "fleet", fast_config()
        )
        accepted = recovered.n_ingested
        total_tail = sum(len(tail) for tail in tails)
        assert accepted >= sum(cut)  # nothing acked was lost
        assert accepted + total_tail == len(events)  # no loss, no dupes

        # replay exactly the unacknowledged tails (per producer, in
        # stream order: the retrying client may have re-sent a shed
        # event after newer ones, so send order no longer is stream
        # order — re-sorting the way fleet_events orders restores it)
        for tail in tails:
            ordered = sorted(tail, key=lambda e: (e.timestamp, e.record_id))
            for event in ordered:
                recovered.ingest(event)
        recovered.flush()
        assert recovered.n_ingested == len(events)

        reference = reference_run(events, shards=n_shards)
        assert recovered.summary().n_events == reference.summary().n_events
        for key in reference.shard_keys:
            assert recovered.warnings(key) == reference.warnings(key), key
        recovered.close()
