"""Chaos suite for the serving layer: injected connection drops.

Run with ``pytest -m "chaos and net"`` (deselected from the default
suite, and auto-skipped where sockets are unavailable).
"""

import pytest

from repro import faults
from repro.faults import ConnectionDrop, FaultPlan
from repro.net.client import PredictionClient
from repro.net.server import serve_in_thread
from repro.observe import MetricsRegistry, use_registry
from repro.service import PredictionService
from tests.net.conftest import (
    assert_same_warnings,
    fast_config,
    fleet_events,
    reference_run,
)

pytestmark = [pytest.mark.chaos, pytest.mark.net]


class TestConnectionDrop:
    def test_plan_validation(self):
        with pytest.raises(ValueError):
            ConnectionDrop(conn=0, at_frame=0)

    def test_dropped_producer_replays_its_tail(self, catalog):
        """A collector's connection is torn down; its replay tail is exact.

        The plan drops connection 0 at its first frame — an RST with no
        goodbye, exactly like a crashed peer.  Nothing on that
        connection was ever batched, so the producer's unacknowledged
        tail is its whole stream; replaying it on a fresh connection
        must leave the fleet warning-for-warning identical to an
        in-process run.  (An RST may discard in-flight acks, so a
        mid-stream drop makes the tail a superset — producers that need
        exactly-once across abrupt drops replay into a journaled fleet,
        where recovery deduplicates.)
        """
        events = fleet_events(weeks=4)
        registry = MetricsRegistry()
        plan = FaultPlan(connection_drops=[ConnectionDrop(conn=0, at_frame=1)])
        with use_registry(registry):
            service = PredictionService(
                fast_config(), shards=2, catalog=catalog
            )
            with faults.install(plan):
                with serve_in_thread(service, batch_size=8) as server:
                    client = PredictionClient(
                        server.host, server.port, timeout=30.0
                    )
                    try:
                        for event in events:
                            client.send_event(event)
                        client.wait_all()
                    except (ConnectionError, OSError):
                        pass
                    tail = client.unacked_events
                    client.close()
                    assert plan.injected == ["net:0:1"]
                    # frame 1 died before dispatch, so nothing was ever
                    # accepted: the tail is exactly the sent prefix
                    assert tail and tail == events[: len(tail)]
                    assert service.n_ingested == 0

                    replay = tail + events[len(tail) :]
                    with PredictionClient(
                        server.host, server.port, timeout=30.0
                    ) as retry:
                        assert retry.stream(replay) == len(replay)
                        retry.flush()
        assert service.n_ingested == len(events)
        snapshot = registry.snapshot()
        assert snapshot["net.dropped_connections"]["value"] == 1
        assert_same_warnings(service, reference_run(events, catalog=catalog))
