"""Socket tests for :class:`PredictionServer` via the thread harness."""

import socket
import threading
import time
import zlib

import pytest

from repro.net import protocol
from repro.net.client import PredictionClient
from repro.net.protocol import decode_frame, encode_frame
from repro.net.server import PredictionServer, serve_in_thread
from repro.observe import MetricsRegistry, use_registry
from repro.service import PredictionService
from tests.conftest import make_event
from tests.net.conftest import (
    PRECURSOR_A,
    assert_same_warnings,
    fast_config,
    fleet_events,
    reference_run,
)

pytestmark = pytest.mark.net


def make_service(catalog, **kwargs):
    kwargs.setdefault("shards", 2)
    return PredictionService(fast_config(), catalog=catalog, **kwargs)


class TestIngestPath:
    def test_ack_after_commit_and_counters(self, catalog):
        registry = MetricsRegistry()
        events = fleet_events(weeks=3)
        with use_registry(registry):
            service = make_service(catalog)
            with serve_in_thread(service, batch_size=8) as server:
                with PredictionClient(server.host, server.port) as client:
                    acked = client.stream(events)
                    client.flush()
                    health = client.health()
        assert acked == len(events)
        assert health["status"] == "ok"
        assert health["accepted"] == len(events)
        assert health["shards"] == 2
        snapshot = registry.snapshot()
        assert snapshot["net.events"]["value"] == len(events)
        # batch_size=8 over hundreds of events: real micro-batches formed
        assert 1 < snapshot["net.batches"]["value"] < len(events)
        assert snapshot["net.batch_size"]["max"] <= 8
        assert snapshot["net.ingest_latency"]["count"] == len(events)

    def test_linger_flushes_partial_batches(self, catalog):
        # A batch far below batch_size must still commit via the linger
        # deadline — an ack proves the timer path, not the size path.
        service = make_service(catalog)
        with serve_in_thread(
            service, batch_size=10_000, max_linger=0.01
        ) as server:
            with PredictionClient(server.host, server.port) as client:
                response = client.ingest(make_event(100.0, PRECURSOR_A))
                assert response["type"] == "ack"

    def test_served_equals_in_process(self, catalog):
        events = fleet_events(weeks=4)
        service = make_service(catalog)
        with serve_in_thread(service, batch_size=16) as server:
            with PredictionClient(server.host, server.port) as client:
                assert client.stream(events) == len(events)
                client.flush()
        assert_same_warnings(service, reference_run(events, catalog=catalog))

    def test_concurrent_producers_equal_in_process(self, catalog):
        # One producer per shard key hash: each shard sees its events in
        # stream order, so the fleet must be bit-identical to the
        # in-process run — the serving layer is pure transport.
        events = fleet_events(weeks=4)
        n_producers = 3
        service = make_service(catalog)
        partitions = [[] for _ in range(n_producers)]
        for event in events:
            key = service.router.key(event)
            partitions[zlib.crc32(key.encode()) % n_producers].append(event)

        def produce(host, port, part):
            with PredictionClient(host, port, timeout=60.0) as client:
                assert client.stream(part) == len(part)

        with serve_in_thread(service, batch_size=16) as server:
            threads = [
                threading.Thread(
                    target=produce, args=(server.host, server.port, part)
                )
                for part in partitions
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with PredictionClient(server.host, server.port) as tail:
                tail.flush()
        assert_same_warnings(service, reference_run(events, catalog=catalog))


class TestBackpressure:
    def test_connection_unacked_cap_sheds_load(self, catalog):
        # Commits can't happen (huge batch, long linger), so unacked
        # ingests pile up and the third must be shed explicitly.
        registry = MetricsRegistry()
        with use_registry(registry):
            service = make_service(catalog)
            with serve_in_thread(
                service, batch_size=10_000, max_linger=30.0, max_unacked=2
            ) as server:
                with PredictionClient(
                    server.host, server.port, window=64, retry=None
                ) as client:
                    for i in range(5):
                        client.send_event(
                            make_event(100.0 + i, PRECURSOR_A)
                        )
                    client.flush()  # commits the two pending events
                    rejected = client.wait_all()
                    health = client.health()
        assert len(rejected) == 3
        assert all(r.overloaded for r in rejected)
        assert all(r.frame["scope"] == "connection" for r in rejected)
        assert health["accepted"] == 2
        assert registry.snapshot()[
            'net.shed{scope="connection"}'
        ]["value"] == 3
        # shed events are exactly the re-send set
        shed_times = {r.event.timestamp for r in rejected}
        assert shed_times == {102.0, 103.0, 104.0}

    def test_shard_pending_cap_sheds_load(self, catalog):
        registry = MetricsRegistry()
        with use_registry(registry):
            service = make_service(catalog, shards=1)
            with serve_in_thread(
                service, batch_size=10_000, max_linger=30.0, max_pending=2
            ) as server:
                with PredictionClient(
                    server.host, server.port, retry=None
                ) as client:
                    for i in range(4):
                        client.send_event(
                            make_event(100.0 + i, PRECURSOR_A)
                        )
                    client.flush()
                    rejected = client.wait_all()
        assert len(rejected) == 2
        assert all(
            r.frame["scope"] == "shard" and r.overloaded for r in rejected
        )
        assert registry.snapshot()['net.shed{scope="shard"}']["value"] == 2


class TestProtocolEdges:
    def test_garbage_frame_answered_connection_survives(self, catalog):
        service = make_service(catalog)
        with serve_in_thread(service) as server:
            with socket.create_connection(
                (server.host, server.port), timeout=10
            ) as raw:
                fh = raw.makefile("rb")
                # malformed JSON, then an unknown frame type, then a
                # valid request — all on ONE connection: each garbage
                # frame gets a typed error and the conversation goes on
                raw.sendall(b"this is not json\n")
                reply = decode_frame(fh.readline()[:-1])
                assert reply["type"] == "error"
                assert reply["code"] == protocol.ERR_BAD_FRAME
                raw.sendall(b'{"type": "teleport", "seq": 4}\n')
                reply = decode_frame(fh.readline()[:-1])
                assert reply["type"] == "error"
                assert reply["code"] == protocol.ERR_BAD_FRAME
                # envelope was never validated, so no seq to echo
                assert reply["seq"] is None
                raw.sendall(encode_frame({"type": "health", "seq": 5}))
                assert decode_frame(fh.readline()[:-1])["status"] == "ok"

    def test_oversized_frame_answered_connection_survives(self, catalog):
        service = make_service(catalog)
        with serve_in_thread(service, max_frame_bytes=512) as server:
            with socket.create_connection(
                (server.host, server.port), timeout=10
            ) as raw:
                fh = raw.makefile("rb")
                raw.sendall(b"x" * 2048 + b"\n")
                reply = decode_frame(fh.readline()[:-1])
                assert reply["type"] == "error"
                assert reply["code"] == protocol.ERR_FRAME_TOO_LARGE
                # the connection still answers well-formed requests
                raw.sendall(encode_frame({"type": "health", "seq": 1}))
                assert decode_frame(fh.readline()[:-1])["status"] == "ok"

    def test_mid_frame_disconnect_drops_partial_event(self, catalog):
        events = fleet_events(weeks=3)
        service = make_service(catalog)
        with serve_in_thread(service, batch_size=4) as server:
            with PredictionClient(server.host, server.port) as client:
                client.stream(events)
                client.flush()
            # a producer dies mid-frame: bytes with no newline, then EOF
            with socket.create_connection(
                (server.host, server.port), timeout=10
            ) as raw:
                partial = encode_frame(
                    {
                        "type": "ingest",
                        "seq": 1,
                        "event": make_event(9e9, PRECURSOR_A).as_dict(),
                    }
                )[:-10]
                raw.sendall(partial)
            with PredictionClient(server.host, server.port) as client:
                health = client.health()
        # the torn frame was never accepted; everything acked before was
        assert health["status"] == "ok"
        assert health["accepted"] == len(events)
        assert service.n_ingested == len(events)

    def test_ingest_while_draining_is_typed(self, catalog):
        service = make_service(catalog)
        with serve_in_thread(service) as server:
            with PredictionClient(server.host, server.port) as client:
                assert client.health()["status"] == "ok"
                server.request_shutdown()
                while not server.draining:
                    time.sleep(0.001)
                # once draining, a late ingest gets the typed draining
                # error — or the socket is already torn down by the bye
                try:
                    frame = client.ingest(make_event(100.0, PRECURSOR_A))
                    assert frame["code"] == protocol.ERR_DRAINING
                except ConnectionError:
                    pass
        assert server.draining
        assert service.closed


class TestSubscribers:
    def test_warning_fanout_matches_fleet(self, catalog):
        events = fleet_events(weeks=4)
        service = make_service(catalog)
        with serve_in_thread(
            service, batch_size=16, subscriber_queue=10_000
        ) as server:
            listener = PredictionClient(server.host, server.port)
            listener.subscribe()
            with PredictionClient(server.host, server.port) as client:
                client.stream(events)
                client.flush()
            # drain pushed warnings until the server says bye
            server.request_shutdown()
            pushed = list(listener.iter_warnings())
            listener.close()
        total = sum(
            len(service.warnings(key)) for key in service.shard_keys
        )
        assert total > 0
        assert len(pushed) == total

    def test_slow_subscriber_drops_do_not_stall_ingest(self, catalog):
        registry = MetricsRegistry()
        events = fleet_events(weeks=4)
        with use_registry(registry):
            service = make_service(catalog)
            with serve_in_thread(
                service, batch_size=16, subscriber_queue=1
            ) as server:
                # subscribe, then never read: the bounded fan-out queue
                # fills and warnings are dropped, not buffered forever
                lazy = socket.create_connection(
                    (server.host, server.port), timeout=10
                )
                lazy.sendall(encode_frame({"type": "subscribe", "seq": 1}))
                with PredictionClient(
                    server.host, server.port, timeout=60.0
                ) as client:
                    assert client.stream(events) == len(events)
                    client.flush()
                    health = client.health()
                lazy.close()
        assert health["status"] == "ok"
        assert health["accepted"] == len(events)
        dropped = registry.snapshot().get(
            "net.subscriber_dropped", {"value": 0}
        )["value"]
        published = registry.snapshot()["net.warnings_published"]["value"]
        assert published > 1
        assert dropped >= 1


class TestLifecycle:
    def test_constructor_validation(self, catalog):
        service = make_service(catalog)
        with pytest.raises(ValueError):
            PredictionServer(service, batch_size=0)
        with pytest.raises(ValueError):
            PredictionServer(service, max_linger=-1.0)
        with pytest.raises(ValueError):
            PredictionServer(service, checkpoint_every=0)
        with pytest.raises(ValueError):
            # periodic checkpoints need somewhere to write
            PredictionServer(service, checkpoint_every=10)
        service.close()

    def test_drain_checkpoints_durable_fleet(self, catalog, tmp_path):
        events = fleet_events(weeks=3)
        service = PredictionService(
            fast_config(), shards=2, catalog=catalog,
            fleet_dir=tmp_path / "fleet",
        )
        with serve_in_thread(service, batch_size=8) as server:
            with PredictionClient(server.host, server.port) as client:
                assert client.stream(events) == len(events)
        assert service.closed
        recovered = PredictionService.recover(
            tmp_path / "fleet", fast_config(), catalog=catalog
        )
        assert recovered.n_ingested == len(events)
        recovered.close()

    def test_stats_reported_after_drain(self, catalog):
        events = fleet_events(weeks=3)
        service = make_service(catalog)
        with serve_in_thread(service, batch_size=8) as server:
            with PredictionClient(server.host, server.port) as client:
                client.stream(events)
        assert server.stats["accepted"] == len(events)
        assert server.stats["connections"] == 1
        assert server.stats["shed"] == 0
