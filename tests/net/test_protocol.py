"""Unit tests for the ndjson wire protocol (no sockets involved)."""

import json

import pytest

from repro.net import protocol
from repro.net.protocol import (
    FrameBuffer,
    ProtocolError,
    decode_frame,
    encode_frame,
    event_from_request,
    parse_request,
)
from tests.conftest import make_event


class TestFraming:
    def test_roundtrip(self):
        frame = {"type": "ingest", "seq": 3, "event": {"a": 1}}
        line = encode_frame(frame)
        assert line.endswith(b"\n")
        assert b" " not in line  # compact separators
        assert decode_frame(line[:-1]) == frame

    def test_garbage_is_a_typed_bad_frame(self):
        with pytest.raises(ProtocolError) as exc:
            decode_frame(b"{not json")
        assert exc.value.code == protocol.ERR_BAD_FRAME

    def test_non_object_is_a_typed_bad_frame(self):
        with pytest.raises(ProtocolError) as exc:
            decode_frame(b"[1,2,3]")
        assert exc.value.code == protocol.ERR_BAD_FRAME

    def test_invalid_utf8_is_a_typed_bad_frame(self):
        with pytest.raises(ProtocolError) as exc:
            decode_frame(b"\xff\xfe\x00")
        assert exc.value.code == protocol.ERR_BAD_FRAME


class TestParseRequest:
    def test_valid_envelope(self):
        assert parse_request({"type": "health", "seq": 5}) == ("health", 5)

    def test_seq_defaults_to_zero(self):
        assert parse_request({"type": "flush"}) == ("flush", 0)

    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request({"type": "purchase", "seq": 1})
        assert exc.value.code == protocol.ERR_BAD_FRAME

    @pytest.mark.parametrize("seq", [-1, 1.5, "7", True, None])
    def test_bad_seq_rejected(self, seq):
        with pytest.raises(ProtocolError) as exc:
            parse_request({"type": "ingest", "seq": seq})
        assert exc.value.code == protocol.ERR_BAD_REQUEST


class TestEventFromRequest:
    def test_roundtrip(self):
        event = make_event(123.0, "KERNEL-N-002", record_id=9)
        decoded = event_from_request(
            json.loads(encode_frame({"event": event.as_dict()}))
        )
        assert decoded == event

    def test_missing_event_rejected(self):
        with pytest.raises(ProtocolError) as exc:
            event_from_request({"type": "ingest", "seq": 1})
        assert exc.value.code == protocol.ERR_BAD_EVENT

    def test_unconstructible_event_rejected(self):
        with pytest.raises(ProtocolError) as exc:
            event_from_request({"event": {"timestamp": "not-a-number"}})
        assert exc.value.code == protocol.ERR_BAD_EVENT


class TestFrameBuffer:
    def test_frames_split_across_chunks(self):
        buf = FrameBuffer()
        assert buf.feed(b'{"a":') == []
        assert buf.pending_bytes == 5
        assert buf.feed(b'1}\n{"b":2}\n{"c"') == [b'{"a":1}', b'{"b":2}']
        assert buf.feed(b":3}\n") == [b'{"c":3}']
        assert buf.pending_bytes == 0

    def test_empty_lines_are_keepalives(self):
        assert FrameBuffer().feed(b"\n\n{}\n\n") == [b"{}"]

    def test_oversized_complete_line_surfaces_none(self):
        buf = FrameBuffer(max_frame_bytes=8)
        assert buf.feed(b"x" * 20 + b"\n" + b'{"ok":1}\n') == [
            None,
            b'{"ok":1}',
        ]

    def test_oversized_frame_discarded_while_streaming(self):
        # The head of the huge frame is dropped before its newline
        # arrives: the buffer must not hold the bytes, and the frame
        # still surfaces as None in the right stream position.
        buf = FrameBuffer(max_frame_bytes=8)
        assert buf.feed(b"y" * 100) == []
        assert buf.pending_bytes == 0
        assert buf.feed(b"y" * 100) == []
        assert buf.feed(b"\n" + b'{"ok":2}\n') == [None, b'{"ok":2}']
        assert buf.feed(b'{"ok":3}\n') == [b'{"ok":3}']
