"""Shared helpers for the serving front-end tests.

The workload mirrors tests/service: interleaved per-location
precursor→fatal pattern streams, so the fleet mines rules and emits
warnings deterministically — enough signal to pin warning-for-warning
equivalence between the served and in-process paths.
"""

from __future__ import annotations

from repro.core.framework import FrameworkConfig
from repro.utils.timeutil import WEEK_SECONDS
from tests.conftest import make_event

PRECURSOR_A = "KERNEL-N-002"
PRECURSOR_B = "KERNEL-N-003"
FATAL = "KERNEL-F-000"

LOCS = ["R00-M0-N00", "R01-M1-N01", "R02-M0-N03"]


def fast_config(**overrides):
    return FrameworkConfig(
        initial_train_weeks=2, retrain_weeks=2, **overrides
    )


def fleet_events(weeks=5, locations=LOCS):
    """Interleaved per-location pattern streams, globally time-sorted."""
    events = []
    rid = 0
    for offset, location in enumerate(locations):
        t = 600.0 + offset * 37.0
        while t + 120.0 < weeks * WEEK_SECONDS:
            for dt, code in (
                (0.0, PRECURSOR_A),
                (60.0, PRECURSOR_B),
                (120.0, FATAL),
            ):
                events.append(
                    make_event(t + dt, code, location=location, record_id=rid)
                )
                rid += 1
            t += 10_800.0
    events.sort(key=lambda e: (e.timestamp, e.record_id))
    return events


def reference_run(events, *, shards=2, catalog=None):
    """In-process fleet over ``events``; returns the closed service."""
    from repro.service import PredictionService

    service = PredictionService(
        fast_config(), shards=shards, catalog=catalog
    )
    for event in events:
        service.ingest(event)
    service.flush()
    service.close()
    return service


def assert_same_warnings(served, reference):
    """Pin warning-for-warning equality between two (closed) fleets."""
    assert served.summary().n_events == reference.summary().n_events
    assert set(served.shard_keys) == set(reference.shard_keys)
    for key in reference.shard_keys:
        assert served.warnings(key) == reference.warnings(key), key
