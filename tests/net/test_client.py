"""Client-side bookkeeping and the asyncio client surface."""

import asyncio

import pytest

from repro.net import protocol
from repro.net.client import (
    AsyncPredictionClient,
    PredictionClient,
    Rejected,
    _ClientCore,
)
from repro.net.server import serve_in_thread
from repro.service import PredictionService
from tests.conftest import make_event
from tests.net.conftest import (
    PRECURSOR_A,
    assert_same_warnings,
    fast_config,
    fleet_events,
    reference_run,
)


class TestClientCore:
    """The shared protocol ledger needs no sockets to be tested."""

    def make_unacked(self, core, n):
        events = [make_event(100.0 + i, PRECURSOR_A) for i in range(n)]
        for event in events:
            core._unacked[core.next_seq()] = event
        return events

    def test_ack_retires_in_any_order(self):
        core = _ClientCore()
        events = self.make_unacked(core, 3)
        core.note_response({"type": "ack", "seq": 2})
        assert core.unacked_events == [events[0], events[2]]
        core.note_response({"type": "ack", "seq": 1})
        core.note_response({"type": "ack", "seq": 3})
        assert core.n_unacked == 0
        assert core.rejected == []

    def test_unacked_tail_keeps_send_order(self):
        core = _ClientCore()
        events = self.make_unacked(core, 4)
        core.note_response({"type": "ack", "seq": 1})
        # seqs 2..4 never answered: the replay tail, in send order
        assert core.unacked_events == events[1:]

    def test_overloaded_and_error_become_rejections(self):
        core = _ClientCore()
        events = self.make_unacked(core, 2)
        core.note_response(
            {"type": "overloaded", "seq": 1, "scope": "shard"}
        )
        core.note_response(
            {"type": "error", "seq": 2, "code": protocol.ERR_BAD_EVENT}
        )
        assert core.n_unacked == 0
        shed, bad = core.rejected
        assert shed.event == events[0] and shed.overloaded
        assert bad.event == events[1] and not bad.overloaded

    def test_draining_error_counts_as_overloaded(self):
        rejection = Rejected(
            seq=1,
            event=make_event(1.0, PRECURSOR_A),
            frame={"type": "error", "code": protocol.ERR_DRAINING},
        )
        assert rejection.overloaded

    def test_pushed_warnings_and_bye_are_not_responses(self):
        core = _ClientCore()
        assert core.note_response(
            {"type": "warning", "warning": {"x": 1}}
        ) is None
        assert core.note_response({"type": "bye"}) is None
        assert core.warnings == [{"x": 1}]
        assert core.said_bye

    def test_ack_warnings_accumulate(self):
        core = _ClientCore()
        core.note_response(
            {"type": "ack", "seq": 9, "warnings": [{"a": 1}, {"b": 2}]}
        )
        assert core.warnings == [{"a": 1}, {"b": 2}]


@pytest.mark.net
class TestAsyncClient:
    def test_async_stream_matches_in_process(self, catalog):
        events = fleet_events(weeks=4)
        service = PredictionService(fast_config(), shards=2, catalog=catalog)

        async def run(host, port):
            async with await AsyncPredictionClient.connect(host, port) as c:
                acked = await c.stream(events)
                await c.flush()
                health = await c.health()
                snapshot = await c.metrics()
                return acked, health, snapshot

        with serve_in_thread(service, batch_size=16) as server:
            acked, health, snapshot = asyncio.run(
                run(server.host, server.port)
            )
        assert acked == len(events)
        assert health["status"] == "ok"
        assert snapshot["net.events"]["value"] >= len(events)
        assert_same_warnings(service, reference_run(events, catalog=catalog))

    def test_async_subscribe_receives_pushes(self, catalog):
        events = fleet_events(weeks=4)
        service = PredictionService(fast_config(), shards=2, catalog=catalog)

        async def run(host, port):
            listener = await AsyncPredictionClient.connect(host, port)
            await listener.subscribe()
            async with await AsyncPredictionClient.connect(host, port) as c:
                await c.stream(events)
                await c.flush()
            # pull pushed frames until at least one warning arrived
            # (_recv_frame stashes pushes and keeps waiting, so bound it)
            while not listener.core.warnings:
                try:
                    await asyncio.wait_for(
                        listener._recv_frame(), timeout=0.2
                    )
                except asyncio.TimeoutError:
                    pass
            got = list(listener.core.warnings)
            await listener.close()
            return got

        with serve_in_thread(service, batch_size=16) as server:
            pushed = asyncio.run(run(server.host, server.port))
        assert pushed  # the pattern workload must warn at least once


@pytest.mark.net
class TestSyncClientWindow:
    def test_pipeline_window_is_respected(self, catalog):
        service = PredictionService(fast_config(), shards=2, catalog=catalog)
        events = fleet_events(weeks=3)
        with serve_in_thread(service, batch_size=8) as server:
            with PredictionClient(
                server.host, server.port, window=4
            ) as client:
                for event in events:
                    client.send_event(event)
                    assert client.core.n_unacked <= 4
                assert client.wait_all() == []
        assert service.n_ingested == len(events)
