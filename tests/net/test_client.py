"""Client-side bookkeeping, retry policy, and the asyncio surface."""

import asyncio
import random

import pytest

from repro import faults
from repro.faults import FaultPlan, ShardKill
from repro.net import protocol
from repro.net.client import (
    AsyncPredictionClient,
    PredictionClient,
    Rejected,
    RetryPolicy,
    _ClientCore,
)
from repro.net.server import serve_in_thread
from repro.observe import MetricsRegistry, use_registry
from repro.service import PredictionService
from tests.conftest import make_event
from tests.net.conftest import (
    PRECURSOR_A,
    assert_same_warnings,
    fast_config,
    fleet_events,
    reference_run,
)


class TestClientCore:
    """The shared protocol ledger needs no sockets to be tested."""

    def make_unacked(self, core, n):
        events = [make_event(100.0 + i, PRECURSOR_A) for i in range(n)]
        for event in events:
            core._unacked[core.next_seq()] = event
        return events

    def test_ack_retires_in_any_order(self):
        core = _ClientCore()
        events = self.make_unacked(core, 3)
        core.note_response({"type": "ack", "seq": 2})
        assert core.unacked_events == [events[0], events[2]]
        core.note_response({"type": "ack", "seq": 1})
        core.note_response({"type": "ack", "seq": 3})
        assert core.n_unacked == 0
        assert core.rejected == []

    def test_unacked_tail_keeps_send_order(self):
        core = _ClientCore()
        events = self.make_unacked(core, 4)
        core.note_response({"type": "ack", "seq": 1})
        # seqs 2..4 never answered: the replay tail, in send order
        assert core.unacked_events == events[1:]

    def test_overloaded_and_error_become_rejections(self):
        core = _ClientCore()
        events = self.make_unacked(core, 2)
        core.note_response(
            {"type": "overloaded", "seq": 1, "scope": "shard"}
        )
        core.note_response(
            {"type": "error", "seq": 2, "code": protocol.ERR_BAD_EVENT}
        )
        assert core.n_unacked == 0
        shed, bad = core.rejected
        assert shed.event == events[0] and shed.overloaded
        assert bad.event == events[1] and not bad.overloaded

    def test_draining_error_counts_as_overloaded(self):
        rejection = Rejected(
            seq=1,
            event=make_event(1.0, PRECURSOR_A),
            frame={"type": "error", "code": protocol.ERR_DRAINING},
        )
        assert rejection.overloaded

    def test_pushed_warnings_and_bye_are_not_responses(self):
        core = _ClientCore()
        assert core.note_response(
            {"type": "warning", "warning": {"x": 1}}
        ) is None
        assert core.note_response({"type": "bye"}) is None
        assert core.warnings == [{"x": 1}]
        assert core.said_bye

    def test_ack_warnings_accumulate(self):
        core = _ClientCore()
        core.note_response(
            {"type": "ack", "seq": 9, "warnings": [{"a": 1}, {"b": 2}]}
        )
        assert core.warnings == [{"a": 1}, {"b": 2}]


@pytest.mark.net
class TestAsyncClient:
    def test_async_stream_matches_in_process(self, catalog):
        events = fleet_events(weeks=4)
        service = PredictionService(fast_config(), shards=2, catalog=catalog)

        async def run(host, port):
            async with await AsyncPredictionClient.connect(host, port) as c:
                acked = await c.stream(events)
                await c.flush()
                health = await c.health()
                snapshot = await c.metrics()
                return acked, health, snapshot

        with serve_in_thread(service, batch_size=16) as server:
            acked, health, snapshot = asyncio.run(
                run(server.host, server.port)
            )
        assert acked == len(events)
        assert health["status"] == "ok"
        assert snapshot["net.events"]["value"] >= len(events)
        assert_same_warnings(service, reference_run(events, catalog=catalog))

    def test_async_subscribe_receives_pushes(self, catalog):
        events = fleet_events(weeks=4)
        service = PredictionService(fast_config(), shards=2, catalog=catalog)

        async def run(host, port):
            listener = await AsyncPredictionClient.connect(host, port)
            await listener.subscribe()
            async with await AsyncPredictionClient.connect(host, port) as c:
                await c.stream(events)
                await c.flush()
            # pull pushed frames until at least one warning arrived
            # (_recv_frame stashes pushes and keeps waiting, so bound it)
            while not listener.core.warnings:
                try:
                    await asyncio.wait_for(
                        listener._recv_frame(), timeout=0.2
                    )
                except asyncio.TimeoutError:
                    pass
            got = list(listener.core.warnings)
            await listener.close()
            return got

        with serve_in_thread(service, batch_size=16) as server:
            pushed = asyncio.run(run(server.host, server.port))
        assert pushed  # the pattern workload must warn at least once


@pytest.mark.net
class TestSyncClientWindow:
    def test_pipeline_window_is_respected(self, catalog):
        service = PredictionService(fast_config(), shards=2, catalog=catalog)
        events = fleet_events(weeks=3)
        with serve_in_thread(service, batch_size=8) as server:
            with PredictionClient(
                server.host, server.port, window=4
            ) as client:
                for event in events:
                    client.send_event(event)
                    assert client.core.n_unacked <= 4
                assert client.wait_all() == []
        assert service.n_ingested == len(events)


class TestRetryPolicy:
    """The backoff schedule itself — no sockets needed."""

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="positive"):
            RetryPolicy(base=0.0)
        with pytest.raises(ValueError, match="positive"):
            RetryPolicy(cap=-1.0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_delay_doubles_then_caps(self):
        policy = RetryPolicy(base=0.1, cap=0.4, jitter=0.0)
        rng = random.Random(7)
        delays = [policy.delay(k, rng) for k in (1, 2, 3, 4, 5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.4, 0.4])

    def test_jitter_only_shaves(self):
        # jittered delays stay within (raw*(1-jitter), raw]: backoff
        # never waits LONGER than the schedule, only de-synchronizes
        policy = RetryPolicy(base=0.1, cap=10.0, jitter=0.5)
        rng = random.Random(42)
        for attempt in (1, 2, 3, 4):
            raw = min(policy.cap, policy.base * 2 ** (attempt - 1))
            for _ in range(100):
                delay = policy.delay(attempt, rng)
                assert raw * (1 - policy.jitter) <= delay <= raw


@pytest.mark.net
class TestClientRetry:
    def burst(self, n=64):
        """A one-shard burst (cap-bound, so shedding is certain);
        timestamps strictly increase."""
        return [
            make_event(100.0 + i, PRECURSOR_A, record_id=i)
            for i in range(n)
        ]

    def test_shed_events_retry_until_acked(self, catalog):
        """A tight server sheds under a pipelined burst; the client's
        backoff re-sends ride it out — the caller sees zero rejections
        and every event lands exactly once."""
        registry = MetricsRegistry()
        slack = 1000.0  # re-sends land out of arrival order
        events = self.burst()
        with use_registry(registry):
            service = PredictionService(
                fast_config(reorder_slack=slack), shards=2, catalog=catalog
            )
            with serve_in_thread(
                service, batch_size=16, max_linger=0.001, max_pending=16
            ) as server:
                with PredictionClient(
                    server.host,
                    server.port,
                    timeout=60.0,
                    window=len(events),
                    retry=RetryPolicy(max_attempts=20, base=0.01, cap=0.05),
                ) as client:
                    assert client.stream(events) == len(events)
                    client.flush()
        # the point of the test: load really was shed, then re-won
        assert registry.snapshot()['net.shed{scope="shard"}']["value"] > 0
        assert service.n_ingested == len(events)

    def test_async_client_retries_too(self, catalog):
        events = self.burst()
        registry = MetricsRegistry()

        async def run(host, port):
            client = await AsyncPredictionClient.connect(
                host,
                port,
                window=len(events),
                retry=RetryPolicy(max_attempts=20, base=0.01, cap=0.05),
            )
            async with client:
                acked = await client.stream(events)
                await client.flush()
                return acked

        with use_registry(registry):
            service = PredictionService(
                fast_config(reorder_slack=1000.0), shards=2, catalog=catalog
            )
            with serve_in_thread(
                service, batch_size=16, max_linger=0.001, max_pending=16
            ) as server:
                acked = asyncio.run(run(server.host, server.port))
        assert acked == len(events)
        assert registry.snapshot()['net.shed{scope="shard"}']["value"] > 0
        assert service.n_ingested == len(events)

    def test_shard_down_retries_then_gives_up(self, catalog, tmp_path):
        """Against an unsupervised fleet whose shard stays dead, the
        client spends exactly max_attempts sends with backoff sleeps in
        between, then surfaces the rejection."""
        service = PredictionService(
            fast_config(),
            shards=1,
            catalog=catalog,
            fleet_dir=tmp_path / "fleet",
            journal_fsync="never",
        )
        plan = FaultPlan(shard_kills=[ShardKill(shard="shard-000", at_count=1)])
        with faults.install(plan):
            with serve_in_thread(service, supervise=False) as server:
                with PredictionClient(
                    server.host,
                    server.port,
                    retry=RetryPolicy(max_attempts=3, base=0.001),
                ) as client:
                    sleeps = []
                    client._sleep = sleeps.append
                    client.send_event(make_event(100.0, PRECURSOR_A))
                    rejected = client.wait_all()
        assert len(rejected) == 1
        assert rejected[0].frame["code"] == protocol.ERR_SHARD_DOWN
        assert rejected[0].transient  # gave up on attempts, not on type
        # one backoff sleep per re-send: attempts 2 and 3
        assert len(sleeps) == 2
        assert all(0 < s <= 0.002 for s in sleeps)

    def test_non_transient_rejection_is_never_retried(self, catalog):
        service = PredictionService(fast_config(), shards=1, catalog=catalog)
        with serve_in_thread(service) as server:
            with PredictionClient(server.host, server.port) as client:
                sleeps = []
                client._sleep = sleeps.append
                client.send_event(make_event(100.0, PRECURSOR_A))
                assert client.wait_all() == []
                # stale event: ValueError -> bad_event, a final answer
                client.send_event(make_event(50.0, PRECURSOR_A))
                rejected = client.wait_all()
        assert len(rejected) == 1
        assert rejected[0].frame["code"] == protocol.ERR_BAD_EVENT
        assert not rejected[0].transient
        assert sleeps == []
