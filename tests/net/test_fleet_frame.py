"""The ``fleet`` control-plane frame and server-side supervision.

Everything here runs over real sockets: fleet status, live resharding
of a *served* fleet, rolling restarts under traffic, and the supervisor
restoring a fault-killed shard while the server keeps acking.
"""

import time

import pytest

from repro import faults
from repro.faults import FaultPlan, ShardKill
from repro.net import protocol
from repro.net.client import PredictionClient, RetryPolicy
from repro.net.protocol import ProtocolError
from repro.net.server import serve_in_thread
from repro.service import (
    FleetRouter,
    HashRouter,
    PredictionService,
    RoutingRule,
    ShardSupervisor,
)
from repro.utils.timeutil import WEEK_SECONDS
from tests.conftest import make_event
from tests.net.conftest import PRECURSOR_A, fast_config, fleet_events

pytestmark = pytest.mark.net


def durable_service(tmp_path, catalog, shards=2, **overrides):
    return PredictionService(
        fast_config(**overrides),
        router=HashRouter(shards),
        catalog=catalog,
        fleet_dir=tmp_path / "fleet",
        journal_fsync="never",
        retain_journals=True,
    )


def victim_for(service, key):
    """A location the router sends to ``key``."""
    for i in range(256):
        loc = f"R{i:02d}-M0-N{i % 10:02d}"
        if service.router.key(make_event(0.0, location=loc)) == key:
            return loc
    raise AssertionError(f"no location routes to {key}")


class TestFleetStatus:
    def test_status_reports_epoch_and_shard_states(self, catalog, tmp_path):
        events = fleet_events(weeks=3)
        service = durable_service(tmp_path, catalog)
        with serve_in_thread(service) as server:
            with PredictionClient(server.host, server.port) as client:
                client.stream(events)
                status = client.fleet_status()
        assert status["type"] == "fleet"
        assert status["epoch"] == 0
        assert status["migration"] is None
        assert set(status["shards"]) == {"shard-000", "shard-001"}
        for entry in status["shards"].values():
            assert entry["state"] == "up"
            assert entry["restarts"] == 0

    def test_health_includes_shard_status_map(self, catalog, tmp_path):
        service = durable_service(tmp_path, catalog)
        with serve_in_thread(service) as server:
            with PredictionClient(server.host, server.port) as client:
                client.ingest(make_event(100.0, PRECURSOR_A))
                health = client.health()
        assert "shard_status" in health
        for entry in health["shard_status"].values():
            assert entry["state"] in {"up", "down", "quarantined"}

    def test_unknown_action_is_bad_request(self, catalog, tmp_path):
        service = durable_service(tmp_path, catalog)
        with serve_in_thread(service) as server:
            with PredictionClient(server.host, server.port) as client:
                with pytest.raises(ProtocolError) as err:
                    client._request(
                        {
                            "type": "fleet",
                            "seq": client.core.next_seq(),
                            "action": "explode",
                        }
                    )
        assert err.value.code == protocol.ERR_BAD_REQUEST


class TestLiveResharding:
    def test_split_over_the_wire_matches_born_topology(
        self, catalog, tmp_path
    ):
        """Stream half, split a hot shard live, stream the rest: the
        served fleet must match one born with the final routing."""
        events = fleet_events(weeks=5)
        half = len(events) // 2
        service = durable_service(tmp_path, catalog)
        with serve_in_thread(service, batch_size=8) as server:
            with PredictionClient(
                server.host, server.port, timeout=60.0
            ) as client:
                assert client.stream(events[:half]) == half
                response = client.split_shard("shard-000", 2)
                assert response["epoch"] == 1
                assert response["targets"] == [
                    "shard-000/0",
                    "shard-000/1",
                ]
                assert client.stream(events[half:]) == len(events) - half
                client.flush()
                status = client.fleet_status()
        assert status["epoch"] == 1

        rule = RoutingRule(
            kind="split",
            sources=("shard-000",),
            targets=("shard-000/0", "shard-000/1"),
        )
        reference = PredictionService(
            fast_config(),
            router=FleetRouter(HashRouter(2), (rule,)),
            catalog=catalog,
        )
        for event in events:
            reference.ingest(event)
        reference.flush()
        for key in reference.shard_keys:
            assert service.warnings(key) == reference.warnings(key), key
        reference.close()

    def test_merge_over_the_wire(self, catalog, tmp_path):
        events = fleet_events(weeks=4)
        half = len(events) // 2
        service = durable_service(tmp_path, catalog, shards=3)
        with serve_in_thread(service, batch_size=8) as server:
            with PredictionClient(
                server.host, server.port, timeout=60.0
            ) as client:
                assert client.stream(events[:half]) == half
                response = client.merge_shards(
                    ["shard-000", "shard-002"], target="cold"
                )
                assert response["epoch"] == 1
                assert response["target"] == "cold"
                assert client.stream(events[half:]) == len(events) - half
                status = client.fleet_status()
        assert "cold" in status["shards"]

    def test_reshard_refusal_is_typed_and_connection_survives(
        self, catalog, tmp_path
    ):
        service = durable_service(tmp_path, catalog)
        with serve_in_thread(service) as server:
            with PredictionClient(server.host, server.port) as client:
                client.ingest(make_event(100.0, PRECURSOR_A))
                with pytest.raises(ProtocolError) as err:
                    client.split_shard("no-such-shard", 2)
                assert err.value.code == protocol.ERR_RESHARD
                # the connection is still good for data traffic
                response = client.ingest(make_event(200.0, PRECURSOR_A))
                assert response["type"] == "ack"


class TestRollingRestart:
    def test_restart_while_serving_keeps_acking(self, catalog, tmp_path):
        """A rolling restart of a served fleet: every up shard cycles,
        the stream before and after is fully acked, nothing is lost."""
        events = fleet_events(weeks=4)
        half = len(events) // 2
        service = durable_service(tmp_path, catalog)
        with serve_in_thread(service, batch_size=8) as server:
            with PredictionClient(
                server.host, server.port, timeout=60.0
            ) as client:
                assert client.stream(events[:half]) == half
                response = client.rolling_restart()
                assert sorted(response["restarted"]) == sorted(
                    service.shard_keys
                )
                assert client.stream(events[half:]) == len(events) - half
                client.flush()
        assert service.n_ingested == len(events)


class TestSupervisedServing:
    def test_supervisor_restores_killed_shard_no_operator(
        self, catalog, tmp_path
    ):
        """A shard dies under fire; the server's supervise loop brings
        it back from checkpoint + journal with no operator action, and
        the client's retry policy rides out the window — every event
        is eventually acked and the fleet matches an unkilled run."""
        # reorder slack spanning the whole stream (it is in seconds of
        # event time): a retried event can land after arbitrarily newer
        # events for the same shard once it comes back
        events = fleet_events(weeks=4)
        slack = 5 * WEEK_SECONDS
        service = durable_service(
            tmp_path, catalog, reorder_slack=slack
        )
        victim = "shard-000"
        supervisor = ShardSupervisor(service, backoff_base=0.02)
        kill_at = 1 + len(events) // 3
        plan = FaultPlan(
            shard_kills=[ShardKill(shard=victim, at_count=kill_at)]
        )
        with faults.install(plan):
            with serve_in_thread(
                service,
                batch_size=8,
                supervisor=supervisor,
                supervise_interval=0.01,
            ) as server:
                with PredictionClient(
                    server.host,
                    server.port,
                    timeout=60.0,
                    retry=RetryPolicy(max_attempts=10, base=0.05),
                ) as client:
                    assert client.stream(events) == len(events)
                    client.flush()
                    status = client.fleet_status()
        assert plan.injected  # the kill really fired
        assert status["shards"][victim]["state"] == "up"
        assert status["shards"][victim]["restarts"] >= 1
        assert service.n_ingested == len(events)

        reference = PredictionService(
            fast_config(reorder_slack=slack),
            router=HashRouter(2),
            catalog=catalog,
        )
        for event in events:
            reference.ingest(event)
        reference.flush()
        for key in reference.shard_keys:
            assert service.warnings(key) == reference.warnings(key), key
        reference.close()

    def test_other_shards_serve_while_one_is_down(self, catalog, tmp_path):
        """While the victim waits out its restore backoff, traffic for
        healthy shards keeps acking and the victim's is typed."""
        service = durable_service(tmp_path, catalog)
        victim = "shard-000"
        healthy = "shard-001"
        # backoff far beyond the test's lifetime: no restore happens
        supervisor = ShardSupervisor(service, backoff_base=300.0)
        victim_loc = victim_for(service, victim)
        healthy_loc = victim_for(service, healthy)
        seed = [
            make_event(
                100.0 + i,
                PRECURSOR_A,
                location=[victim_loc, healthy_loc][i % 2],
                record_id=i,
            )
            for i in range(8)
        ]
        plan = FaultPlan(
            shard_kills=[ShardKill(shard=victim, at_count=3)]
        )
        with faults.install(plan):
            with serve_in_thread(
                service, supervisor=supervisor, supervise_interval=0.01
            ) as server:
                with PredictionClient(
                    server.host, server.port, timeout=30.0, retry=None
                ) as client:
                    client.stream(seed)
                    assert victim in service.down_shards
                    down = client.ingest(
                        make_event(300.0, PRECURSOR_A, location=victim_loc)
                    )
                    assert down["code"] == protocol.ERR_SHARD_DOWN
                    ok = client.ingest(
                        make_event(301.0, PRECURSOR_A, location=healthy_loc)
                    )
                    assert ok["type"] == "ack"
                    status = client.fleet_status()
                    assert status["shards"][victim]["state"] == "down"
                    assert status["shards"][healthy]["state"] == "up"

    def test_release_closes_circuit_over_the_wire(self, catalog, tmp_path):
        service = durable_service(tmp_path, catalog)
        supervisor = ShardSupervisor(service, backoff_base=0.01)
        victim = "shard-000"
        for i in range(8):
            service.ingest(
                make_event(
                    100.0 + i,
                    PRECURSOR_A,
                    location=victim_for(
                        service, ["shard-000", "shard-001"][i % 2]
                    ),
                    record_id=i,
                )
            )
        supervisor.quarantine(victim)
        with serve_in_thread(
            service, supervisor=supervisor, supervise_interval=0.01
        ) as server:
            with PredictionClient(server.host, server.port) as client:
                status = client.fleet_status()
                assert status["shards"][victim]["state"] == "quarantined"
                response = client.release_shard(victim)
                assert response["released"] == victim
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    state = client.fleet_status()["shards"][victim]["state"]
                    if state == "up":
                        break
                    time.sleep(0.02)
                assert state == "up"
