"""Chaos suite for live resharding: kill at every handoff step.

The property under test, from the migration design: a split or merge is
five idempotent steps (begin, seal, build, commit, cleanup), and a
process death after *any* of them must recover — by rolling the
migration forward — to a fleet whose warnings are identical to one
whose migration was never interrupted, with zero accepted events lost.

``ReshardCrash`` models the process dying between handoff steps (the
step's on-disk effects are durable, the next step never ran);
``ShardKill`` mid-migration models a shard crashing while a migration
is being attempted around it.  Recovery happens *inside* the same
fault plan: the ``injected`` once-guard lets the roll-forward walk the
crashed step the second time, exactly like a restarted process that no
longer carries the fault.

Run with ``pytest -m chaos``.
"""

import pytest

from repro import faults
from repro.core.framework import FrameworkConfig
from repro.faults import FaultInjected, FaultPlan, ReshardCrash, ShardKill
from repro.service import HashRouter, PredictionService
from repro.utils.timeutil import WEEK_SECONDS
from tests.conftest import make_event

pytestmark = pytest.mark.chaos

PRECURSOR_A = "KERNEL-N-002"
PRECURSOR_B = "KERNEL-N-003"
FATAL = "KERNEL-F-000"

LOCS = [
    "R00-M0-N00",
    "R01-M1-N01",
    "R02-M0-N03",
    "R03-M1-N07",
    "R04-M0-N09",
]

STEPS = ("begin", "seal", "build", "commit", "cleanup")


def fast_config(**overrides):
    return FrameworkConfig(
        initial_train_weeks=2, retrain_weeks=2, **overrides
    )


def fleet_events(weeks=6, locations=LOCS):
    events = []
    for offset, location in enumerate(locations):
        t = 600.0 + offset * 37.0
        while t + 900.0 < weeks * WEEK_SECONDS:
            for dt, code in (
                (0.0, PRECURSOR_A),
                (200.0, PRECURSOR_B),
                (900.0, FATAL),
            ):
                events.append(make_event(t + dt, code, location=location))
            t += 10_800.0
    events.sort(key=lambda e: e.timestamp)
    return [
        make_event(
            e.timestamp,
            e.entry_data,
            severity=e.severity,
            location=e.location,
            record_id=i,
        )
        for i, e in enumerate(events)
    ]


def durable_service(tmp_path, catalog, name="fleet", shards=3):
    return PredictionService(
        fast_config(),
        router=HashRouter(shards),
        catalog=catalog,
        fleet_dir=tmp_path / name,
        journal_fsync="never",
        retain_journals=True,
    )


def run_reshard(service, kind):
    if kind == "split":
        return service.split_shard("shard-000", 2)
    return service.merge_shards(["shard-001", "shard-002"])


def reference_fleet(tmp_path, catalog, events, half, kind):
    """The same run, never interrupted: half the stream, the same
    migration (uninterrupted), the rest of the stream."""
    reference = durable_service(tmp_path, catalog, name="reference")
    for event in events[:half]:
        reference.ingest(event)
    run_reshard(reference, kind)
    for event in events[half:]:
        reference.ingest(event)
    reference.flush()
    return reference


def assert_equivalent(recovered, reference):
    assert set(recovered.shard_keys) == set(reference.shard_keys)
    for key in reference.shard_keys:
        assert recovered.warnings(key) == reference.warnings(key)
    # zero accepted events lost: both fleets hold the whole stream
    assert recovered.n_ingested == reference.n_ingested


@pytest.mark.parametrize("kind", ["split", "merge"])
@pytest.mark.parametrize("step", STEPS)
def test_process_kill_at_every_handoff_step_recovers(
    kind, step, catalog, tmp_path
):
    """Kill after each step; recovery rolls the migration forward and
    the continued stream's warnings match an uninterrupted migration."""
    events = fleet_events()
    half = len(events) // 2
    service = durable_service(tmp_path, catalog)
    for event in events[:half]:
        service.ingest(event)

    plan = FaultPlan(reshard_crashes=[ReshardCrash(step)])
    with faults.install(plan):
        with pytest.raises(FaultInjected):
            run_reshard(service, kind)
        assert f"reshard:{step}" in plan.injected
        # the dying process never runs another instruction: abandon the
        # service object and recover from disk inside the same plan (the
        # once-guard models the restarted process being fault-free)
        recovered = PredictionService.recover(
            tmp_path / "fleet", fast_config(), catalog=catalog
        )

    # the migration is committed, whatever step the crash hit
    assert recovered.epoch == 1
    assert recovered.migration is None
    assert recovered.router.rules[0].kind == kind
    # recovery replayed exactly the accepted prefix; resume from there
    assert recovered.n_ingested == half
    for event in events[half:]:
        recovered.ingest(event)
    recovered.flush()

    reference = reference_fleet(tmp_path, catalog, events, half, kind)
    assert_equivalent(recovered, reference)
    recovered.close()
    reference.close()


@pytest.mark.parametrize("kind", ["split", "merge"])
def test_shard_kill_mid_migration_recovers(kind, catalog, tmp_path):
    """A bystander shard dies just before the migration and the process
    dies mid-handoff: recovery still lands the committed topology,
    restores the bystander, and loses nothing."""
    events = fleet_events()
    half = len(events) // 2
    service = durable_service(tmp_path, catalog)
    for event in events[:half]:
        service.ingest(event)

    bystander = "shard-001" if kind == "split" else "shard-000"
    victim_loc = next(
        loc
        for loc in LOCS
        if service.router.key(make_event(0.0, location=loc)) == bystander
    )
    plan = FaultPlan(
        shard_kills=[
            ShardKill(
                shard=bystander,
                at_count=service._shards[bystander].routed + 1,
            )
        ],
        reshard_crashes=[ReshardCrash("build")],
    )
    with faults.install(plan):
        with pytest.raises(FaultInjected):
            # this event is never accepted (the kill fires first), so
            # the reference stream below simply omits it
            service.ingest(
                make_event(
                    events[half - 1].timestamp + 1.0,
                    PRECURSOR_A,
                    location=victim_loc,
                    record_id=10_000,
                )
            )
        assert bystander in service.down_shards
        with pytest.raises(FaultInjected):
            run_reshard(service, kind)
        recovered = PredictionService.recover(
            tmp_path / "fleet", fast_config(), catalog=catalog
        )

    assert recovered.epoch == 1
    assert recovered.migration is None
    # the bystander came back with its accepted events intact
    assert bystander in recovered.shard_keys
    assert recovered.n_ingested == half
    for event in events[half:]:
        recovered.ingest(event)
    recovered.flush()

    reference = reference_fleet(tmp_path, catalog, events, half, kind)
    assert_equivalent(recovered, reference)
    recovered.close()
    reference.close()


def test_double_interruption_still_converges(catalog, tmp_path):
    """Crash the first recovery's roll-forward too: a second recovery
    finishes the job — every step tolerates arbitrarily many retries."""
    events = fleet_events()
    half = len(events) // 2
    service = durable_service(tmp_path, catalog)
    for event in events[:half]:
        service.ingest(event)

    plan = FaultPlan(reshard_crashes=[ReshardCrash("seal")])
    with faults.install(plan):
        with pytest.raises(FaultInjected):
            service.split_shard("shard-000", 2)
    # the first recovery's roll-forward dies after its *build* step
    plan2 = FaultPlan(reshard_crashes=[ReshardCrash("build")])
    with faults.install(plan2):
        with pytest.raises(FaultInjected):
            PredictionService.recover(
                tmp_path / "fleet", fast_config(), catalog=catalog
            )
        recovered = PredictionService.recover(
            tmp_path / "fleet", fast_config(), catalog=catalog
        )

    assert recovered.epoch == 1
    assert recovered.migration is None
    assert recovered.n_ingested == half
    for event in events[half:]:
        recovered.ingest(event)
    recovered.flush()

    reference = reference_fleet(tmp_path, catalog, events, half, "split")
    assert_equivalent(recovered, reference)
    recovered.close()
    reference.close()
