"""Unit tests for deterministic RNG handling."""

import numpy as np

from repro.utils.randoms import SeedSequencePool, rng_from_seed


class TestRngFromSeed:
    def test_int_seed_reproducible(self):
        a = rng_from_seed(123).random(5)
        b = rng_from_seed(123).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = rng_from_seed(1).random(5)
        b = rng_from_seed(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert rng_from_seed(gen) is gen

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(42)
        a = rng_from_seed(ss).random(3)
        b = rng_from_seed(np.random.SeedSequence(42)).random(3)
        assert np.array_equal(a, b)


class TestSeedSequencePool:
    def test_same_name_same_stream(self):
        pool = SeedSequencePool(7)
        a = pool.stream("fatal").random(10)
        b = pool.stream("fatal").random(10)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        pool = SeedSequencePool(7)
        a = pool.stream("fatal").random(10)
        b = pool.stream("background").random(10)
        assert not np.array_equal(a, b)

    def test_order_of_requests_irrelevant(self):
        p1 = SeedSequencePool(7)
        x1 = p1.stream("a").random(4)
        p1.stream("b")
        p2 = SeedSequencePool(7)
        p2.stream("b")
        x2 = p2.stream("a").random(4)
        assert np.array_equal(x1, x2)

    def test_root_seed_changes_all_streams(self):
        a = SeedSequencePool(1).stream("x").random(4)
        b = SeedSequencePool(2).stream("x").random(4)
        assert not np.array_equal(a, b)

    def test_generator_seed_snapshot(self):
        gen = np.random.default_rng(0)
        pool = SeedSequencePool(gen)
        assert isinstance(pool.stream("s").random(), float)
