"""Unit tests for time arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.timeutil import (
    DAY_SECONDS,
    WEEK_SECONDS,
    day_index,
    months,
    week_index,
    week_span,
    weeks,
)


class TestDurations:
    def test_week_is_seven_days(self):
        assert WEEK_SECONDS == 7 * DAY_SECONDS

    def test_weeks_scales(self):
        assert weeks(2) == 2 * WEEK_SECONDS
        assert weeks(0.5) == 0.5 * WEEK_SECONDS

    def test_months_are_thirty_days(self):
        assert months(1) == 30 * DAY_SECONDS


class TestWeekIndex:
    def test_zero_at_origin(self):
        assert week_index(0.0) == 0

    def test_boundary_is_exclusive(self):
        assert week_index(WEEK_SECONDS - 1e-6) == 0
        assert week_index(WEEK_SECONDS) == 1

    def test_origin_shift(self):
        assert week_index(WEEK_SECONDS + 100.0, origin=WEEK_SECONDS) == 0

    def test_before_origin_rejected(self):
        with pytest.raises(ValueError, match="precedes"):
            week_index(5.0, origin=10.0)


class TestDayIndex:
    def test_basic(self):
        assert day_index(0.0) == 0
        assert day_index(DAY_SECONDS * 3 + 1) == 3

    def test_before_origin_rejected(self):
        with pytest.raises(ValueError):
            day_index(-1.0)


class TestWeekSpan:
    def test_covers_exactly_one_week(self):
        start, end = week_span(3)
        assert end - start == WEEK_SECONDS
        assert start == 3 * WEEK_SECONDS

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            week_span(-1)

    @given(st.integers(min_value=0, max_value=10_000))
    def test_span_contains_its_own_index(self, week):
        start, end = week_span(week)
        assert week_index(start) == week
        assert week_index(end - 1.0) == week

    @given(
        st.floats(min_value=0.0, max_value=1e10, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    )
    def test_week_index_monotone(self, t, delta):
        assert week_index(t + delta) >= week_index(t)
