"""Unit tests for table formatting."""

import pytest

from repro.utils.tables import TableResult, format_table


class TestTableResult:
    def test_add_row_and_len(self):
        t = TableResult(title="t", columns=["a", "b"])
        t.add_row(a=1, b=2)
        t.add_row(a=3, b=4)
        assert len(t) == 2

    def test_missing_column_rejected(self):
        t = TableResult(title="t", columns=["a", "b"])
        with pytest.raises(ValueError, match="missing"):
            t.add_row(a=1)

    def test_extra_column_rejected(self):
        t = TableResult(title="t", columns=["a"])
        with pytest.raises(ValueError, match="extra"):
            t.add_row(a=1, b=2)

    def test_column_extraction(self):
        t = TableResult(title="t", columns=["a", "b"])
        t.add_row(a=1, b="x")
        t.add_row(a=2, b="y")
        assert t.column("a") == [1, 2]
        assert t.column("b") == ["x", "y"]

    def test_unknown_column_raises(self):
        t = TableResult(title="t", columns=["a"])
        with pytest.raises(KeyError):
            t.column("zzz")


class TestFormatting:
    def test_render_contains_title_and_rows(self):
        t = TableResult(title="My Table", columns=["name", "value"])
        t.add_row(name="x", value=1.23456)
        text = t.render()
        assert "My Table" in text
        assert "name" in text
        assert "1.235" in text  # default .3f

    def test_meta_rendered(self):
        t = TableResult(title="t", columns=["a"], meta={"seed": 3})
        t.add_row(a=1)
        assert "seed=3" in t.render()

    def test_floatfmt(self):
        t = TableResult(title="t", columns=["v"])
        t.add_row(v=0.123456)
        assert "0.1235" in t.render(floatfmt=".4f")

    def test_bool_cells(self):
        t = TableResult(title="t", columns=["ok"])
        t.add_row(ok=True)
        t.add_row(ok=False)
        text = t.render()
        assert "yes" in text and "no" in text

    def test_mapping_input(self):
        text = format_table({"a": [1, 2], "b": [3, 4]})
        assert "a" in text and "4" in text

    def test_mapping_ragged_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            format_table({"a": [1, 2], "b": [3]})

    def test_empty_table_renders_header(self):
        t = TableResult(title="empty", columns=["a", "b"])
        text = t.render()
        assert "a" in text and "b" in text

    def test_alignment_consistent(self):
        t = TableResult(title="", columns=["col"])
        t.add_row(col="short")
        t.add_row(col="much longer value")
        lines = t.render().splitlines()
        widths = {len(line) for line in lines if line.strip()}
        assert len(widths) == 1
