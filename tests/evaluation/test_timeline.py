"""Unit tests for weekly series and smoothing."""

import pytest

from repro.evaluation.metrics import PrecisionRecall
from repro.evaluation.timeline import (
    WeeklyMetrics,
    mean_accuracy,
    rolling_metrics,
    series_arrays,
    trend_slope,
)


def wm(week, tp, fp, fn):
    return WeeklyMetrics(
        week=week,
        counts=PrecisionRecall(tp=tp, fp=fp, fn=fn),
        n_warnings=tp + fp,
        n_fatal=tp + fn,
    )


class TestWeeklyMetrics:
    def test_properties(self):
        m = wm(3, 4, 1, 3)
        assert m.precision == pytest.approx(0.8)
        assert m.recall == pytest.approx(4 / 7)


class TestRolling:
    def test_span_one_is_identity(self):
        weekly = [wm(0, 1, 1, 0), wm(1, 3, 0, 1)]
        out = rolling_metrics(weekly, span=1)
        assert [m.precision for m in out] == [
            m.precision for m in weekly
        ]

    def test_pools_counts_not_averages(self):
        weekly = [wm(0, 0, 10, 0), wm(1, 10, 0, 0)]
        out = rolling_metrics(weekly, span=2)
        # micro-average: (0+10)/(0+10+10+0) = 0.5, not mean(0, 1)
        assert out[1].precision == pytest.approx(0.5)

    def test_window_truncated_at_start(self):
        weekly = [wm(i, 1, 0, 0) for i in range(5)]
        out = rolling_metrics(weekly, span=3)
        assert out[0].n_warnings == 1
        assert out[2].n_warnings == 3
        assert out[4].n_warnings == 3

    def test_weeks_preserved(self):
        weekly = [wm(10 + i, 1, 0, 0) for i in range(4)]
        assert [m.week for m in rolling_metrics(weekly, 2)] == [10, 11, 12, 13]

    def test_invalid_span(self):
        with pytest.raises(ValueError, match="span"):
            rolling_metrics([], span=0)


class TestSeries:
    def test_arrays(self):
        weekly = [wm(0, 1, 1, 1), wm(1, 2, 0, 0)]
        weeks, precision, recall = series_arrays(weekly)
        assert list(weeks) == [0, 1]
        assert precision[0] == pytest.approx(0.5)
        assert recall[1] == pytest.approx(1.0)

    def test_mean_accuracy_micro_averages(self):
        weekly = [wm(0, 0, 5, 0), wm(1, 5, 0, 5)]
        p, r = mean_accuracy(weekly)
        assert p == pytest.approx(0.5)
        assert r == pytest.approx(0.5)


class TestTrendSlope:
    def test_increasing(self):
        assert trend_slope([0.0, 0.1, 0.2, 0.3]) == pytest.approx(0.1)

    def test_decreasing(self):
        assert trend_slope([1.0, 0.8, 0.6]) == pytest.approx(-0.2)

    def test_flat(self):
        assert trend_slope([0.5, 0.5, 0.5]) == pytest.approx(0.0)

    def test_degenerate(self):
        assert trend_slope([]) == 0.0
        assert trend_slope([1.0]) == 0.0
