"""Unit tests for the overhead measurement harness (Table 5)."""

from repro.evaluation.overhead import measure_overhead
from repro.learners.registry import DEFAULT_LEARNERS, create_learner


class TestMeasureOverhead:
    def test_records_all_phases(self, mid_trace):
        catalog = mid_trace.catalog
        learners = [create_learner(n, catalog=catalog) for n in DEFAULT_LEARNERS]
        training = mid_trace.clean.slice_weeks(0, 13)
        matching = mid_trace.clean.slice_weeks(13, 17)
        record = measure_overhead(
            learners, training, matching, window=300.0,
            training_weeks=13, catalog=catalog,
        )
        assert set(record.generation) == set(DEFAULT_LEARNERS)
        assert all(t >= 0 for t in record.generation.values())
        assert record.ensemble_and_revise > 0
        assert record.rule_matching >= 0
        assert record.n_training_events == len(training)
        assert record.n_matched_events == len(matching)
        assert record.n_rules > 0
        assert record.total_generation >= record.ensemble_and_revise

    def test_generation_grows_with_training_size(self, mid_trace):
        catalog = mid_trace.catalog
        times = []
        for weeks in (8, 32):
            learners = [create_learner(n, catalog=catalog) for n in DEFAULT_LEARNERS]
            training = mid_trace.clean.slice_weeks(0, weeks)
            matching = mid_trace.clean.slice_weeks(32, 36)
            record = measure_overhead(
                learners, training, matching, window=300.0,
                training_weeks=weeks, catalog=catalog,
            )
            times.append(record.total_generation)
        # the Table 5 shape: more training data, more generation time
        assert times[1] > times[0]
