"""Unit tests for precision/recall metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation.metrics import PrecisionRecall, combine


class TestPrecisionRecall:
    def test_basic(self):
        pr = PrecisionRecall(tp=8, fp=2, fn=2)
        assert pr.precision == pytest.approx(0.8)
        assert pr.recall == pytest.approx(0.8)
        assert pr.f1 == pytest.approx(0.8)

    def test_zero_denominators(self):
        pr = PrecisionRecall(tp=0, fp=0, fn=0)
        assert pr.precision == 0.0
        assert pr.recall == 0.0
        assert pr.f1 == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PrecisionRecall(tp=-1, fp=0, fn=0)

    def test_addition_pools_counts(self):
        a = PrecisionRecall(tp=1, fp=1, fn=0)
        b = PrecisionRecall(tp=3, fp=0, fn=2)
        c = a + b
        assert (c.tp, c.fp, c.fn) == (4, 1, 2)

    def test_combine(self):
        parts = [PrecisionRecall(tp=1, fp=0, fn=1) for _ in range(3)]
        total = combine(parts)
        assert total.tp == 3 and total.fn == 3
        assert combine([]) == PrecisionRecall(0, 0, 0)

    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    )
    def test_metrics_bounded(self, tp, fp, fn):
        pr = PrecisionRecall(tp=tp, fp=fp, fn=fn)
        assert 0.0 <= pr.precision <= 1.0
        assert 0.0 <= pr.recall <= 1.0
        assert 0.0 <= pr.f1 <= 1.0
