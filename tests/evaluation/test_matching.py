"""Unit and property tests for warning/failure matching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alerts import FailureWarning
from repro.evaluation.matching import (
    extract_failures,
    match_warnings,
    score_rules,
)
from repro.learners.rules import ANY_FAILURE
from repro.raslog.events import Severity
from tests.conftest import make_log


def warning(t, predicted=ANY_FAILURE, window=300.0, key=("k",), learner="x"):
    return FailureWarning(
        time=t, predicted=predicted, window=window, rule_key=key, learner=learner
    )


class TestMatchWarnings:
    def test_hit_inside_window(self):
        result = match_warnings([warning(100.0)], np.array([250.0]))
        assert result.true_positives == 1
        assert result.covered_failures == 1
        assert result.precision == 1.0 and result.recall == 1.0

    def test_miss_outside_window(self):
        result = match_warnings([warning(100.0)], np.array([500.0]))
        assert result.true_positives == 0
        assert result.false_positives == 1
        assert result.false_negatives == 1

    def test_boundaries(self):
        # (t, t + Wp]: a failure exactly at the warning time doesn't count,
        # one exactly at the deadline does
        at_time = match_warnings([warning(100.0)], np.array([100.0]))
        assert at_time.true_positives == 0
        at_deadline = match_warnings([warning(100.0)], np.array([400.0]))
        assert at_deadline.true_positives == 1

    def test_typed_warning_needs_matching_code(self):
        times = np.array([200.0])
        hit = match_warnings(
            [warning(100.0, predicted="F1")], times, fatal_codes=["F1"]
        )
        miss = match_warnings(
            [warning(100.0, predicted="F1")], times, fatal_codes=["F2"]
        )
        assert hit.true_positives == 1
        assert miss.true_positives == 0
        assert miss.covered_failures == 0

    def test_untyped_matching_without_codes(self):
        result = match_warnings([warning(100.0, predicted="F1")], np.array([200.0]))
        assert result.true_positives == 1  # no codes -> any failure matches

    def test_one_warning_covers_multiple_failures(self):
        result = match_warnings([warning(100.0)], np.array([150.0, 200.0, 250.0]))
        assert result.true_positives == 1
        assert result.covered_failures == 3
        assert result.recall == 1.0

    def test_multiple_warnings_one_failure(self):
        result = match_warnings(
            [warning(100.0), warning(150.0)], np.array([200.0])
        )
        assert result.true_positives == 2
        assert result.precision == 1.0
        assert result.covered_failures == 1

    def test_unsorted_fatal_times_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            match_warnings([], np.array([5.0, 1.0]))

    def test_code_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            match_warnings([], np.array([1.0]), fatal_codes=[])

    def test_empty_everything(self):
        result = match_warnings([], np.array([]))
        assert result.precision == 0.0
        assert result.recall == 0.0

    def test_per_warning_window_respected(self):
        short = warning(100.0, window=50.0)
        long = warning(100.0, window=5000.0, key=("k2",))
        result = match_warnings([short, long], np.array([1000.0]))
        assert list(result.matched) == [False, True]


class TestExtractFailures:
    def test_extracts_fatal_codes(self, catalog):
        log = make_log(
            [
                (1.0, "KERNEL-F-000", {"severity": Severity.FATAL}),
                (2.0, "KERNEL-N-000", {"severity": Severity.INFO}),
                (3.0, "KERNEL-F-001", {"severity": Severity.FATAL}),
            ]
        )
        times, codes = extract_failures(log, catalog)
        assert list(times) == [1.0, 3.0]
        assert codes == ["KERNEL-F-000", "KERNEL-F-001"]


class TestScoreRules:
    def test_groups_by_rule_key(self):
        warnings = [
            warning(100.0, key=("good",)),
            warning(600.0, key=("good",)),
            warning(5000.0, key=("bad",)),
        ]
        times = np.array([200.0, 700.0])
        codes = ["KERNEL-F-000", "KERNEL-F-000"]
        scores = score_rules(warnings, times, codes)
        assert scores[("good",)].tp == 2
        assert scores[("good",)].fp == 0
        assert scores[("good",)].fn == 0
        assert scores[("bad",)].tp == 0
        assert scores[("bad",)].fp == 1
        assert scores[("bad",)].fn == 2  # covered none of the two failures

    def test_typed_rule_targets_only_its_type(self):
        warnings = [warning(100.0, predicted="KERNEL-F-000", key=("t",))]
        times = np.array([200.0, 10_000.0, 20_000.0])
        codes = ["KERNEL-F-000", "KERNEL-F-001", "KERNEL-F-000"]
        scores = score_rules(warnings, times, codes)
        s = scores[("t",)]
        assert s.tp == 1
        assert s.covered == 1
        assert s.fn == 1  # the other F-000 at t=20000; F-001 not a target

    def test_m1_m2_roc(self):
        warnings = [warning(100.0, key=("r",)), warning(5000.0, key=("r",))]
        times = np.array([200.0, 20_000.0])
        codes = ["KERNEL-F-000"] * 2
        s = score_rules(warnings, times, codes)[("r",)]
        assert s.m1 == pytest.approx(0.5)  # 1 of 2 warnings matched
        assert s.m2 == pytest.approx(0.5)  # covered 1 of 2 failures
        assert s.roc == pytest.approx(np.hypot(0.5, 0.5))


@st.composite
def warning_batches(draw):
    n_w = draw(st.integers(min_value=0, max_value=20))
    n_f = draw(st.integers(min_value=0, max_value=20))
    warnings = [
        warning(
            draw(st.floats(min_value=0, max_value=1e5, allow_nan=False)),
            window=draw(st.floats(min_value=1.0, max_value=1e4)),
            key=(draw(st.integers(0, 3)),),
        )
        for _ in range(n_w)
    ]
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0, max_value=1e5, allow_nan=False),
                min_size=n_f,
                max_size=n_f,
            )
        )
    )
    return warnings, np.asarray(times)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(warning_batches())
    def test_confusion_counts_consistent(self, batch):
        warnings, times = batch
        result = match_warnings(warnings, times)
        assert result.true_positives + result.false_positives == len(warnings)
        assert result.covered_failures + result.false_negatives == len(times)
        assert 0.0 <= result.precision <= 1.0
        assert 0.0 <= result.recall <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(warning_batches())
    def test_matched_warning_implies_covered_failure(self, batch):
        warnings, times = batch
        result = match_warnings(warnings, times)
        for i, w in enumerate(warnings):
            if result.matched[i]:
                inside = (times > w.time) & (times <= w.deadline)
                assert result.covered[inside].all()
