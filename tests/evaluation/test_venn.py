"""Unit tests for Venn coverage analysis (Figure 8)."""

import numpy as np
import pytest

from repro.alerts import FailureWarning
from repro.evaluation.venn import venn_coverage
from repro.learners.rules import ANY_FAILURE


def warning(t, window=300.0):
    return FailureWarning(
        time=t, predicted=ANY_FAILURE, window=window, rule_key=("k",), learner="x"
    )


class TestVennCoverage:
    def test_three_learner_partition(self):
        times = np.array([100.0, 1000.0, 2000.0, 3000.0])
        codes = ["F"] * 4
        by_learner = {
            "a": [warning(50.0), warning(950.0)],  # covers fatals 0, 1
            "b": [warning(950.0)],  # covers fatal 1
            "c": [warning(2950.0)],  # covers fatal 3
        }
        venn = venn_coverage(by_learner, times, codes)
        assert venn.n_fatal == 4
        assert venn.region("a") == 1  # fatal 0 only a
        assert venn.region("a", "b") == 1  # fatal 1
        assert venn.region("c") == 1  # fatal 3
        assert venn.region("b") == 0
        assert venn.uncaptured == 1  # fatal 2
        assert venn.multi_captured == 1

    def test_totals_match_regions(self):
        times = np.array([100.0, 500.0])
        by_learner = {
            "a": [warning(50.0)],
            "b": [warning(50.0), warning(450.0)],
        }
        venn = venn_coverage(by_learner, times, ["F", "F"])
        assert venn.covered_by["a"] == 1
        assert venn.covered_by["b"] == 2
        total_in_regions = sum(venn.regions.values())
        assert total_in_regions + venn.uncaptured == venn.n_fatal

    def test_coverage_fraction(self):
        times = np.array([100.0, 500.0])
        venn = venn_coverage({"a": [warning(50.0)]}, times, ["F", "F"])
        assert venn.coverage_fraction("a") == pytest.approx(0.5)
        assert venn.coverage_fraction("missing") == 0.0

    def test_empty_failures(self):
        venn = venn_coverage({"a": []}, np.array([]), [])
        assert venn.n_fatal == 0
        assert venn.coverage_fraction("a") == 0.0
        assert venn.uncaptured == 0

    def test_no_learners_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            venn_coverage({}, np.array([1.0]), ["F"])

    def test_names_sorted(self):
        venn = venn_coverage(
            {"zeta": [], "alpha": []}, np.array([1.0]), ["F"]
        )
        assert venn.names == ("alpha", "zeta")
