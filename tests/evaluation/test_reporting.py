"""Unit tests for per-learner and cross-run reporting."""

import numpy as np
import pytest

from repro.alerts import FailureWarning
from repro.evaluation.metrics import PrecisionRecall
from repro.evaluation.reporting import compare_runs, learner_breakdown
from repro.evaluation.timeline import WeeklyMetrics
from repro.learners.rules import ANY_FAILURE


def warning(t, learner, window=300.0):
    return FailureWarning(
        time=t, predicted=ANY_FAILURE, window=window,
        rule_key=(learner, t), learner=learner,
    )


class TestLearnerBreakdown:
    def test_per_learner_rows_plus_total(self):
        warnings = [
            warning(100.0, "association"),   # hits fatal at 200
            warning(5000.0, "association"),  # miss
            warning(150.0, "statistical"),   # hits fatal at 200
        ]
        table = learner_breakdown(warnings, np.array([200.0, 20_000.0]))
        rows = {r["learner"]: r for r in table.rows}
        assert set(rows) == {"association", "statistical", "ALL"}
        assert rows["association"]["warnings"] == 2
        assert rows["association"]["precision"] == pytest.approx(0.5)
        assert rows["statistical"]["precision"] == pytest.approx(1.0)
        assert rows["ALL"]["warnings"] == 3
        # one of two failures covered overall
        assert rows["ALL"]["coverage"] == pytest.approx(0.5)

    def test_empty_failures(self):
        table = learner_breakdown([warning(1.0, "x")], np.array([]))
        rows = {r["learner"]: r for r in table.rows}
        assert rows["ALL"]["coverage"] == 0.0

    def test_empty_warnings(self):
        table = learner_breakdown([], np.array([1.0]))
        assert [r["learner"] for r in table.rows] == ["ALL"]


class _FakeRun:
    def __init__(self, weekly):
        self.weekly = weekly


def wm(week, tp, fp, fn):
    return WeeklyMetrics(
        week=week, counts=PrecisionRecall(tp=tp, fp=fp, fn=fn),
        n_warnings=tp + fp, n_fatal=tp + fn,
    )


class TestCompareRuns:
    def test_late_columns_expose_decay(self):
        decaying = _FakeRun([wm(0, 9, 1, 1), wm(1, 9, 1, 1),
                             wm(2, 1, 9, 9), wm(3, 1, 9, 9)])
        steady = _FakeRun([wm(0, 5, 5, 5)] * 4)
        table = compare_runs({"decaying": decaying, "steady": steady})
        rows = {r["run"]: r for r in table.rows}
        assert rows["decaying"]["late_precision"] == pytest.approx(0.1)
        assert rows["decaying"]["precision"] == pytest.approx(0.5)
        assert rows["steady"]["late_precision"] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            compare_runs({})
        with pytest.raises(ValueError, match="late_fraction"):
            compare_runs({"a": _FakeRun([wm(0, 1, 0, 0)])}, late_fraction=1.0)

    def test_on_real_run(self, mid_trace):
        from repro.core import DynamicMetaLearningFramework, FrameworkConfig

        result = DynamicMetaLearningFramework(
            FrameworkConfig(initial_train_weeks=20), catalog=mid_trace.catalog
        ).run(mid_trace.clean, end_week=30)
        table = compare_runs({"run": result})
        assert len(table) == 1
        bd = learner_breakdown(
            result.warnings,
            mid_trace.clean.fatal(mid_trace.catalog).timestamps,
        )
        assert any(r["learner"] == "ALL" for r in bd.rows)
