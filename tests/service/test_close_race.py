"""close() racing in-flight traffic, and use-after-close typing.

The serving layer closes the service from a drain path while batches
may still be queued behind the lock.  The contract under that race:
every ``ingest_batch`` either commits fully (its events are durable and
counted) or fails with the typed closed-service ``RuntimeError`` —
never a partial commit, never a corrupting crash, and never an ack for
an event close() then threw away.
"""

import threading

import pytest

from repro.core.framework import FrameworkConfig
from repro.service import HashRouter, PredictionService
from tests.conftest import make_event

PRECURSOR_A = "KERNEL-N-002"
LOCS = ["R00-M0-N00", "R01-M1-N01", "R02-M0-N03", "R03-M1-N07"]


def fast_config(**overrides):
    return FrameworkConfig(
        initial_train_weeks=2, retrain_weeks=2, **overrides
    )


def batches(n_batches, per_batch=4, start=100.0):
    out = []
    rid = 0
    t = start
    for _ in range(n_batches):
        batch = []
        for _ in range(per_batch):
            batch.append(
                make_event(
                    t, PRECURSOR_A, location=LOCS[rid % 4], record_id=rid
                )
            )
            rid += 1
            t += 1.0
        out.append(batch)
    return out


class TestCloseRace:
    def test_ingest_batch_racing_close_commits_or_fails_typed(
        self, catalog, tmp_path
    ):
        """Hammer ingest_batch from worker threads while the main
        thread closes: every batch is all-in (counted after recovery)
        or all-out (typed RuntimeError), nothing else."""
        service = PredictionService(
            fast_config(),
            router=HashRouter(2),
            catalog=catalog,
            fleet_dir=tmp_path / "fleet",
            journal_fsync="never",
        )
        work = batches(60)
        committed = []
        errors = []
        started = threading.Barrier(5)

        def worker(slice_):
            started.wait()
            for batch in slice_:
                try:
                    service.ingest_batch(batch)
                except RuntimeError as exc:  # includes ShardDown
                    errors.append(exc)
                else:
                    committed.append(batch)

        threads = [
            threading.Thread(target=worker, args=(work[i::4],))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        started.wait()
        service.close()
        for t in threads:
            t.join()

        assert all("closed" in str(e) for e in errors)
        assert len(committed) + len(errors) == len(work)
        # all-or-nothing per batch: the durable fleet replays exactly
        # the committed batches
        recovered = PredictionService.recover(
            tmp_path / "fleet", fast_config(), catalog=catalog
        )
        assert recovered.n_ingested == sum(len(b) for b in committed)
        recovered.close()

    def test_concurrent_close_is_idempotent(self, catalog, tmp_path):
        service = PredictionService(
            fast_config(),
            router=HashRouter(2),
            catalog=catalog,
            fleet_dir=tmp_path / "fleet",
            journal_fsync="never",
        )
        for batch in batches(4):
            service.ingest_batch(batch)
        started = threading.Barrier(4)
        failures = []

        def closer():
            started.wait()
            try:
                service.close()
            except Exception as exc:  # noqa: BLE001 — the test's point
                failures.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        assert service.closed


class TestUseAfterClose:
    def test_every_entry_point_raises_typed(self, catalog, tmp_path):
        service = PredictionService(
            fast_config(),
            router=HashRouter(2),
            catalog=catalog,
            fleet_dir=tmp_path / "fleet",
            journal_fsync="never",
        )
        for batch in batches(4):
            service.ingest_batch(batch)
        key = service.shard_keys[0]
        service.close()

        event = make_event(10_000.0, PRECURSOR_A, location=LOCS[0])
        with pytest.raises(RuntimeError, match="closed"):
            service.ingest(event)
        with pytest.raises(RuntimeError, match="closed"):
            service.ingest_batch([event])
        with pytest.raises(RuntimeError, match="closed"):
            service.advance(10_000.0)
        with pytest.raises(RuntimeError, match="closed"):
            service.flush()
        with pytest.raises(RuntimeError, match="closed"):
            service.checkpoint()
        with pytest.raises(RuntimeError, match="closed"):
            service.restart_shard(key)
        with pytest.raises(RuntimeError, match="closed"):
            service.split_shard(key, 2)
        with pytest.raises(RuntimeError, match="closed"):
            service.merge_shards(list(service.shard_keys))

    def test_closed_journal_under_the_stack_cannot_be_written(
        self, catalog, tmp_path
    ):
        """close() closes each shard's journal, so even a leaked session
        reference cannot silently accept (and lose) events."""
        service = PredictionService(
            fast_config(),
            router=HashRouter(2),
            catalog=catalog,
            fleet_dir=tmp_path / "fleet",
            journal_fsync="never",
        )
        for batch in batches(4):
            service.ingest_batch(batch)
        leaked = service.session(service.shard_keys[0])
        service.close()
        assert leaked.journal.closed
        with pytest.raises(Exception):  # JournalError on append
            leaked.ingest(
                make_event(10_000.0, PRECURSOR_A, location=LOCS[0])
            )
