"""Unit tests for the routing layer (partition keys)."""

import zlib

import pytest

from repro.service import (
    FleetRouter,
    HashRouter,
    LocationRouter,
    RoutingRule,
    make_router,
)
from repro.service.partition import as_fleet, router_from_spec
from tests.conftest import make_event


class TestLocationRouter:
    def test_keys_by_location(self):
        router = LocationRouter()
        assert router.key(make_event(1.0, location="R01-M0-N04")) == "R01-M0-N04"
        assert router.key(make_event(1.0, location="R17-M1-N00")) == "R17-M1-N00"

    def test_spec_round_trips(self):
        router = LocationRouter()
        assert router_from_spec(router.spec()) == router


class TestHashRouter:
    def test_deterministic_and_crc_based(self):
        """Hash routing must survive a process restart, so it is CRC32,
        never Python's per-process-salted hash()."""
        router = HashRouter(4)
        event = make_event(1.0, location="R03-M1-N09")
        expected = zlib.crc32(b"R03-M1-N09") % 4
        assert router.key(event) == f"shard-{expected:03d}"
        assert router.key(event) == HashRouter(4).key(event)

    def test_same_location_same_shard(self):
        router = HashRouter(8)
        a = router.key(make_event(1.0, location="R00-M0-N00"))
        b = router.key(make_event(99.0, location="R00-M0-N00", record_id=7))
        assert a == b

    def test_covers_all_buckets_eventually(self):
        router = HashRouter(2)
        keys = {
            router.key(make_event(1.0, location=f"R{i:02d}-M0-N00"))
            for i in range(32)
        }
        assert keys == {"shard-000", "shard-001"}

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError, match="positive"):
            HashRouter(0)

    def test_spec_round_trips(self):
        router = HashRouter(6)
        assert router_from_spec(router.spec()) == router


class TestMakeRouter:
    def test_defaults_to_location(self):
        assert make_router() == LocationRouter()

    def test_shards_selects_hash(self):
        assert make_router(shards=3) == HashRouter(3)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown partition scheme"):
            make_router("job")


class TestRoutingRules:
    def test_split_rule_buckets_only_the_source(self):
        rule = RoutingRule(
            kind="split",
            sources=("shard-000",),
            targets=("shard-000/0", "shard-000/1"),
        )
        salted = zlib.crc32(b"R05-M0-N02@shard-000") % 2
        assert rule.apply("shard-000", "R05-M0-N02") == f"shard-000/{salted}"
        assert rule.apply("shard-001", "R05-M0-N02") == "shard-001"

    def test_split_salt_differs_from_base_hash(self):
        """The child hash is salted by the parent key, so a location's
        child bucket is independent of its base-router bucket."""
        rule = RoutingRule(
            kind="split", sources=("a",), targets=("a/0", "a/1")
        )
        picks = {
            rule.apply("a", f"R{i:02d}-M0-N00") for i in range(32)
        }
        assert picks == {"a/0", "a/1"}

    def test_merge_rule_rewrites_all_sources(self):
        rule = RoutingRule(
            kind="merge", sources=("x", "y"), targets=("z",)
        )
        assert rule.apply("x", "loc") == "z"
        assert rule.apply("y", "loc") == "z"
        assert rule.apply("w", "loc") == "w"

    def test_rule_shape_validated(self):
        with pytest.raises(ValueError):
            RoutingRule(kind="split", sources=("a",), targets=("b",))
        with pytest.raises(ValueError):
            RoutingRule(kind="merge", sources=("a",), targets=("b",))
        with pytest.raises(ValueError):
            RoutingRule(kind="rotate", sources=("a",), targets=("b", "c"))

    def test_spec_round_trips(self):
        rule = RoutingRule(
            kind="split", sources=("a",), targets=("a/0", "a/1")
        )
        assert RoutingRule.from_spec(rule.to_spec()) == rule


class TestFleetRouter:
    def test_rules_compose_in_order(self):
        base = HashRouter(2)
        event = make_event(1.0, location="R00-M0-N00")
        parent = base.key(event)
        split = RoutingRule(
            kind="split",
            sources=(parent,),
            targets=(f"{parent}/0", f"{parent}/1"),
        )
        child = FleetRouter(base, (split,)).key(event)
        assert child.startswith(f"{parent}/")
        merge = RoutingRule(
            kind="merge",
            sources=(f"{parent}/0", f"{parent}/1"),
            targets=("cold",),
        )
        assert FleetRouter(base, (split, merge)).key(event) == "cold"

    def test_spec_round_trips_with_rules(self):
        router = FleetRouter(
            HashRouter(3),
            (
                RoutingRule(
                    kind="split",
                    sources=("shard-000",),
                    targets=("shard-000/0", "shard-000/1"),
                ),
            ),
        )
        assert router_from_spec(router.spec()) == router

    def test_empty_rules_spec_reads_as_bare_base(self):
        """v1 manifests carry no 'rules' key; v2 with no migrations
        yet must read back as the plain base router."""
        spec = HashRouter(4).spec()
        assert router_from_spec(spec) == HashRouter(4)
        assert router_from_spec(FleetRouter(HashRouter(4)).spec()) == HashRouter(4)

    def test_with_rule_appends(self):
        base = LocationRouter()
        rule = RoutingRule(kind="merge", sources=("a", "b"), targets=("c",))
        fleet = as_fleet(base).with_rule(rule)
        assert fleet.rules == (rule,)
        assert as_fleet(fleet) is fleet
