"""Unit tests for the routing layer (partition keys)."""

import zlib

import pytest

from repro.service import HashRouter, LocationRouter, make_router
from repro.service.partition import router_from_spec
from tests.conftest import make_event


class TestLocationRouter:
    def test_keys_by_location(self):
        router = LocationRouter()
        assert router.key(make_event(1.0, location="R01-M0-N04")) == "R01-M0-N04"
        assert router.key(make_event(1.0, location="R17-M1-N00")) == "R17-M1-N00"

    def test_spec_round_trips(self):
        router = LocationRouter()
        assert router_from_spec(router.spec()) == router


class TestHashRouter:
    def test_deterministic_and_crc_based(self):
        """Hash routing must survive a process restart, so it is CRC32,
        never Python's per-process-salted hash()."""
        router = HashRouter(4)
        event = make_event(1.0, location="R03-M1-N09")
        expected = zlib.crc32(b"R03-M1-N09") % 4
        assert router.key(event) == f"shard-{expected:03d}"
        assert router.key(event) == HashRouter(4).key(event)

    def test_same_location_same_shard(self):
        router = HashRouter(8)
        a = router.key(make_event(1.0, location="R00-M0-N00"))
        b = router.key(make_event(99.0, location="R00-M0-N00", record_id=7))
        assert a == b

    def test_covers_all_buckets_eventually(self):
        router = HashRouter(2)
        keys = {
            router.key(make_event(1.0, location=f"R{i:02d}-M0-N00"))
            for i in range(32)
        }
        assert keys == {"shard-000", "shard-001"}

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError, match="positive"):
            HashRouter(0)

    def test_spec_round_trips(self):
        router = HashRouter(6)
        assert router_from_spec(router.spec()) == router


class TestMakeRouter:
    def test_defaults_to_location(self):
        assert make_router() == LocationRouter()

    def test_shards_selects_hash(self):
        assert make_router(shards=3) == HashRouter(3)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown partition scheme"):
            make_router("job")
