"""Tests for the pluggable shard placement seam (:mod:`backends`).

The inproc backend is exercised implicitly by every other service test;
these tests pin the seam itself — backend selection, pid surfacing, the
subprocess worker lifecycle (spawn, crash, reap, respawn), fault
injection across the process boundary, and worker metric reporting.
"""

import os
import signal
import time

import pytest

from repro import faults, observe
from repro.faults import FaultInjected, FaultPlan, ShardKill, WorkerKill
from repro.service import (
    InprocBackend,
    PredictionService,
    ShardDown,
    SubprocessBackend,
    make_backend,
)
from tests.conftest import make_event
from tests.service.test_service import (
    LOCS,
    PRECURSOR_A,
    fast_config,
    fleet_events,
    stream,
)


def wait_until(predicate, timeout=10.0, interval=0.02):
    """Poll ``predicate`` until true or ``timeout`` seconds pass."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def process_gone(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except PermissionError:
        return False
    return False


class TestMakeBackend:
    def test_default_is_inproc(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_BACKEND", raising=False)
        assert isinstance(make_backend(None), InprocBackend)

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_BACKEND", "subprocess")
        assert isinstance(make_backend(None), SubprocessBackend)

    def test_by_name(self):
        assert isinstance(make_backend("inproc"), InprocBackend)
        assert isinstance(make_backend("subprocess"), SubprocessBackend)

    def test_instance_passthrough(self):
        backend = InprocBackend()
        assert make_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown shard backend"):
            make_backend("remote")

    def test_process_executor_request_coerced_to_serial(self):
        # The worker *is* the process-level parallelism: a nested pool
        # per shard would multiply processes for no additional cores.
        assert SubprocessBackend(executor="process").executor_kind == "serial"

    def test_inproc_shards_have_no_pid(self, catalog):
        with PredictionService(fast_config(), catalog=catalog) as service:
            service.ingest(fleet_events(weeks=1)[0])
            assert set(service.shard_pids().values()) == {None}


@pytest.mark.subprocess
class TestSubprocessLifecycle:
    def test_workers_have_live_distinct_pids(self, catalog):
        events = fleet_events(weeks=3)
        with PredictionService(
            fast_config(), catalog=catalog, backend="subprocess"
        ) as service:
            stream(service, events)
            pids = service.shard_pids()
            assert set(pids) == set(LOCS)
            assert all(isinstance(pid, int) for pid in pids.values())
            assert len(set(pids.values())) == len(LOCS)
            assert all(not process_gone(pid) for pid in pids.values())
            own = os.getpid()
            assert all(pid != own for pid in pids.values())

    def test_close_terminates_workers(self, catalog):
        service = PredictionService(
            fast_config(), catalog=catalog, backend="subprocess"
        )
        stream(service, fleet_events(weeks=2))
        pids = list(service.shard_pids().values())
        service.close()
        assert all(wait_until(lambda p=pid: process_gone(p)) for pid in pids)

    def test_backend_equivalence(self, catalog):
        """Placement is a deployment knob: warning-for-warning identical
        output from in-process shards and worker processes."""
        events = fleet_events(weeks=5)
        with PredictionService(fast_config(), catalog=catalog) as inproc:
            stream(inproc, events)
            w_inproc = {k: inproc.warnings(k) for k in inproc.shard_keys}
            s_inproc = inproc.summary()
        with PredictionService(
            fast_config(), catalog=catalog, backend="subprocess"
        ) as subproc:
            stream(subproc, events)
            w_subproc = {k: subproc.warnings(k) for k in subproc.shard_keys}
            s_subproc = subproc.summary()
        assert w_subproc == w_inproc
        assert s_subproc.n_events == s_inproc.n_events
        assert s_subproc.n_warnings == s_inproc.n_warnings

    def test_batched_delivery_matches_per_event(self, catalog):
        events = fleet_events(weeks=5)
        with PredictionService(
            fast_config(), catalog=catalog, backend="subprocess"
        ) as per_event:
            stream(per_event, events)
            w_single = {
                k: per_event.warnings(k) for k in per_event.shard_keys
            }
        with PredictionService(
            fast_config(), catalog=catalog, backend="subprocess"
        ) as batched:
            for i in range(0, len(events), 32):
                batched.ingest_batch(events[i : i + 32])
            batched.flush()
            w_batched = {k: batched.warnings(k) for k in batched.shard_keys}
        assert w_batched == w_single

    def test_retrains_happen_inside_workers(self, catalog):
        """Satellite regression: asking for process-level training
        parallelism under the subprocess backend must not nest a pool
        per worker — the coerced serial executor still retrains."""
        backend = SubprocessBackend(executor="process")
        events = fleet_events(weeks=6)
        with PredictionService(
            fast_config(), catalog=catalog, backend=backend
        ) as service:
            stream(service, events)
            retrains = [service.session(k).retrains for k in LOCS]
            warnings = [w for k in LOCS for w in service.warnings(k)]
        assert all(len(r) >= 1 for r in retrains)
        assert warnings


@pytest.mark.subprocess
class TestSubprocessCrashes:
    def test_sigkill_surfaces_as_shard_down(self, catalog, tmp_path):
        events = fleet_events(weeks=3)
        victim = LOCS[0]
        with PredictionService(
            fast_config(),
            catalog=catalog,
            fleet_dir=tmp_path / "fleet",
            backend="subprocess",
        ) as service:
            stream(service, events)
            os.kill(service.shard_pids()[victim], signal.SIGKILL)
            t_next = events[-1].timestamp + 60.0
            with pytest.raises(ShardDown) as exc_info:
                service.ingest(
                    make_event(t_next, PRECURSOR_A, location=victim)
                )
            assert exc_info.value.key == victim
            assert service.down_shards == {victim}
            # Other shards keep serving.
            service.ingest(
                make_event(t_next + 60.0, PRECURSOR_A, location=LOCS[1])
            )

    def test_reap_workers_detects_silent_death(self, catalog, tmp_path):
        victim = LOCS[2]
        with PredictionService(
            fast_config(),
            catalog=catalog,
            fleet_dir=tmp_path / "fleet",
            backend="subprocess",
        ) as service:
            stream(service, fleet_events(weeks=2))
            os.kill(service.shard_pids()[victim], signal.SIGKILL)
            # No delivery needed: the reaper notices on its own (the
            # supervisor calls this on every poll).  SIGKILL delivery
            # is asynchronous, so poll until the death is visible.
            reaped = []

            def saw_death():
                reaped.extend(service.reap_workers())
                return bool(reaped)

            assert wait_until(saw_death)
            assert reaped == [victim]
            assert victim in service.down_shards
            assert service.reap_workers() == []

    def test_restore_respawns_worker_from_journal(self, catalog, tmp_path):
        events = fleet_events(weeks=4)
        victim = LOCS[1]
        with PredictionService(
            fast_config(),
            catalog=catalog,
            fleet_dir=tmp_path / "fleet",
            backend="subprocess",
        ) as service:
            stream(service, events)
            delivered = sum(
                1 for e in events if service.router.key(e) == victim
            )
            old_pid = service.shard_pids()[victim]
            os.kill(old_pid, signal.SIGKILL)
            doomed = make_event(
                events[-1].timestamp + 60.0, PRECURSOR_A, location=victim
            )
            with pytest.raises(ShardDown):
                service.ingest(doomed)

            service.restore_shard(victim)
            assert service.down_shards == set()
            new_pid = service.shard_pids()[victim]
            assert new_pid is not None and new_pid != old_pid
            # Every event acked before the crash was journaled; the
            # respawned worker replays them all, then the killed event
            # (never durable) is re-delivered.
            assert service.session(victim).n_ingested == delivered
            service.ingest(doomed)
            assert service.session(victim).n_ingested == delivered + 1

    def test_worker_kill_fault_sigkills_live_worker(self, catalog, tmp_path):
        events = fleet_events(weeks=3)
        victim = LOCS[0]
        plan = FaultPlan(worker_kills=[WorkerKill(shard=victim, at_count=20)])
        with PredictionService(
            fast_config(),
            catalog=catalog,
            fleet_dir=tmp_path / "fleet",
            backend="subprocess",
        ) as service:
            with faults.install(plan):
                with pytest.raises(ShardDown) as exc_info:
                    for event in events:
                        service.ingest(event)
                assert exc_info.value.key == victim
                assert service.down_shards == {victim}
                # A real SIGKILL, not bookkeeping: the process is gone.
                pid = service.shard_pids()[victim]
                assert wait_until(lambda: process_gone(pid))

    def test_graceful_seal_keeps_shard_inspectable(self, catalog, tmp_path):
        """ShardKill drains the worker before it exits, so the downed
        shard's warnings/summary stay readable — matching the inproc
        backend, where the killed shard's session object survives."""
        events = fleet_events(weeks=3)
        victim = LOCS[1]
        plan = FaultPlan(shard_kills=[ShardKill(shard=victim, at_count=25)])
        with PredictionService(
            fast_config(),
            catalog=catalog,
            fleet_dir=tmp_path / "fleet",
            backend="subprocess",
        ) as service:
            with faults.install(plan):
                with pytest.raises(FaultInjected):
                    for event in events:
                        service.ingest(event)
            assert service.down_shards == {victim}
            assert isinstance(service.warnings(victim), list)
            summary = service.session(victim).summary()
            assert summary.n_events == 24  # the killed event never landed


@pytest.mark.subprocess
class TestSubprocessDurability:
    def test_checkpoint_recover_roundtrip(self, catalog, tmp_path):
        fleet = tmp_path / "fleet"
        events = fleet_events(weeks=4)
        service = PredictionService(
            fast_config(),
            catalog=catalog,
            fleet_dir=fleet,
            backend="subprocess",
        )
        stream(service, events)
        expected = {
            k: service.session(k).n_ingested for k in service.shard_keys
        }
        w_before = {k: service.warnings(k) for k in service.shard_keys}
        service.checkpoint()
        service.close()

        with PredictionService.recover(
            fleet, catalog=catalog, backend="subprocess"
        ) as recovered:
            assert {
                k: recovered.session(k).n_ingested
                for k in recovered.shard_keys
            } == expected
            assert {
                k: recovered.warnings(k) for k in recovered.shard_keys
            } == w_before
            assert all(
                pid is not None for pid in recovered.shard_pids().values()
            )

    def test_merged_metrics_sum_worker_series(self, catalog):
        events = fleet_events(weeks=3)
        # Reference: the same workload inproc, where sessions record
        # straight into the (scoped) parent registry.
        with observe.use_registry(observe.MetricsRegistry()) as reference:
            with PredictionService(fast_config(), catalog=catalog) as inproc:
                stream(inproc, events)
            expected = reference.snapshot()["online.ingest"]["count"]
        assert expected > 0

        with observe.use_registry(observe.MetricsRegistry()):
            with PredictionService(
                fast_config(), catalog=catalog, backend="subprocess"
            ) as service:
                stream(service, events)
                pids = service.shard_pids()
                merged = service.merged_metrics()
                # The parent's own registry never saw these series.
                local = observe.get_registry().snapshot()
        assert "online.ingest" not in local
        # Worker-side ingest instrumentation, summed across the fleet,
        # matches what the same workload records in-process.
        assert merged["online.ingest"]["count"] == expected
        for key, pid in pids.items():
            series = merged[f'service.workers{{shard="{key}"}}']
            assert series["value"] == pid
